//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! The actual experiment entry points live in `src/bin/` (one binary per
//! paper table/figure) and `benches/` (Criterion micro-benchmarks); this
//! library hosts the argument parsing and output plumbing they share.

#![deny(missing_docs)]

pub mod cli;
pub mod journal;
pub mod json;
pub mod runner;

pub use cli::ExperimentArgs;
pub use journal::{default_journal_path, FoldRecord, Journal};
