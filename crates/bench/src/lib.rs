//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! The actual experiment entry points live in `src/bin/` (one binary per
//! paper table/figure) and `benches/` (Criterion micro-benchmarks); this
//! library hosts the argument parsing and output plumbing they share.

#![deny(missing_docs)]

pub mod cli;
pub mod journal;
pub mod runner;
pub mod stages;

/// Hand-rolled JSON values and parsing, shared with the observability crate.
///
/// The implementation moved to `deepmap-obs` (the trace exporter needs it
/// too); this re-export keeps `deepmap_bench::json::Json` working for the
/// journal and the experiment binaries.
pub use deepmap_obs::json;

pub use cli::ExperimentArgs;
pub use journal::{default_journal_path, FoldRecord, Journal};
