//! Shared experiment driver: run any method on any generated dataset under
//! the paper's cross-validation protocol.

use crate::cli::ExperimentArgs;
use deepmap_core::{DeepMap, DeepMapConfig, Readout, VertexOrdering};
use deepmap_datasets::GraphDataset;
use deepmap_eval::cv::{cross_validate_epochs, cross_validate_svm, CvSummary, FoldCurve};
use deepmap_gnn::dcnn::{Dcnn, DcnnConfig};
use deepmap_gnn::dgcnn::{Dgcnn, DgcnnConfig};
use deepmap_gnn::gin::{Gin, GinConfig};
use deepmap_gnn::patchysan::{PatchySan, PatchySanConfig};
use deepmap_gnn::{common, fit_gnn, GnnInput, GnnTrainConfig, GraphClassifier, GraphSample};
use deepmap_kernels::dgk::DgkConfig;
use deepmap_kernels::gntk::GntkConfig;
use deepmap_kernels::retgk::RetGkConfig;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_svm::PAPER_C_GRID;

/// Default cap on the vertex feature-map dimension fed to neural models
/// (paper §6: uncapped maps make the CNN very slow on NCI1 and friends).
pub const DEFAULT_FEATURE_CAP: usize = 256;

/// Which baseline GNN to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnKind {
    /// Deep Graph CNN.
    Dgcnn,
    /// Graph Isomorphism Network.
    Gin,
    /// Diffusion-Convolutional NN.
    Dcnn,
    /// PATCHY-SAN.
    PatchySan,
}

impl GnnKind {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            GnnKind::Dgcnn => "DGCNN",
            GnnKind::Gin => "GIN",
            GnnKind::Dcnn => "DCNN",
            GnnKind::PatchySan => "PATCHYSAN",
        }
    }

    /// All four baselines in the paper's column order.
    pub fn all() -> [GnnKind; 4] {
        [GnnKind::Dgcnn, GnnKind::Gin, GnnKind::Dcnn, GnnKind::PatchySan]
    }
}

/// Generates a benchmark and applies the experiment's graph cap.
pub fn load_dataset(name: &str, args: &ExperimentArgs) -> Option<GraphDataset> {
    let ds = deepmap_datasets::generate(name, args.scale, args.seed)?;
    Some(match args.max_graphs {
        Some(cap) => ds.subsample(cap),
        None => ds,
    })
}

/// Number of worker threads for fold-parallel runs.
pub fn fold_threads(folds: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(folds)
        .max(1)
}

/// DeepMap under k-fold CV with the paper's epoch-selection protocol.
pub fn run_deepmap(ds: &GraphDataset, kind: FeatureKind, args: &ExperimentArgs) -> CvSummary {
    run_deepmap_config(ds, deepmap_config(kind, args), args)
}

/// Builds the experiment's DeepMap configuration.
pub fn deepmap_config(kind: FeatureKind, args: &ExperimentArgs) -> DeepMapConfig {
    DeepMapConfig {
        kind,
        r: 5,
        ordering: VertexOrdering::EigenvectorCentrality,
        max_hops: None,
        readout: Readout::Sum,
        max_feature_dim: Some(DEFAULT_FEATURE_CAP),
        normalize: true,
        train: TrainConfig {
            epochs: args.epochs,
            batch_size: 32,
            learning_rate: 0.01,
            seed: args.seed,
        },
        seed: args.seed,
    }
}

/// DeepMap CV with an explicit configuration (used by the ablations and the
/// sensitivity sweep).
pub fn run_deepmap_config(
    ds: &GraphDataset,
    config: DeepMapConfig,
    args: &ExperimentArgs,
) -> CvSummary {
    let pipeline = DeepMap::new(config);
    let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
    cross_validate_epochs(
        &ds.labels,
        args.folds,
        args.seed,
        fold_threads(args.folds),
        |fold, train, test| {
            let mut cfg = *pipeline.config();
            cfg.seed = args.seed.wrapping_add(fold as u64);
            cfg.train.seed = cfg.seed;
            let fold_pipeline = DeepMap::new(cfg);
            // Rebuild only the model per fold; tensors are shared.
            let result = fold_pipeline.fit_split(&prepared, train, test);
            FoldCurve {
                test_accuracy: result
                    .history
                    .iter()
                    .map(|e| e.eval_accuracy.unwrap_or(0.0))
                    .collect(),
                epoch_seconds: mean_epoch_seconds(&result.history),
            }
        },
    )
}

fn mean_epoch_seconds(history: &[deepmap_nn::train::EpochStats]) -> f64 {
    if history.is_empty() {
        return 0.0;
    }
    history.iter().map(|e| e.epoch_seconds).sum::<f64>() / history.len() as f64
}

/// A flat R-convolution kernel (GK/SP/WL) under SVM CV.
pub fn run_flat_kernel(ds: &GraphDataset, kind: FeatureKind, args: &ExperimentArgs) -> CvSummary {
    let kernel = deepmap_kernels::kernel_matrix(&ds.graphs, kind, args.seed);
    cross_validate_svm(&kernel, &ds.labels, ds.n_classes, args.folds, &PAPER_C_GRID, args.seed)
}

/// The DGK baseline under SVM CV.
pub fn run_dgk(ds: &GraphDataset, args: &ExperimentArgs) -> CvSummary {
    let kernel = deepmap_kernels::dgk::kernel_matrix(
        &ds.graphs,
        &DgkConfig {
            seed: args.seed,
            ..Default::default()
        },
    );
    cross_validate_svm(&kernel, &ds.labels, ds.n_classes, args.folds, &PAPER_C_GRID, args.seed)
}

/// The RetGK baseline under SVM CV.
pub fn run_retgk(ds: &GraphDataset, args: &ExperimentArgs) -> CvSummary {
    let kernel = deepmap_kernels::retgk::kernel_matrix(
        &ds.graphs,
        &RetGkConfig {
            threads: fold_threads(8),
            ..Default::default()
        },
    );
    cross_validate_svm(&kernel, &ds.labels, ds.n_classes, args.folds, &PAPER_C_GRID, args.seed)
}

/// The GNTK baseline under SVM CV.
pub fn run_gntk(ds: &GraphDataset, args: &ExperimentArgs) -> CvSummary {
    let kernel = deepmap_kernels::gntk::kernel_matrix(
        &ds.graphs,
        &GntkConfig {
            threads: fold_threads(8),
            ..Default::default()
        },
    );
    cross_validate_svm(&kernel, &ds.labels, ds.n_classes, args.folds, &PAPER_C_GRID, args.seed)
}

fn avg_nodes(ds: &GraphDataset) -> f64 {
    if ds.is_empty() {
        return 1.0;
    }
    ds.graphs.iter().map(|g| g.n_vertices() as f64).sum::<f64>() / ds.len() as f64
}

fn build_gnn(
    kind: GnnKind,
    m: usize,
    n_classes: usize,
    avg_n: f64,
    seed: u64,
) -> Box<dyn GraphClassifier> {
    match kind {
        GnnKind::Gin => Box::new(Gin::new(&GinConfig::default_for(m, n_classes, seed))),
        GnnKind::Dgcnn => Box::new(Dgcnn::new(&DgcnnConfig::default_for(m, n_classes, seed))),
        GnnKind::Dcnn => Box::new(Dcnn::new(&DcnnConfig::default_for(m, n_classes, seed))),
        GnnKind::PatchySan => Box::new(PatchySan::new(&PatchySanConfig::default_for(
            m, n_classes, avg_n, seed,
        ))),
    }
}

/// A baseline GNN under k-fold CV with epoch selection.
pub fn run_gnn(
    ds: &GraphDataset,
    kind: GnnKind,
    input: GnnInput,
    args: &ExperimentArgs,
) -> CvSummary {
    let (samples, m) = common::featurize(&ds.graphs, &ds.labels, input, args.seed);
    let avg_n = avg_nodes(ds);
    cross_validate_epochs(
        &ds.labels,
        args.folds,
        args.seed,
        fold_threads(args.folds),
        |fold, train, test| {
            let mut model = build_gnn(kind, m, ds.n_classes, avg_n, args.seed.wrapping_add(fold as u64));
            let train_samples: Vec<GraphSample> = train.iter().map(|&i| samples[i].clone()).collect();
            let test_samples: Vec<GraphSample> = test.iter().map(|&i| samples[i].clone()).collect();
            let history = fit_gnn(
                model.as_mut(),
                &train_samples,
                Some(&test_samples),
                &GnnTrainConfig {
                    epochs: args.epochs,
                    batch_size: 32,
                    learning_rate: 0.01,
                    seed: args.seed.wrapping_add(fold as u64),
                },
            );
            FoldCurve {
                test_accuracy: history
                    .iter()
                    .map(|e| e.eval_accuracy.unwrap_or(0.0))
                    .collect(),
                epoch_seconds: mean_epoch_seconds(&history),
            }
        },
    )
}

/// Per-epoch *training* accuracy curves (the paper's Figures 6–7): trains
/// on the whole dataset and reports the train-accuracy trajectory.
pub fn deepmap_training_curve(
    ds: &GraphDataset,
    kind: FeatureKind,
    args: &ExperimentArgs,
) -> Vec<f64> {
    let pipeline = DeepMap::new(deepmap_config(kind, args));
    let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
    let all: Vec<usize> = (0..ds.len()).collect();
    let result = pipeline.fit_split(&prepared, &all, &all);
    result.history.iter().map(|e| e.train_accuracy).collect()
}

/// Training-accuracy curve for a baseline GNN (Figure 7).
pub fn gnn_training_curve(
    ds: &GraphDataset,
    kind: GnnKind,
    input: GnnInput,
    args: &ExperimentArgs,
) -> Vec<f64> {
    let (samples, m) = common::featurize(&ds.graphs, &ds.labels, input, args.seed);
    let mut model = build_gnn(kind, m, ds.n_classes, avg_nodes(ds), args.seed);
    let history = fit_gnn(
        model.as_mut(),
        &samples,
        None,
        &GnnTrainConfig {
            epochs: args.epochs,
            batch_size: 32,
            learning_rate: 0.01,
            seed: args.seed,
        },
    );
    history.iter().map(|e| e.train_accuracy).collect()
}

/// Training accuracy of a flat kernel SVM on the full dataset (the constant
/// line the kernels contribute to Figure 6).
pub fn kernel_training_accuracy(ds: &GraphDataset, kind: FeatureKind, args: &ExperimentArgs) -> f64 {
    let kernel = deepmap_kernels::kernel_matrix(&ds.graphs, kind, args.seed);
    let all: Vec<usize> = (0..ds.len()).collect();
    let (model, _c) =
        deepmap_svm::multiclass::select_c_and_train(&kernel, &all, &ds.labels, ds.n_classes, &PAPER_C_GRID);
    model.accuracy(&kernel, &all, &ds.labels)
}
