//! Shared experiment driver: run any method on any generated dataset under
//! the paper's cross-validation protocol.

use crate::cli::ExperimentArgs;
use crate::journal::{default_journal_path, FoldRecord, Journal};
use deepmap_core::{DeepMap, DeepMapConfig, Readout, RecoveryConfig, VertexOrdering};
use deepmap_datasets::GraphDataset;
use deepmap_eval::cv::{
    cross_validate_epochs_with, cross_validate_svm, CvOptions, CvSummary, FoldCurve,
};
use deepmap_gnn::dcnn::{Dcnn, DcnnConfig};
use deepmap_gnn::dgcnn::{Dgcnn, DgcnnConfig};
use deepmap_gnn::gin::{Gin, GinConfig};
use deepmap_gnn::patchysan::{PatchySan, PatchySanConfig};
use deepmap_gnn::{common, fit_gnn, GnnInput, GnnTrainConfig, GraphClassifier, GraphSample};
use deepmap_kernels::dgk::DgkConfig;
use deepmap_kernels::gntk::GntkConfig;
use deepmap_kernels::retgk::RetGkConfig;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_svm::PAPER_C_GRID;

/// Default cap on the vertex feature-map dimension fed to neural models
/// (paper §6: uncapped maps make the CNN very slow on NCI1 and friends).
pub const DEFAULT_FEATURE_CAP: usize = 256;

/// Which baseline GNN to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnKind {
    /// Deep Graph CNN.
    Dgcnn,
    /// Graph Isomorphism Network.
    Gin,
    /// Diffusion-Convolutional NN.
    Dcnn,
    /// PATCHY-SAN.
    PatchySan,
}

impl GnnKind {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            GnnKind::Dgcnn => "DGCNN",
            GnnKind::Gin => "GIN",
            GnnKind::Dcnn => "DCNN",
            GnnKind::PatchySan => "PATCHYSAN",
        }
    }

    /// All four baselines in the paper's column order.
    pub fn all() -> [GnnKind; 4] {
        [
            GnnKind::Dgcnn,
            GnnKind::Gin,
            GnnKind::Dcnn,
            GnnKind::PatchySan,
        ]
    }
}

/// Generates a benchmark and applies the experiment's graph cap.
pub fn load_dataset(name: &str, args: &ExperimentArgs) -> Option<GraphDataset> {
    let ds = deepmap_datasets::generate(name, args.scale, args.seed)?;
    Some(match args.max_graphs {
        Some(cap) => ds.subsample(cap),
        None => ds,
    })
}

/// Number of worker threads for fold-parallel runs.
pub fn fold_threads(folds: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(folds)
        .max(1)
}

/// A (journal, dataset, method) triple identifying one table cell, so fold
/// workers can checkpoint into — and resume from — the run journal.
#[derive(Clone, Copy)]
pub struct JournalCell<'a> {
    /// The open run journal.
    pub journal: &'a Journal,
    /// Dataset row name.
    pub dataset: &'a str,
    /// Method column name.
    pub method: &'a str,
}

/// Opens the experiment's run journal as configured by `args` (`--journal`
/// overrides the `results/<experiment>.journal.jsonl` default; `--resume`
/// loads previously completed folds instead of truncating).
///
/// Returns `None` — and the experiment runs unjournaled — when the path
/// cannot be opened, so a read-only filesystem degrades checkpointing
/// rather than killing the run.
pub fn open_journal(experiment: &str, args: &ExperimentArgs) -> Option<Journal> {
    let path = args
        .journal
        .clone()
        .unwrap_or_else(|| default_journal_path(experiment));
    match Journal::open(&path, args.resume) {
        Ok(journal) => {
            if args.resume {
                deepmap_obs::info!(
                    "resuming from {}: {} fold(s) already recorded",
                    path.display(),
                    journal.n_loaded()
                );
                if journal.skipped_lines() > 0 {
                    deepmap_obs::warn!(
                        "ignored {} corrupt journal line(s)",
                        journal.skipped_lines()
                    );
                }
            }
            Some(journal)
        }
        Err(e) => {
            deepmap_obs::warn!(
                "cannot open journal {}: {e}; running without checkpoints",
                path.display()
            );
            None
        }
    }
}

/// DeepMap under k-fold CV with the paper's epoch-selection protocol.
pub fn run_deepmap(ds: &GraphDataset, kind: FeatureKind, args: &ExperimentArgs) -> CvSummary {
    run_deepmap_config(ds, deepmap_config(kind, args), args)
}

/// Builds the experiment's DeepMap configuration.
pub fn deepmap_config(kind: FeatureKind, args: &ExperimentArgs) -> DeepMapConfig {
    DeepMapConfig {
        kind,
        r: 5,
        ordering: VertexOrdering::EigenvectorCentrality,
        max_hops: None,
        readout: Readout::Sum,
        max_feature_dim: Some(DEFAULT_FEATURE_CAP),
        normalize: true,
        train: TrainConfig {
            epochs: args.epochs,
            batch_size: 32,
            learning_rate: 0.01,
            seed: args.seed,
        },
        seed: args.seed,
    }
}

/// DeepMap CV with an explicit configuration (used by the ablations and the
/// sensitivity sweep).
pub fn run_deepmap_config(
    ds: &GraphDataset,
    config: DeepMapConfig,
    args: &ExperimentArgs,
) -> CvSummary {
    run_deepmap_config_journaled(ds, config, args, None)
}

/// [`run_deepmap_config`] with checkpoint/resume: folds already present in
/// the journal are skipped, and every freshly trained fold is appended the
/// moment it finishes. Diverging folds retry under
/// [`RecoveryConfig::default`] (halved LR, reseeded init); a fold that
/// exhausts its retries is isolated by the CV harness and reported in
/// [`CvSummary::failures`].
pub fn run_deepmap_config_journaled(
    ds: &GraphDataset,
    config: DeepMapConfig,
    args: &ExperimentArgs,
    cell: Option<JournalCell<'_>>,
) -> CvSummary {
    let epochs = config.train.epochs;
    let pipeline = DeepMap::new(config);
    let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
    let train_fold = |fold: usize, train: &[usize], test: &[usize]| {
        let mut cfg = *pipeline.config();
        cfg.seed = args.seed.wrapping_add(fold as u64);
        cfg.train.seed = cfg.seed;
        let fold_pipeline = DeepMap::new(cfg);
        // Rebuild only the model per fold; tensors are shared.
        let result = fold_pipeline
            .try_fit_split_with(&prepared, train, test, &RecoveryConfig::default())
            .unwrap_or_else(|e| panic!("fold {fold}: {e}"));
        FoldCurve {
            test_accuracy: result
                .history
                .iter()
                .map(|e| e.eval_accuracy.unwrap_or(0.0))
                .collect(),
            epoch_seconds: mean_epoch_seconds(&result.history),
            retries: result.retries,
        }
    };
    run_journaled_cv(ds, args, epochs, cell, train_fold)
}

/// Shared journal plumbing for the epoch-tracked runners: loads completed
/// folds as `precomputed` curves and appends fresh ones via `on_fold`.
fn run_journaled_cv<F>(
    ds: &GraphDataset,
    args: &ExperimentArgs,
    epochs: usize,
    cell: Option<JournalCell<'_>>,
    train_fold: F,
) -> CvSummary
where
    F: Fn(usize, &[usize], &[usize]) -> FoldCurve + Sync,
{
    let precomputed = cell
        .map(|c| {
            c.journal
                .precomputed_curves(c.dataset, c.method, args.folds, epochs, args.seed)
        })
        .unwrap_or_default();
    let recorder = move |fold: usize, curve: &FoldCurve| {
        if let Some(c) = cell {
            let record = FoldRecord {
                dataset: c.dataset.to_string(),
                method: c.method.to_string(),
                fold,
                folds: args.folds,
                epochs,
                seed: args.seed,
                test_accuracy: curve.test_accuracy.clone(),
                epoch_seconds: curve.epoch_seconds,
                retries: curve.retries,
            };
            if let Err(e) = c.journal.record(&record) {
                deepmap_obs::warn!("journal write failed for fold {fold}: {e}");
            }
        }
    };
    let options = CvOptions {
        threads: fold_threads(args.folds),
        precomputed,
        on_fold: Some(&recorder),
    };
    cross_validate_epochs_with(&ds.labels, args.folds, args.seed, &options, train_fold)
}

/// Mean wall-clock seconds per epoch, via the shared `obs::time` helper so
/// every reported seconds figure uses the same arithmetic.
fn mean_epoch_seconds(history: &[deepmap_nn::train::EpochStats]) -> f64 {
    deepmap_obs::time::mean_seconds(history.iter().map(|e| e.epoch_seconds))
}

/// A flat R-convolution kernel (GK/SP/WL) under SVM CV.
pub fn run_flat_kernel(ds: &GraphDataset, kind: FeatureKind, args: &ExperimentArgs) -> CvSummary {
    let kernel = deepmap_kernels::kernel_matrix(&ds.graphs, kind, args.seed);
    cross_validate_svm(
        &kernel,
        &ds.labels,
        ds.n_classes,
        args.folds,
        &PAPER_C_GRID,
        args.seed,
    )
}

/// The DGK baseline under SVM CV.
pub fn run_dgk(ds: &GraphDataset, args: &ExperimentArgs) -> CvSummary {
    let kernel = deepmap_kernels::dgk::kernel_matrix(
        &ds.graphs,
        &DgkConfig {
            seed: args.seed,
            ..Default::default()
        },
    );
    cross_validate_svm(
        &kernel,
        &ds.labels,
        ds.n_classes,
        args.folds,
        &PAPER_C_GRID,
        args.seed,
    )
}

/// The RetGK baseline under SVM CV.
pub fn run_retgk(ds: &GraphDataset, args: &ExperimentArgs) -> CvSummary {
    let kernel = deepmap_kernels::retgk::kernel_matrix(
        &ds.graphs,
        &RetGkConfig {
            threads: fold_threads(8),
            ..Default::default()
        },
    );
    cross_validate_svm(
        &kernel,
        &ds.labels,
        ds.n_classes,
        args.folds,
        &PAPER_C_GRID,
        args.seed,
    )
}

/// The GNTK baseline under SVM CV.
pub fn run_gntk(ds: &GraphDataset, args: &ExperimentArgs) -> CvSummary {
    let kernel = deepmap_kernels::gntk::kernel_matrix(
        &ds.graphs,
        &GntkConfig {
            threads: fold_threads(8),
            ..Default::default()
        },
    );
    cross_validate_svm(
        &kernel,
        &ds.labels,
        ds.n_classes,
        args.folds,
        &PAPER_C_GRID,
        args.seed,
    )
}

fn avg_nodes(ds: &GraphDataset) -> f64 {
    if ds.is_empty() {
        return 1.0;
    }
    ds.graphs.iter().map(|g| g.n_vertices() as f64).sum::<f64>() / ds.len() as f64
}

fn build_gnn(
    kind: GnnKind,
    m: usize,
    n_classes: usize,
    avg_n: f64,
    seed: u64,
) -> Box<dyn GraphClassifier> {
    match kind {
        GnnKind::Gin => Box::new(Gin::new(&GinConfig::default_for(m, n_classes, seed))),
        GnnKind::Dgcnn => Box::new(Dgcnn::new(&DgcnnConfig::default_for(m, n_classes, seed))),
        GnnKind::Dcnn => Box::new(Dcnn::new(&DcnnConfig::default_for(m, n_classes, seed))),
        GnnKind::PatchySan => Box::new(PatchySan::new(&PatchySanConfig::default_for(
            m, n_classes, avg_n, seed,
        ))),
    }
}

/// A baseline GNN under k-fold CV with epoch selection.
pub fn run_gnn(
    ds: &GraphDataset,
    kind: GnnKind,
    input: GnnInput,
    args: &ExperimentArgs,
) -> CvSummary {
    run_gnn_journaled(ds, kind, input, args, None)
}

/// [`run_gnn`] with checkpoint/resume through the run journal.
pub fn run_gnn_journaled(
    ds: &GraphDataset,
    kind: GnnKind,
    input: GnnInput,
    args: &ExperimentArgs,
    cell: Option<JournalCell<'_>>,
) -> CvSummary {
    let (samples, m) = common::featurize(&ds.graphs, &ds.labels, input, args.seed);
    let avg_n = avg_nodes(ds);
    let train_fold = |fold: usize, train: &[usize], test: &[usize]| {
        let mut model = build_gnn(
            kind,
            m,
            ds.n_classes,
            avg_n,
            args.seed.wrapping_add(fold as u64),
        );
        let train_samples: Vec<GraphSample> = train.iter().map(|&i| samples[i].clone()).collect();
        let test_samples: Vec<GraphSample> = test.iter().map(|&i| samples[i].clone()).collect();
        let history = fit_gnn(
            model.as_mut(),
            &train_samples,
            Some(&test_samples),
            &GnnTrainConfig {
                epochs: args.epochs,
                batch_size: 32,
                learning_rate: 0.01,
                seed: args.seed.wrapping_add(fold as u64),
            },
        );
        FoldCurve {
            test_accuracy: history
                .iter()
                .map(|e| e.eval_accuracy.unwrap_or(0.0))
                .collect(),
            epoch_seconds: mean_epoch_seconds(&history),
            retries: 0,
        }
    };
    run_journaled_cv(ds, args, args.epochs, cell, train_fold)
}

/// Per-epoch *training* accuracy curves (the paper's Figures 6–7): trains
/// on the whole dataset and reports the train-accuracy trajectory.
pub fn deepmap_training_curve(
    ds: &GraphDataset,
    kind: FeatureKind,
    args: &ExperimentArgs,
) -> Vec<f64> {
    let pipeline = DeepMap::new(deepmap_config(kind, args));
    let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
    let all: Vec<usize> = (0..ds.len()).collect();
    let result = pipeline.fit_split(&prepared, &all, &all);
    result.history.iter().map(|e| e.train_accuracy).collect()
}

/// Training-accuracy curve for a baseline GNN (Figure 7).
pub fn gnn_training_curve(
    ds: &GraphDataset,
    kind: GnnKind,
    input: GnnInput,
    args: &ExperimentArgs,
) -> Vec<f64> {
    let (samples, m) = common::featurize(&ds.graphs, &ds.labels, input, args.seed);
    let mut model = build_gnn(kind, m, ds.n_classes, avg_nodes(ds), args.seed);
    let history = fit_gnn(
        model.as_mut(),
        &samples,
        None,
        &GnnTrainConfig {
            epochs: args.epochs,
            batch_size: 32,
            learning_rate: 0.01,
            seed: args.seed,
        },
    );
    history.iter().map(|e| e.train_accuracy).collect()
}

/// Training accuracy of a flat kernel SVM on the full dataset (the constant
/// line the kernels contribute to Figure 6).
pub fn kernel_training_accuracy(
    ds: &GraphDataset,
    kind: FeatureKind,
    args: &ExperimentArgs,
) -> f64 {
    let kernel = deepmap_kernels::kernel_matrix(&ds.graphs, kind, args.seed);
    let all: Vec<usize> = (0..ds.len()).collect();
    let (model, _c) = deepmap_svm::multiclass::select_c_and_train(
        &kernel,
        &all,
        &ds.labels,
        ds.n_classes,
        &PAPER_C_GRID,
    );
    model.accuracy(&kernel, &all, &ds.labels)
}
