//! Append-only run journal: checkpoint/resume for long table runs.
//!
//! Every completed (dataset, method, fold) cell is appended to a JSONL
//! file under `results/` the moment its training finishes, so a killed
//! run loses at most the folds that were still in flight. Re-running the
//! same experiment with `--resume` loads the journal and feeds finished
//! folds back into the CV harness via
//! `deepmap_eval::cv::CvOptions::precomputed`, skipping their training
//! entirely.
//!
//! Records are keyed on `(dataset, method, fold, folds, epochs, seed)` —
//! a journal written at different hyper-parameters can never poison a
//! resumed run. A torn final line (the kill arrived mid-write) is
//! detected and ignored on load.

use crate::json::Json;
use deepmap_eval::cv::FoldCurve;
use deepmap_obs::journal::{Framing, Journal as JsonlJournal, JournalError};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// One journaled fold: the experiment cell key plus the fold's curve.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldRecord {
    /// Dataset name (e.g. `SYNTHIE`).
    pub dataset: String,
    /// Method column (e.g. `DEEPMAP-GK`).
    pub method: String,
    /// Fold index in `0..folds`.
    pub fold: usize,
    /// Total folds `k` in the run that produced this record.
    pub folds: usize,
    /// Training epochs of the run.
    pub epochs: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Held-out accuracy after each epoch.
    pub test_accuracy: Vec<f64>,
    /// Mean wall-clock seconds per epoch.
    pub epoch_seconds: f64,
    /// Diverged attempts recovered from during the fold.
    pub retries: usize,
}

type Key = (String, String, usize, usize, usize, u64);

impl FoldRecord {
    fn key(&self) -> Key {
        (
            self.dataset.clone(),
            self.method.clone(),
            self.fold,
            self.folds,
            self.epochs,
            self.seed,
        )
    }

    /// The curve the CV harness consumes.
    pub fn curve(&self) -> FoldCurve {
        FoldCurve {
            test_accuracy: self.test_accuracy.clone(),
            epoch_seconds: self.epoch_seconds,
            retries: self.retries,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("dataset".into(), Json::Str(self.dataset.clone())),
            ("method".into(), Json::Str(self.method.clone())),
            ("fold".into(), Json::Num(self.fold as f64)),
            ("folds".into(), Json::Num(self.folds as f64)),
            ("epochs".into(), Json::Num(self.epochs as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            (
                "test_accuracy".into(),
                Json::Arr(self.test_accuracy.iter().map(|&v| Json::Num(v)).collect()),
            ),
            ("epoch_seconds".into(), Json::Num(self.epoch_seconds)),
            ("retries".into(), Json::Num(self.retries as f64)),
        ])
    }

    fn from_json(value: &Json) -> Option<FoldRecord> {
        Some(FoldRecord {
            dataset: value.get("dataset")?.as_str()?.to_string(),
            method: value.get("method")?.as_str()?.to_string(),
            fold: value.get("fold")?.as_u64()? as usize,
            folds: value.get("folds")?.as_u64()? as usize,
            epochs: value.get("epochs")?.as_u64()? as usize,
            seed: value.get("seed")?.as_u64()?,
            test_accuracy: value
                .get("test_accuracy")?
                .as_arr()?
                .iter()
                .map(|v| v.as_f64())
                .collect::<Option<Vec<f64>>>()?,
            epoch_seconds: value.get("epoch_seconds")?.as_f64()?,
            retries: value.get("retries")?.as_u64()? as usize,
        })
    }
}

/// The append-only journal. Safe to share across fold worker threads.
///
/// The append/replay plumbing (flush-on-append, torn-line tolerance on
/// resume) lives in [`deepmap_obs::journal`] — shared with the lifecycle
/// controller's rollout journal — in its [`Framing::Plain`] mode, which
/// is byte-for-byte the format this journal has always written.
pub struct Journal {
    inner: JsonlJournal,
    loaded: HashMap<Key, FoldRecord>,
    skipped_lines: usize,
}

/// Journal callers predate the typed [`JournalError`] and speak
/// `io::Result`; filesystem failures pass through and the (unreachable
/// for this record shape) encoding failure maps to `InvalidData`.
fn to_io(err: JournalError) -> io::Error {
    match err {
        JournalError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

impl Journal {
    /// Opens (creating parent directories as needed) the journal at
    /// `path`. With `resume` set, existing records are loaded for
    /// [`Journal::precomputed_curves`] lookups and new records are
    /// appended after them; without it, any existing journal is
    /// truncated and the run starts clean.
    pub fn open(path: &Path, resume: bool) -> io::Result<Journal> {
        let (inner, replay) = JsonlJournal::open(path, Framing::Plain, resume).map_err(to_io)?;
        let mut loaded = HashMap::new();
        // Lines the replay could not parse as JSON, plus parsed records
        // that are not fold records (hand-edited garbage): skip both
        // rather than refuse to resume.
        let mut skipped_lines = replay.skipped_lines;
        for value in &replay.records {
            match FoldRecord::from_json(value) {
                Some(rec) => {
                    loaded.insert(rec.key(), rec);
                }
                None => skipped_lines += 1,
            }
        }
        Ok(Journal {
            inner,
            loaded,
            skipped_lines,
        })
    }

    /// Number of records loaded from an existing journal.
    pub fn n_loaded(&self) -> usize {
        self.loaded.len()
    }

    /// Unparseable lines ignored during load (normally 0; 1 after a kill
    /// that interrupted a write).
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// The journaled curve for one cell, if the fold already completed
    /// under identical experiment parameters.
    pub fn completed(
        &self,
        dataset: &str,
        method: &str,
        fold: usize,
        folds: usize,
        epochs: usize,
        seed: u64,
    ) -> Option<&FoldRecord> {
        self.loaded.get(&(
            dataset.to_string(),
            method.to_string(),
            fold,
            folds,
            epochs,
            seed,
        ))
    }

    /// Per-fold precomputed curves for a whole cell, shaped for
    /// `CvOptions::precomputed`.
    pub fn precomputed_curves(
        &self,
        dataset: &str,
        method: &str,
        folds: usize,
        epochs: usize,
        seed: u64,
    ) -> Vec<Option<FoldCurve>> {
        (0..folds)
            .map(|fold| {
                self.completed(dataset, method, fold, folds, epochs, seed)
                    .map(FoldRecord::curve)
            })
            .collect()
    }

    /// Appends one record and flushes it to disk immediately — the whole
    /// point is surviving a kill right after this call returns.
    pub fn record(&self, rec: &FoldRecord) -> io::Result<()> {
        self.inner.append(&rec.to_json()).map_err(to_io)
    }
}

/// The conventional journal location for an experiment binary:
/// `results/<experiment>.journal.jsonl`.
pub fn default_journal_path(experiment: &str) -> PathBuf {
    PathBuf::from("results").join(format!("{experiment}.journal.jsonl"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("deepmap-journal-{tag}-{}", std::process::id()))
    }

    fn sample_record(fold: usize) -> FoldRecord {
        FoldRecord {
            dataset: "SYNTHIE".into(),
            method: "DEEPMAP-GK".into(),
            fold,
            folds: 3,
            epochs: 2,
            seed: 7,
            test_accuracy: vec![0.5, 0.625],
            epoch_seconds: 0.125,
            retries: fold % 2,
        }
    }

    #[test]
    fn records_round_trip_through_resume() {
        let path = tmp_path("roundtrip");
        {
            let journal = Journal::open(&path, false).unwrap();
            journal.record(&sample_record(0)).unwrap();
            journal.record(&sample_record(2)).unwrap();
        }
        let journal = Journal::open(&path, true).unwrap();
        assert_eq!(journal.n_loaded(), 2);
        assert_eq!(journal.skipped_lines(), 0);
        assert_eq!(
            journal.completed("SYNTHIE", "DEEPMAP-GK", 0, 3, 2, 7),
            Some(&sample_record(0))
        );
        let curves = journal.precomputed_curves("SYNTHIE", "DEEPMAP-GK", 3, 2, 7);
        assert!(curves[0].is_some());
        assert!(curves[1].is_none());
        assert_eq!(curves[2].as_ref().unwrap().retries, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn key_mismatch_is_not_resumed() {
        let path = tmp_path("keys");
        {
            let journal = Journal::open(&path, false).unwrap();
            journal.record(&sample_record(0)).unwrap();
        }
        let journal = Journal::open(&path, true).unwrap();
        // Same cell, different epochs/seed/folds → no hit.
        assert!(journal
            .completed("SYNTHIE", "DEEPMAP-GK", 0, 3, 9, 7)
            .is_none());
        assert!(journal
            .completed("SYNTHIE", "DEEPMAP-GK", 0, 3, 2, 8)
            .is_none());
        assert!(journal
            .completed("SYNTHIE", "DEEPMAP-GK", 0, 5, 2, 7)
            .is_none());
        assert!(journal
            .completed("SYNTHIE", "DEEPMAP-SP", 0, 3, 2, 7)
            .is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_skipped() {
        let path = tmp_path("torn");
        {
            let journal = Journal::open(&path, false).unwrap();
            journal.record(&sample_record(0)).unwrap();
            journal.record(&sample_record(1)).unwrap();
        }
        // Simulate a kill mid-write: chop the file mid-way through the
        // second record.
        let text = std::fs::read_to_string(&path).unwrap();
        let first_len = text.lines().next().unwrap().len();
        std::fs::write(&path, &text[..first_len + 1 + 20]).unwrap();
        let journal = Journal::open(&path, true).unwrap();
        assert_eq!(journal.n_loaded(), 1);
        assert_eq!(journal.skipped_lines(), 1);
        assert!(journal
            .completed("SYNTHIE", "DEEPMAP-GK", 0, 3, 2, 7)
            .is_some());
        assert!(journal
            .completed("SYNTHIE", "DEEPMAP-GK", 1, 3, 2, 7)
            .is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_open_truncates() {
        let path = tmp_path("truncate");
        {
            let journal = Journal::open(&path, false).unwrap();
            journal.record(&sample_record(0)).unwrap();
        }
        {
            let journal = Journal::open(&path, false).unwrap();
            assert_eq!(journal.n_loaded(), 0);
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_records_all_land() {
        let path = tmp_path("concurrent");
        let journal = Journal::open(&path, false).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let journal = &journal;
                scope.spawn(move || {
                    for i in 0..5 {
                        journal.record(&sample_record(t * 5 + i)).unwrap();
                    }
                });
            }
        });
        drop(journal);
        let reloaded = Journal::open(&path, true).unwrap();
        assert_eq!(reloaded.n_loaded(), 20);
        assert_eq!(reloaded.skipped_lines(), 0);
        std::fs::remove_file(&path).ok();
    }
}
