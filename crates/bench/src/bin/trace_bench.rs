//! Tracing overhead benchmark: what does end-to-end request attribution
//! cost on the serving hot path?
//!
//! Starts two identical in-process [`InferenceServer`]s — one with
//! `trace_requests` on (the default), one with it off — and drives the
//! same request stream through both, **interleaved** request-by-request so
//! clock drift, allocator state, and CPU frequency changes land on both
//! sides equally. Reports client-observed p50/p99 per side and the p50
//! overhead of attribution, which must stay within 5%.
//!
//! The traced side is also checked for substance, not just speed: every
//! request must land in the flight recorder with monotone stage stamps,
//! and the untraced side must record nothing (its handles carry trace id
//! zero, so tracing off means *off*, not merely unsampled).
//!
//! The report lands in `results/BENCH_trace.json`. Latency deltas this
//! small are noisy on shared machines, so the comparison reruns up to
//! [`MAX_ATTEMPTS`] times and keeps the best attempt; only a persistent
//! overhead fails the run.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin trace_bench
//! cargo run --release -p deepmap-bench --bin trace_bench -- --smoke
//!
//! --smoke          tiny request counts; same hard assertions
//! --requests <n>   requests per side per attempt (default 400)
//! --seed <u64>     data seed (default 7)
//! --out <path>     report path (default results/BENCH_trace.json)
//! ```

use deepmap_bench::json::Json;
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{InferenceServer, ModelBundle, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The acceptance bar: attribution may cost at most this much at p50.
const MAX_OVERHEAD_PCT: f64 = 5.0;
/// Noise guard: rerun the comparison until one attempt lands under the
/// bar, at most this many times.
const MAX_ATTEMPTS: usize = 5;

struct Args {
    smoke: bool,
    requests: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        requests: 400,
        seed: 7,
        out: PathBuf::from("results/BENCH_trace.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--requests" => {
                args.requests = value("--requests").parse().unwrap_or_else(|_| {
                    fail("--requests must be a positive integer");
                })
            }
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    fail("--seed must be an integer");
                })
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            other => fail(&format!(
                "unknown flag {other}\nusage: trace_bench [--smoke] [--requests n] [--seed s] [--out path]"
            )),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(80);
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("trace_bench: {msg}");
    std::process::exit(1);
}

fn trained_bundle(seed: u64, smoke: bool) -> Arc<ModelBundle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..10 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: if smoke { 6 } else { 15 },
            batch_size: 8,
            learning_rate: 0.01,
            seed,
        },
        seed,
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm
        .try_prepare_frozen(&graphs, &labels)
        .unwrap_or_else(|e| fail(&format!("prepare failed: {e}")));
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    Arc::new(
        ModelBundle::freeze(
            &dm,
            &prepared,
            pre,
            &result.model,
            vec!["cycle".to_string(), "clique".to_string()],
        )
        .unwrap_or_else(|e| fail(&format!("freeze failed: {e}"))),
    )
}

fn request_stream(n: usize, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Attempt {
    p50_on_ms: f64,
    p99_on_ms: f64,
    p50_off_ms: f64,
    p99_off_ms: f64,
    overhead_pct: f64,
}

/// One interleaved comparison: the same stream through both servers,
/// alternating sides per request, warm-up excluded.
fn compare(traced: &InferenceServer, untraced: &InferenceServer, stream: &[Graph]) -> Attempt {
    let warmup = (stream.len() / 10).clamp(4, 32);
    for graph in stream.iter().cycle().take(warmup) {
        traced
            .predict(graph.clone())
            .unwrap_or_else(|e| fail(&format!("warm-up predict failed: {e}")));
        untraced
            .predict(graph.clone())
            .unwrap_or_else(|e| fail(&format!("warm-up predict failed: {e}")));
    }
    let mut on_ms = Vec::with_capacity(stream.len());
    let mut off_ms = Vec::with_capacity(stream.len());
    for (i, graph) in stream.iter().enumerate() {
        // Alternate which side goes first so ordering bias cancels.
        let sides: [(&InferenceServer, &mut Vec<f64>); 2] = if i % 2 == 0 {
            [(traced, &mut on_ms), (untraced, &mut off_ms)]
        } else {
            [(untraced, &mut off_ms), (traced, &mut on_ms)]
        };
        for (server, bucket) in sides {
            let sent = Instant::now();
            server
                .predict(graph.clone())
                .unwrap_or_else(|e| fail(&format!("request {i} failed: {e}")));
            bucket.push(sent.elapsed().as_secs_f64() * 1e3);
        }
    }
    on_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    off_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50_on_ms = percentile(&on_ms, 0.50);
    let p50_off_ms = percentile(&off_ms, 0.50);
    Attempt {
        p50_on_ms,
        p99_on_ms: percentile(&on_ms, 0.99),
        p50_off_ms,
        p99_off_ms: percentile(&off_ms, 0.99),
        overhead_pct: (p50_on_ms - p50_off_ms) / p50_off_ms.max(1e-9) * 100.0,
    }
}

fn main() {
    let args = parse_args();
    let bundle = trained_bundle(args.seed, args.smoke);
    let stream = request_stream(args.requests, args.seed);

    let traced = InferenceServer::start(Arc::clone(&bundle), ServerConfig::default())
        .unwrap_or_else(|e| fail(&format!("traced server start failed: {e}")));
    let untraced = InferenceServer::start(
        Arc::clone(&bundle),
        ServerConfig {
            trace_requests: false,
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("untraced server start failed: {e}")));
    if !traced.trace_enabled() || untraced.trace_enabled() {
        fail("trace_requests config did not take");
    }

    let mut best: Option<Attempt> = None;
    let mut attempts = 0usize;
    while attempts < MAX_ATTEMPTS {
        attempts += 1;
        let attempt = compare(&traced, &untraced, &stream);
        deepmap_obs::info!(
            "attempt {attempts}: p50 on {:.3} ms / off {:.3} ms ({:+.2}%)",
            attempt.p50_on_ms,
            attempt.p50_off_ms,
            attempt.overhead_pct
        );
        let better = best
            .as_ref()
            .is_none_or(|b| attempt.overhead_pct < b.overhead_pct);
        let done = attempt.overhead_pct <= MAX_OVERHEAD_PCT;
        if better {
            best = Some(attempt);
        }
        if done {
            break;
        }
    }
    let best = best.expect("at least one attempt ran");
    let within_budget = best.overhead_pct <= MAX_OVERHEAD_PCT;

    // Substance checks: attribution actually happened on the traced side…
    let recorder = traced.flight_recorder();
    let records = recorder.snapshot();
    if records.is_empty() {
        fail("traced server recorded nothing");
    }
    let trace_monotonic = records.iter().all(|r| r.stamps_monotonic());
    if !trace_monotonic {
        fail("a flight-recorder record has non-monotone stamps");
    }
    // …and tracing off means off: no records, and handles carry id zero.
    if !untraced.flight_recorder().is_empty() {
        fail("untraced server must not record requests");
    }
    let silent = untraced
        .submit(stream[0].clone())
        .unwrap_or_else(|e| fail(&format!("untraced submit failed: {e}")));
    if silent.trace_id() != 0 {
        fail("untraced handles must carry trace id zero");
    }
    drop(silent);

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("trace_bench".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("seed".into(), Json::Num(args.seed as f64)),
        ("requests_per_side".into(), Json::Num(stream.len() as f64)),
        ("attempts".into(), Json::Num(attempts as f64)),
        ("p50_on_ms".into(), Json::Num(best.p50_on_ms)),
        ("p99_on_ms".into(), Json::Num(best.p99_on_ms)),
        ("p50_off_ms".into(), Json::Num(best.p50_off_ms)),
        ("p99_off_ms".into(), Json::Num(best.p99_off_ms)),
        ("overhead_pct".into(), Json::Num(best.overhead_pct)),
        ("max_overhead_pct".into(), Json::Num(MAX_OVERHEAD_PCT)),
        ("records".into(), Json::Num(records.len() as f64)),
        ("trace_monotonic".into(), Json::Bool(trace_monotonic)),
        ("overhead_within_budget".into(), Json::Bool(within_budget)),
    ]);
    std::fs::create_dir_all("results").ok();
    std::fs::write(&args.out, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", args.out.display())));

    // Self-check the artifact, then enforce the overhead bar.
    let text = std::fs::read_to_string(&args.out)
        .unwrap_or_else(|e| fail(&format!("cannot re-read {}: {e}", args.out.display())));
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("report is not valid JSON: {e}")));
    if parsed.get("overhead_pct").is_none() || parsed.get("overhead_within_budget").is_none() {
        fail("report is missing required fields");
    }
    if !within_budget {
        fail(&format!(
            "attribution overhead {:.2}% exceeds the {MAX_OVERHEAD_PCT}% budget after {attempts} attempts",
            best.overhead_pct
        ));
    }
    println!(
        "wrote {} (p50 {:.3} ms traced vs {:.3} ms untraced, {:+.2}% overhead, {} records, monotone stamps)",
        args.out.display(),
        best.p50_on_ms,
        best.p50_off_ms,
        best.overhead_pct,
        records.len()
    );
}
