//! Network serving benchmark: round-trip latency and hardening counters for
//! the `deepmap-net` TCP front end.
//!
//! Trains a small DeepMap-WL classifier, freezes it into a bundle, serves
//! it behind a [`NetServer`] on an ephemeral loopback port, and measures:
//!
//! 1. **healthy** — client-observed p50/p99 round-trip latency and
//!    requests/sec over real sockets, reconnecting periodically to exercise
//!    the accept path, plus one batched frame;
//! 2. **rejections** — a deliberately starved second server (zero in-flight
//!    budget, two-connection cap) must answer every overflow with a typed
//!    `Busy`, feeding the `serve.rejected_busy` / `serve.conn_rejected_capacity`
//!    counters;
//! 3. **torture** — a seeded burst of hostile byte streams (bad magic, bad
//!    version, unknown types, oversized declarations, truncated bodies,
//!    garbage payloads) against the main server; every hostile frame must be
//!    answered with an error frame, and the server must keep serving.
//!
//! The report lands in `results/BENCH_net.json`. Hard contract, enforced
//! with non-zero exits: zero handler panics, zero force-closed sockets on
//! shutdown (`clean_shutdown`), and a server that survives the full torture
//! burst (`torture_survived`).
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin serve_net
//! cargo run --release -p deepmap-bench --bin serve_net -- --smoke
//!
//! --smoke          tiny request counts; same hard assertions
//! --requests <n>   healthy round-trips (default 200)
//! --seed <u64>     master seed for data and torture bytes (default 7)
//! --out <path>     report path (default results/BENCH_net.json)
//! ```

use deepmap_bench::json::Json;
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_net::protocol::{encode_frame, encode_named_body, MAGIC};
use deepmap_net::{
    ClientError, ErrorCode, FrameType, NetClient, NetConfig, NetServer, WIRE_VERSION,
};
use deepmap_nn::train::TrainConfig;
use deepmap_router::{ModelConfig, ModelRouter, RouterConfig};
use deepmap_serve::{InferenceServer, ModelBundle, ServeError, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Replies wait out cold starts; nothing in this harness may hang on them.
const PATIENT: Duration = Duration::from_secs(30);
/// Reconnect cadence during the healthy run (exercises accept/close).
const RECONNECT_EVERY: usize = 25;

struct Args {
    smoke: bool,
    requests: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        requests: 200,
        seed: 7,
        out: PathBuf::from("results/BENCH_net.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--requests" => {
                args.requests = value("--requests").parse().unwrap_or_else(|_| {
                    fail("--requests must be a positive integer");
                })
            }
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    fail("--seed must be an integer");
                })
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            other => fail(&format!(
                "unknown flag {other}\nusage: serve_net [--smoke] [--requests n] [--seed s] [--out path]"
            )),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(40);
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("serve_net: {msg}");
    std::process::exit(1);
}

/// Fixed-increment SplitMix64 — keys the torture byte streams.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn synthetic_dataset(seed: u64) -> (Vec<Graph>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..10 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    (graphs, labels)
}

fn request_stream(n: usize, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}

fn trained_bundle(seed: u64, smoke: bool) -> Arc<ModelBundle> {
    let (graphs, labels) = synthetic_dataset(seed);
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: if smoke { 6 } else { 15 },
            batch_size: 8,
            learning_rate: 0.01,
            seed,
        },
        seed,
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm
        .try_prepare_frozen(&graphs, &labels)
        .unwrap_or_else(|e| fail(&format!("prepare failed: {e}")));
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    Arc::new(
        ModelBundle::freeze(
            &dm,
            &prepared,
            pre,
            &result.model,
            vec!["cycle".to_string(), "clique".to_string()],
        )
        .unwrap_or_else(|e| fail(&format!("freeze failed: {e}"))),
    )
}

fn start_server(bundle: &Arc<ModelBundle>, config: NetConfig) -> NetServer {
    let engine = InferenceServer::start(Arc::clone(bundle), ServerConfig::default())
        .unwrap_or_else(|e| fail(&format!("engine start failed: {e}")));
    NetServer::start(engine, "127.0.0.1:0", config)
        .unwrap_or_else(|e| fail(&format!("net server start failed: {e}")))
}

/// Like [`start_server`], but keeps a router handle so the trace section
/// can reach the engine behind the wire (to plant a shed anomaly).
fn start_router_server(
    bundle: &Arc<ModelBundle>,
    config: NetConfig,
) -> (NetServer, Arc<ModelRouter>) {
    let router = Arc::new(ModelRouter::new(RouterConfig::default()));
    router
        .register("default", Arc::clone(bundle), ModelConfig::default())
        .unwrap_or_else(|e| fail(&format!("register failed: {e}")));
    let server = NetServer::start_router(Arc::clone(&router), "127.0.0.1:0", config)
        .unwrap_or_else(|e| fail(&format!("net server start failed: {e}")));
    (server, router)
}

fn connect(server: &NetServer) -> NetClient {
    let client = NetClient::connect(server.local_addr())
        .unwrap_or_else(|e| fail(&format!("connect failed: {e}")));
    client
        .set_read_timeout(PATIENT)
        .unwrap_or_else(|e| fail(&format!("set timeout failed: {e}")));
    client
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One hostile stream on a fresh connection; returns `true` when the server
/// answered it with a typed error frame (the contract for every scenario
/// except mid-frame disconnects, which owe no reply).
fn throw_hostile(server: &NetServer, rng: &mut SplitMix64, kind: u64) -> (bool, bool) {
    let mut client = connect(server);
    let mut header = Vec::with_capacity(10);
    header.extend_from_slice(&MAGIC);
    header.push(WIRE_VERSION);
    header.push(FrameType::Health as u8);
    header.extend_from_slice(&0u32.to_le_bytes());
    let expects_reply = match kind {
        // Corrupted magic byte.
        0 => {
            header[rng.below(4) as usize] ^= 1 + rng.below(255) as u8;
            true
        }
        // Unsupported version (3..: both 1 and 2 are spoken dialects now).
        1 => {
            header[4] = 3 + rng.below(250) as u8;
            true
        }
        // Unknown frame type.
        2 => {
            let mut byte = rng.next_u64() as u8;
            while FrameType::from_u8(byte).is_some() {
                byte = byte.wrapping_add(1);
            }
            header[5] = byte;
            true
        }
        // Oversized declared body.
        3 => {
            let declared = deepmap_net::DEFAULT_MAX_FRAME + 1 + rng.below(1024) as u32;
            header[6..10].copy_from_slice(&declared.to_le_bytes());
            true
        }
        // Well-formed Predict frame, garbage body.
        4 => {
            let body: Vec<u8> = (0..8 + rng.below(40))
                .map(|_| rng.next_u64() as u8)
                .collect();
            header = encode_frame(FrameType::Predict, &encode_named_body("", &body));
            true
        }
        // Truncated body, then disconnect: no reply owed.
        _ => {
            header[5] = FrameType::Predict as u8;
            let declared = 32 + rng.below(64) as u32;
            header[6..10].copy_from_slice(&declared.to_le_bytes());
            header.extend((0..rng.below(declared as u64)).map(|_| rng.next_u64() as u8));
            false
        }
    };
    if client.send_raw(&header).is_err() {
        return (expects_reply, false);
    }
    if !expects_reply {
        return (false, false);
    }
    let answered = matches!(client.read_reply(), Ok((FrameType::Error, _)));
    (true, answered)
}

fn main() {
    let args = parse_args();
    let bundle = trained_bundle(args.seed, args.smoke);
    let stream = request_stream(args.requests, args.seed);
    // Admin is on so the trace section can pull the flight recorder over
    // the wire with a TraceDump frame.
    let (server, router) = start_router_server(
        &bundle,
        NetConfig {
            allow_admin: true,
            ..NetConfig::default()
        },
    );

    // 1. Healthy round-trips, client-observed latency over real sockets.
    let mut client = connect(&server);
    client
        .predict(&stream[0])
        .unwrap_or_else(|e| fail(&format!("warm-up predict failed: {e}")));
    let mut latencies_ms = Vec::with_capacity(stream.len());
    let start = Instant::now();
    for (i, graph) in stream.iter().enumerate() {
        if i > 0 && i % RECONNECT_EVERY == 0 {
            client = connect(&server);
        }
        let sent = Instant::now();
        match client.predict(graph) {
            Ok(_) => latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3),
            Err(e) => fail(&format!("healthy request {i} failed: {e}")),
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let requests_per_sec = stream.len() as f64 / elapsed;
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50_ms = percentile(&latencies_ms, 0.50);
    let p99_ms = percentile(&latencies_ms, 0.99);

    // One batched frame: every item must come back healthy.
    let batch_n = stream.len().min(16);
    let batch = client
        .predict_batch(&stream[..batch_n])
        .unwrap_or_else(|e| fail(&format!("batch failed: {e}")));
    let batch_ok = batch.iter().filter(|item| item.is_ok()).count();
    if batch_ok != batch_n {
        fail(&format!("batch served {batch_ok}/{batch_n} items"));
    }
    // Trace pull: a caller-chosen trace id must ride the TR01 trailer into
    // the flight recorder and come back out of the admin TraceDump frame
    // with monotone stage stamps. An in-process zero-deadline request
    // sheds at the batcher, so the dump provably carries anomaly causes.
    let chosen_trace = 0x7E57_0000_0000_0001_u64 ^ args.seed;
    client
        .predict_traced("", &stream[0], chosen_trace)
        .unwrap_or_else(|e| fail(&format!("traced predict failed: {e}")));
    let engine = router
        .resolve("")
        .unwrap_or_else(|e| fail(&format!("resolve failed: {e}")));
    let doomed = engine
        .submit_with_deadline(stream[0].clone(), Some(Duration::ZERO))
        .unwrap_or_else(|e| fail(&format!("doomed submit failed: {e}")));
    match doomed.wait_timeout(PATIENT) {
        Err(ServeError::DeadlineExceeded) => {}
        other => fail(&format!("zero-deadline request must shed, got {other:?}")),
    }
    let dump = client
        .trace_dump()
        .unwrap_or_else(|e| fail(&format!("trace dump failed: {e}")));
    let chosen_hex = format!("{chosen_trace:016x}");
    let mut trace_records = 0u64;
    let mut trace_monotonic = true;
    let mut chosen_seen = false;
    let mut anomaly_causes_ok = false;
    for line in dump.lines() {
        let record = Json::parse(line)
            .unwrap_or_else(|e| fail(&format!("trace dump line is not JSON: {e}\n{line}")));
        trace_records += 1;
        if record.get("trace_id").and_then(|t| t.as_str()) == Some(chosen_hex.as_str()) {
            chosen_seen = true;
        }
        let stages = record.get("stages");
        let mut last = 0u64;
        for stage in [
            "accepted",
            "admitted",
            "enqueued",
            "batch_sealed",
            "infer_start",
            "infer_end",
            "reply_written",
        ] {
            if let Some(at) = stages.and_then(|s| s.get(stage)).and_then(|s| s.as_u64()) {
                if at < last {
                    trace_monotonic = false;
                }
                last = at;
            }
        }
        if record.get("outcome").and_then(|o| o.as_str()) == Some("shed_deadline") {
            let cause = record
                .get("cause")
                .and_then(|c| c.as_str())
                .unwrap_or_default();
            if cause.contains("deadline exceeded") {
                anomaly_causes_ok = true;
            }
        }
    }
    if !chosen_seen {
        fail(&format!(
            "trace id {chosen_hex} missing from the dump:\n{dump}"
        ));
    }
    if !trace_monotonic {
        fail(&format!("stage stamps went backwards in the dump:\n{dump}"));
    }
    if !anomaly_causes_ok {
        fail(&format!(
            "shed anomaly cause missing from the dump:\n{dump}"
        ));
    }
    deepmap_obs::info!(
        "trace: {trace_records} records pulled, id {chosen_hex} adopted, stamps monotone, shed cause recorded"
    );
    drop(client);
    deepmap_obs::info!(
        "healthy: {} round-trips, p50 {:.3} ms, p99 {:.3} ms, {:.0} req/s",
        stream.len(),
        p50_ms,
        p99_ms,
        requests_per_sec
    );

    // 2. Rejection counters on a deliberately starved server: zero
    // in-flight budget and a two-connection cap.
    let starved = start_server(
        &bundle,
        NetConfig {
            max_connections: 2,
            max_in_flight: 0,
            ..NetConfig::default()
        },
    );
    let mut busy_rejects = 0u64;
    let mut holders: Vec<NetClient> = Vec::new();
    for _ in 0..2 {
        let mut c = connect(&starved);
        match c.predict(&stream[0]) {
            Err(ClientError::Server(r)) if r.code == ErrorCode::Busy => busy_rejects += 1,
            other => fail(&format!(
                "starved server must reject with Busy, got {other:?}"
            )),
        }
        holders.push(c); // keep the connection open to fill the cap
    }
    // Over the connection cap: the server answers Busy and closes.
    let mut overflow = connect(&starved);
    match overflow.read_reply() {
        Ok((FrameType::Error, _)) => {}
        other => fail(&format!(
            "over-cap connection must get an error frame, got {other:?}"
        )),
    }
    let starved_metrics = starved.metrics();
    drop(holders);
    drop(overflow);
    let starved_stats = starved.shutdown();
    if starved_metrics.rejected_busy != busy_rejects || busy_rejects != 2 {
        fail("serve.rejected_busy disagrees with the driven rejections");
    }
    if starved_metrics.conn_rejected_capacity != 1 {
        fail("serve.conn_rejected_capacity must count the over-cap connection");
    }
    deepmap_obs::info!(
        "rejections: {} busy, {} capacity, starved shutdown forced {} closes",
        starved_metrics.rejected_busy,
        starved_metrics.conn_rejected_capacity,
        starved_stats.forced_closes
    );

    // 3. Seeded torture burst against the main server.
    let mut rng = SplitMix64(args.seed ^ 0xD33_94A9);
    let torture_rounds: u64 = if args.smoke { 12 } else { 60 };
    let mut hostile_frames = 0u64;
    let mut answered_errors = 0u64;
    for round in 0..torture_rounds {
        let (owed, answered) = throw_hostile(&server, &mut rng, round % 6);
        if owed {
            hostile_frames += 1;
            if answered {
                answered_errors += 1;
            }
        }
    }
    // The server must still serve, correctly, after the burst.
    let mut survivor = connect(&server);
    let torture_survived = stream.iter().take(4).all(|g| survivor.predict(g).is_ok());
    drop(survivor);
    let main_metrics = server.metrics();
    let stats = server.shutdown();
    let clean_shutdown = stats.forced_closes == 0
        && stats.conn_panics == 0
        && stats.conns_accepted == stats.conns_closed;
    deepmap_obs::info!(
        "torture: {hostile_frames} hostile frames, {answered_errors} answered, survived {torture_survived}, clean shutdown {clean_shutdown}"
    );

    // 4. Report + hard assertions.
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("serve_net".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("seed".into(), Json::Num(args.seed as f64)),
        ("requests".into(), Json::Num(stream.len() as f64)),
        ("p50_ms".into(), Json::Num(p50_ms)),
        ("p99_ms".into(), Json::Num(p99_ms)),
        ("requests_per_sec".into(), Json::Num(requests_per_sec)),
        ("batch_items_ok".into(), Json::Num(batch_ok as f64)),
        (
            "rejections".into(),
            Json::Obj(vec![
                (
                    "rejected_busy".into(),
                    Json::Num(starved_metrics.rejected_busy as f64),
                ),
                (
                    "conn_rejected_capacity".into(),
                    Json::Num(starved_metrics.conn_rejected_capacity as f64),
                ),
                (
                    "conn_frame_errors".into(),
                    Json::Num(main_metrics.conn_frame_errors as f64),
                ),
            ]),
        ),
        (
            "torture".into(),
            Json::Obj(vec![
                ("hostile_frames".into(), Json::Num(hostile_frames as f64)),
                ("answered_errors".into(), Json::Num(answered_errors as f64)),
                (
                    "conn_panics".into(),
                    Json::Num(main_metrics.conn_panics as f64),
                ),
            ]),
        ),
        (
            "trace".into(),
            Json::Obj(vec![
                ("records".into(), Json::Num(trace_records as f64)),
                ("chosen_id_seen".into(), Json::Bool(chosen_seen)),
                ("trace_monotonic".into(), Json::Bool(trace_monotonic)),
                ("anomaly_causes_ok".into(), Json::Bool(anomaly_causes_ok)),
            ]),
        ),
        ("torture_survived".into(), Json::Bool(torture_survived)),
        ("clean_shutdown".into(), Json::Bool(clean_shutdown)),
    ]);
    std::fs::create_dir_all("results").ok();
    std::fs::write(&args.out, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", args.out.display())));

    // Self-check: re-read and parse what landed on disk, then enforce the
    // hardening contract with non-zero exits.
    let text = std::fs::read_to_string(&args.out)
        .unwrap_or_else(|e| fail(&format!("cannot re-read {}: {e}", args.out.display())));
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("report is not valid JSON: {e}")));
    if parsed.get("p99_ms").is_none()
        || parsed.get("requests_per_sec").is_none()
        || parsed.get("torture_survived").is_none()
    {
        fail("report is missing required fields");
    }
    if latencies_ms.len() != stream.len() {
        fail("healthy run must answer every request");
    }
    if answered_errors != hostile_frames {
        fail(&format!(
            "{answered_errors}/{hostile_frames} hostile frames answered — typed-error contract broken"
        ));
    }
    if main_metrics.conn_panics != 0 {
        fail("handler panicked during torture");
    }
    if !torture_survived {
        fail("server stopped serving after the torture burst");
    }
    if !clean_shutdown {
        fail(&format!(
            "shutdown was not clean: {} forced closes, {} accepted vs {} closed",
            stats.forced_closes, stats.conns_accepted, stats.conns_closed
        ));
    }
    println!(
        "wrote {} (p50 {:.3} ms, p99 {:.3} ms, {:.0} req/s, {} hostile frames all answered, clean shutdown)",
        args.out.display(),
        p50_ms,
        p99_ms,
        requests_per_sec,
        hostile_frames
    );
}
