//! Reproduces **Figure 5**: parameter sensitivity of the deep map models
//! with respect to the receptive-field size `r` on SYNTHIE.
//!
//! The paper's finding: with `r = 1` (no neighbourhood) the deep maps are
//! poor (~27%); from `r >= 2` they beat their flat kernels; DEEPMAP-SP/WL
//! degrade for large `r` ("six degrees of separation") while DEEPMAP-GK
//! keeps improving.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin fig5_sensitivity -- --scale 0.25 --epochs 30
//! ```
//!
//! Extra flag handled here: `--ordering eigenvector|degree|random` for the
//! vertex-ordering ablation (DESIGN.md §4 choice 1).

use deepmap_bench::runner::load_dataset;
use deepmap_bench::runner::{deepmap_config, run_deepmap_config, run_flat_kernel};
use deepmap_bench::ExperimentArgs;
use deepmap_core::VertexOrdering;
use deepmap_eval::tables::series_markdown;
use deepmap_kernels::FeatureKind;

fn main() {
    // Strip the --ordering flag before the shared parser sees it.
    let mut raw: Vec<String> = std::env::args().collect();
    let mut ordering = VertexOrdering::EigenvectorCentrality;
    if let Some(pos) = raw.iter().position(|a| a == "--ordering") {
        let value = raw.get(pos + 1).cloned().unwrap_or_default();
        ordering = match value.as_str() {
            "eigenvector" => VertexOrdering::EigenvectorCentrality,
            "degree" => VertexOrdering::DegreeCentrality,
            "random" => VertexOrdering::Random(13),
            other => {
                eprintln!("unknown ordering {other:?}; use eigenvector|degree|random");
                std::process::exit(2);
            }
        };
        raw.drain(pos..=pos + 1);
    }
    let args = ExperimentArgs::parse(raw);

    let ds = load_dataset("SYNTHIE", &args).expect("SYNTHIE registered");
    deepmap_obs::info!(
        "SYNTHIE at scale {}: {} graphs, ordering {ordering:?}",
        args.scale,
        ds.len()
    );

    let kinds = [
        FeatureKind::paper_graphlet(),
        FeatureKind::ShortestPath,
        FeatureKind::paper_wl(),
    ];
    let rs: Vec<usize> = (1..=10).collect();

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for kind in kinds {
        // Flat kernel accuracy is independent of r: one horizontal line.
        let flat = run_flat_kernel(&ds, kind, &args);
        deepmap_obs::info!("{} (flat kernel): {}", kind.name(), flat.accuracy);
        series.push((kind.name().to_string(), vec![flat.accuracy.mean; rs.len()]));

        let mut deep = Vec::with_capacity(rs.len());
        for &r in &rs {
            let mut config = deepmap_config(kind, &args);
            config.r = r;
            config.ordering = ordering;
            let summary = run_deepmap_config(&ds, config, &args);
            deepmap_obs::info!("DEEPMAP-{} r={r}: {}", kind.name(), summary.accuracy);
            deep.push(summary.accuracy.mean);
        }
        series.push((format!("DEEPMAP-{}", kind.name()), deep));
    }

    let xs: Vec<f64> = rs.iter().map(|&r| r as f64).collect();
    println!(
        "{}",
        series_markdown(
            "Figure 5 — accuracy vs receptive-field size r (SYNTHIE)",
            "r",
            &series,
            &xs,
        )
    );
}
