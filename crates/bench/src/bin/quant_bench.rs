//! f32-vs-SIMD-vs-int8 benchmark for the inference hot path.
//!
//! Three tiers, one report (`results/BENCH_quant.json`):
//!
//! - **kernels** — per-call latency (p50/p99) and GFLOP/s for one
//!   dense-layer-shaped product, at each numeric tier: the naive scalar
//!   reference (`matmul_reference`), the blocked/unrolled f32 kernel
//!   (`matmul`, bit-identical to the reference), and the int8 path
//!   (`qmatmul`, including its per-row activation quantization);
//! - **predictor** — end-to-end `Predictor::predict` latency at
//!   `Precision::F32` vs `Precision::Int8` over a held-out request stream;
//! - **accuracy** — the f32/int8 prediction-agreement rate over the same
//!   stream against the gate the bundle was quantized under, plus the f32
//!   and int8 weight-section sizes.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin quant_bench
//! cargo run --release -p deepmap-bench --bin quant_bench -- --smoke
//!
//! --smoke       tiny shapes and stream; exit non-zero unless the report
//!               is produced, agreement meets the gate, and the SIMD
//!               kernel is at least as fast as the scalar reference
//! --seed <u64>  master seed (default 7)
//! --out <path>  report path (default results/BENCH_quant.json)
//! ```

use deepmap_bench::json::Json;
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::quant::{qmatmul, QuantizedMatrix};
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{ModelBundle, Precision};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// Minimum f32/int8 class-agreement the quantized bundle must clear, both
/// at quantize time and when re-measured here on the request stream.
const AGREEMENT_GATE: f64 = 0.9;

struct Args {
    smoke: bool,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 7,
        out: PathBuf::from("results/BENCH_quant.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    fail("--seed must be an integer");
                })
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            other => fail(&format!(
                "unknown flag {other}\nusage: quant_bench [--smoke] [--seed s] [--out path]"
            )),
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("quant_bench: {msg}");
    std::process::exit(1);
}

fn synthetic_dataset(pairs: usize, seed: u64) -> (Vec<Graph>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..pairs {
        graphs.push(cycle_graph(6 + i % 4, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    (graphs, labels)
}

fn request_stream(n: usize, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}

/// Percentile over per-call latencies (seconds); `q` in [0, 1].
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    if samples.is_empty() {
        return 0.0;
    }
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

/// Times `reps` calls of `f`, returning (p50_s, p99_s, mean_s).
fn time_calls(reps: usize, mut f: impl FnMut() -> f32) -> (f64, f64, f64) {
    let mut sink = f(); // warm-up
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        sink += f();
        samples.push(start.elapsed().as_secs_f64());
    }
    assert!(sink.is_finite());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    (
        percentile(&mut samples, 0.5),
        percentile(&mut samples, 0.99),
        mean,
    )
}

fn kernel_row(name: &str, (p50, p99, mean): (f64, f64, f64), flops: f64) -> Json {
    Json::Obj(vec![
        ("kernel".into(), Json::Str(name.into())),
        ("p50_us".into(), Json::Num(p50 * 1e6)),
        ("p99_us".into(), Json::Num(p99 * 1e6)),
        ("gflops".into(), Json::Num(flops / mean.max(1e-12) / 1e9)),
    ])
}

fn main() {
    let args = parse_args();
    deepmap_par::set_threads(1); // every number here is single-thread

    // ---- kernel tier -------------------------------------------------
    // One dense-layer-shaped product: (batch of im2col rows) × (weights).
    let (rows, k, cols) = if args.smoke {
        (48, 64, 32)
    } else {
        (192, 256, 128)
    };
    let reps = if args.smoke { 20 } else { 100 };
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xBEEF);
    let act = deepmap_nn::init::uniform(1.0, rows, k, &mut rng);
    let w = deepmap_nn::init::uniform(1.0, k, cols, &mut rng);
    let qw = QuantizedMatrix::quantize(&w).unwrap_or_else(|e| fail(&format!("quantize: {e}")));
    let flops = 2.0 * rows as f64 * k as f64 * cols as f64;

    let scalar = time_calls(reps, || act.matmul_reference(&w).get(0, 0));
    let simd = time_calls(reps, || act.matmul(&w).get(0, 0));
    let int8 = time_calls(reps, || qmatmul(&act, &qw).get(0, 0));
    let simd_speedup = scalar.2 / simd.2.max(1e-12);
    let int8_speedup = scalar.2 / int8.2.max(1e-12);
    deepmap_obs::info!(
        "kernel {rows}x{k}x{cols}: scalar p50 {:.1}us | simd p50 {:.1}us ({simd_speedup:.2}x) | int8 p50 {:.1}us ({int8_speedup:.2}x)",
        scalar.0 * 1e6,
        simd.0 * 1e6,
        int8.0 * 1e6,
    );
    // The vectorized kernel is a drop-in: same bits, or it doesn't ship.
    let simd_out = act.matmul(&w);
    if simd_out != act.matmul_reference(&w) {
        fail("matmul is not bit-identical to matmul_reference");
    }

    // ---- model tier --------------------------------------------------
    let pairs = if args.smoke { 8 } else { 20 };
    let stream_len = if args.smoke { 24 } else { 120 };
    let (graphs, labels) = synthetic_dataset(pairs, args.seed);
    let stream = request_stream(stream_len, args.seed);
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: if args.smoke { 4 } else { 12 },
            batch_size: 8,
            learning_rate: 0.01,
            seed: args.seed,
        },
        seed: args.seed,
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm
        .try_prepare_frozen(&graphs, &labels)
        .unwrap_or_else(|e| fail(&format!("prepare failed: {e}")));
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    let mut bundle = ModelBundle::freeze(
        &dm,
        &prepared,
        pre,
        &result.model,
        vec!["cycle".to_string(), "clique".to_string()],
    )
    .unwrap_or_else(|e| fail(&format!("freeze failed: {e}")));
    let probe_refs: Vec<&Graph> = stream.iter().collect();
    let gate_agreement = bundle
        .quantize(&probe_refs, AGREEMENT_GATE)
        .unwrap_or_else(|e| fail(&format!("quantization gate: {e}")));

    let mut f32p = bundle.predictor().unwrap_or_else(|e| fail(&e.to_string()));
    let mut int8p = bundle
        .predictor_with(Precision::Int8)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let predictor_reps = if args.smoke { 2 } else { 5 };
    let time_stream = |p: &mut deepmap_serve::Predictor| -> (f64, f64, f64) {
        let mut samples = Vec::with_capacity(stream.len() * predictor_reps);
        let mut sink = 0usize;
        for _ in 0..predictor_reps {
            for graph in &stream {
                let start = Instant::now();
                sink += p.predict(graph).class;
                samples.push(start.elapsed().as_secs_f64());
            }
        }
        assert!(sink < usize::MAX);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        (
            percentile(&mut samples, 0.5),
            percentile(&mut samples, 0.99),
            mean,
        )
    };
    let f32_lat = time_stream(&mut f32p);
    let int8_lat = time_stream(&mut int8p);

    let agreeing = stream
        .iter()
        .filter(|g| f32p.predict(g).class == int8p.predict(g).class)
        .count();
    let agreement = agreeing as f64 / stream.len() as f64;
    let f32_bytes = bundle.weight_section_bytes();
    let int8_bytes = bundle.quantized_bytes().unwrap_or(0);
    deepmap_obs::info!(
        "predictor: f32 p50 {:.1}us | int8 p50 {:.1}us ({:.2}x) | agreement {agreement:.3} (gate {AGREEMENT_GATE}) | weights {f32_bytes}B -> {int8_bytes}B",
        f32_lat.0 * 1e6,
        int8_lat.0 * 1e6,
        f32_lat.2 / int8_lat.2.max(1e-12),
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("quant_bench".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("seed".into(), Json::Num(args.seed as f64)),
        (
            "kernel_shape".into(),
            Json::Arr(vec![
                Json::Num(rows as f64),
                Json::Num(k as f64),
                Json::Num(cols as f64),
            ]),
        ),
        (
            "kernels".into(),
            Json::Arr(vec![
                kernel_row("matmul_reference", scalar, flops),
                kernel_row("matmul", simd, flops),
                kernel_row("qmatmul", int8, flops),
            ]),
        ),
        ("simd_speedup".into(), Json::Num(simd_speedup)),
        ("int8_kernel_speedup".into(), Json::Num(int8_speedup)),
        (
            "predictor".into(),
            Json::Obj(vec![
                ("f32_p50_us".into(), Json::Num(f32_lat.0 * 1e6)),
                ("f32_p99_us".into(), Json::Num(f32_lat.1 * 1e6)),
                ("int8_p50_us".into(), Json::Num(int8_lat.0 * 1e6)),
                ("int8_p99_us".into(), Json::Num(int8_lat.1 * 1e6)),
                (
                    "int8_speedup".into(),
                    Json::Num(f32_lat.2 / int8_lat.2.max(1e-12)),
                ),
            ]),
        ),
        ("agreement".into(), Json::Num(agreement)),
        ("agreement_at_quantize".into(), Json::Num(gate_agreement)),
        ("agreement_gate".into(), Json::Num(AGREEMENT_GATE)),
        ("f32_weight_bytes".into(), Json::Num(f32_bytes as f64)),
        ("int8_weight_bytes".into(), Json::Num(int8_bytes as f64)),
        ("requests".into(), Json::Num(stream.len() as f64)),
    ]);
    std::fs::create_dir_all(args.out.parent().unwrap_or_else(|| ".".as_ref())).ok();
    std::fs::write(&args.out, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", args.out.display())));

    // Self-check (what `scripts/ci.sh --smoke` gates on): the report parses
    // back, agreement clears the gate, and the vectorized kernel did not
    // regress below the scalar reference.
    let text = std::fs::read_to_string(&args.out)
        .unwrap_or_else(|e| fail(&format!("cannot re-read {}: {e}", args.out.display())));
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("report is not valid JSON: {e}")));
    let reread_agreement = parsed
        .get("agreement")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail("report is missing agreement"));
    if reread_agreement < AGREEMENT_GATE {
        fail(&format!(
            "f32/int8 agreement {reread_agreement:.3} below gate {AGREEMENT_GATE}"
        ));
    }
    if parsed
        .get("kernels")
        .and_then(|v| v.as_arr())
        .map_or(0, |a| a.len())
        != 3
    {
        fail("report is missing kernel rows");
    }
    if simd_speedup < 1.0 {
        fail(&format!(
            "vectorized matmul is slower than the scalar reference ({simd_speedup:.2}x)"
        ));
    }
    println!(
        "wrote {} (simd {simd_speedup:.2}x, int8 kernel {int8_speedup:.2}x, agreement {agreement:.3} >= {AGREEMENT_GATE})",
        args.out.display()
    );
}
