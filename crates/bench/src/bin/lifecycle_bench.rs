//! Lifecycle benchmark: safe rollout under live wire traffic.
//!
//! Trains a small DeepMap-WL classifier, freezes it into a bundle, then
//! exercises the rollout state machine end to end while client threads
//! hammer the TCP front end:
//!
//! 1. **promotion** — a lifecycle-attached [`NetServer`] serves load
//!    while an admin connection walks the candidate over the wire:
//!    `rollout_begin` → shadow mirroring until the sample floor is met →
//!    `rollout_advance` → canary slice → `rollout_promote`. Every client
//!    request must succeed and the rollout must end `Live`;
//! 2. **chaos** — a candidate planted with a [`FaultPlan`] panics on
//!    every batch past a horizon, mid-canary-slice. The controller must
//!    roll it back automatically, retire the candidate pool, and — the
//!    contract this harness exists to prove — lose zero client requests
//!    to the dying canary;
//! 3. **journal** — a rollout is begun and the controller dropped
//!    uncleanly, then the journal's final record is torn mid-write. A
//!    fresh controller must salvage the torn tail and resume the rollout
//!    in shadow from disk alone.
//!
//! The report lands in `results/BENCH_lifecycle.json`. `failed_requests`
//! must be 0 across both load scenarios and the journal must recover, or
//! the binary exits non-zero.
//!
//! ```text
//! cargo run --release -p deepmap-bench --features fault-inject --bin lifecycle_bench
//! cargo run --release -p deepmap-bench --features fault-inject --bin lifecycle_bench -- --smoke
//!
//! --smoke          lighter load and training; same hard assertions
//! --seed <u64>     master seed (default 11)
//! --out <path>     report path (default results/BENCH_lifecycle.json)
//! ```

use deepmap_bench::json::Json;
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_lifecycle::{
    LifecycleConfig, LifecycleController, PromotionPolicy, RolloutState, RolloutStatus,
};
use deepmap_net::{ClientError, NetClient, NetConfig, NetServer};
use deepmap_nn::train::TrainConfig;
use deepmap_router::{ModelConfig, ModelRouter, RouterConfig};
use deepmap_serve::{FaultPlan, ModelBundle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const MODEL: &str = "prod";
const PATIENT: Duration = Duration::from_secs(60);

struct Args {
    smoke: bool,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 11,
        out: PathBuf::from("results/BENCH_lifecycle.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    fail("--seed must be an integer");
                })
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            other => fail(&format!(
                "unknown flag {other}\nusage: lifecycle_bench [--smoke] [--seed s] [--out path]"
            )),
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("lifecycle_bench: {msg}");
    std::process::exit(1);
}

/// Deterministic gates: mirror and canary everything, demand a handful of
/// samples, keep the latency/burn gates far from micro-benchmark noise.
fn bench_policy() -> PromotionPolicy {
    PromotionPolicy {
        min_agreement: 0.9,
        max_p99_regression: 1000.0,
        max_error_burn: 1e6,
        min_samples: 8,
        mirror_fraction: 1.0,
        canary_fraction: 1.0,
        max_canary_faults: 2,
    }
}

fn trained_bundle(seed: u64, smoke: bool) -> Arc<ModelBundle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..10 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: if smoke { 6 } else { 15 },
            batch_size: 8,
            learning_rate: 0.01,
            seed,
        },
        seed,
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm
        .try_prepare_frozen(&graphs, &labels)
        .unwrap_or_else(|e| fail(&format!("prepare failed: {e}")));
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    Arc::new(
        ModelBundle::freeze(
            &dm,
            &prepared,
            pre,
            &result.model,
            vec!["cycle".to_string(), "clique".to_string()],
        )
        .unwrap_or_else(|e| fail(&format!("freeze failed: {e}"))),
    )
}

fn request_stream(n: usize, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}

fn scratch_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "deepmap-lifecycle-bench-{}-{tag}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(&format!("temp dir: {e}")));
    dir.join("rollouts.journal")
}

/// What one load thread saw: successful replies, plus the first few
/// failure messages (any failure at all fails the bench).
struct LoadReport {
    ok: u64,
    failed: u64,
    samples: Vec<String>,
}

/// Spawns client threads that hammer `predict_as(MODEL, ..)` until `stop`
/// is raised. Every request must be answered with a prediction: the live
/// pool absorbs canary faults, promotion swaps are atomic behind the
/// router's probe gate, so a single typed error here is a found bug.
fn spawn_load(
    addr: SocketAddr,
    threads: usize,
    seed: u64,
    stop: &Arc<AtomicBool>,
) -> Vec<JoinHandle<LoadReport>> {
    (0..threads)
        .map(|t| {
            let stop = Arc::clone(stop);
            let graphs = request_stream(8, seed + t as u64);
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr)
                    .unwrap_or_else(|e| fail(&format!("load client connect: {e}")));
                let mut report = LoadReport {
                    ok: 0,
                    failed: 0,
                    samples: Vec::new(),
                };
                while !stop.load(Ordering::Relaxed) {
                    for graph in &graphs {
                        match client.predict_as(MODEL, graph) {
                            Ok(_) => report.ok += 1,
                            Err(e) => {
                                report.failed += 1;
                                if report.samples.len() < 8 {
                                    report.samples.push(e.to_string());
                                }
                            }
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                }
                report
            })
        })
        .collect()
}

fn join_load(handles: Vec<JoinHandle<LoadReport>>) -> LoadReport {
    let mut total = LoadReport {
        ok: 0,
        failed: 0,
        samples: Vec::new(),
    };
    for handle in handles {
        let r = handle
            .join()
            .unwrap_or_else(|_| fail("load thread panicked"));
        total.ok += r.ok;
        total.failed += r.failed;
        total.samples.extend(r.samples);
        total.samples.truncate(8);
    }
    total
}

/// Polls the rollout over the wire until `cond` holds (mirroring and the
/// canary bookkeeping are asynchronous).
fn wait_status(
    admin: &mut NetClient,
    cond: impl Fn(&RolloutStatus) -> bool,
    what: &str,
) -> RolloutStatus {
    let deadline = Instant::now() + PATIENT;
    loop {
        let status = admin
            .rollout_status(MODEL)
            .unwrap_or_else(|e| fail(&format!("rollout_status: {e}")));
        if cond(&status) {
            return status;
        }
        if Instant::now() >= deadline {
            fail(&format!(
                "deadline waiting for {what}, last seen {status:?}"
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Retries a rollout verb until the server accepts it: between a status
/// poll and the verb the gates re-check live counters, so a refusal is
/// re-polled rather than fatal (until the deadline).
fn retry_verb(
    what: &str,
    mut op: impl FnMut() -> Result<RolloutStatus, ClientError>,
) -> RolloutStatus {
    let deadline = Instant::now() + PATIENT;
    loop {
        match op() {
            Ok(status) => return status,
            Err(e) => {
                if Instant::now() >= deadline {
                    fail(&format!("{what} never accepted: {e}"));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Scenario 1: walk a candidate to live over the wire while load runs.
/// Returns (load totals, final status, wall time begin→live).
fn promotion_under_load(args: &Args) -> (LoadReport, RolloutStatus, f64) {
    let live = trained_bundle(args.seed, args.smoke);
    let candidate = trained_bundle(args.seed, args.smoke); // identical weights: agreement is 1.0
    let router = Arc::new(ModelRouter::new(RouterConfig::default()));
    router
        .register(MODEL, live, ModelConfig::default())
        .unwrap_or_else(|e| fail(&format!("register: {e}")));
    let journal = scratch_journal("promote");
    let _ = std::fs::remove_file(&journal);
    let lc = Arc::new(
        LifecycleController::new(
            Arc::clone(&router),
            LifecycleConfig {
                journal_path: Some(journal.clone()),
                ..LifecycleConfig::default()
            },
        )
        .unwrap_or_else(|e| fail(&format!("controller: {e}"))),
    );
    let server = NetServer::start_lifecycle(
        Arc::clone(&router),
        Arc::clone(&lc),
        "127.0.0.1:0",
        NetConfig {
            allow_admin: true,
            ..NetConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("server start: {e}")));
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let threads = if args.smoke { 2 } else { 4 };
    let load = spawn_load(addr, threads, args.seed, &stop);
    let mut admin =
        NetClient::connect(addr).unwrap_or_else(|e| fail(&format!("admin connect: {e}")));

    let started = Instant::now();
    let status = admin
        .rollout_begin(MODEL, &bench_policy(), &candidate.to_bytes())
        .unwrap_or_else(|e| fail(&format!("rollout_begin: {e}")));
    if status.state != RolloutState::Shadow {
        fail(&format!("begin must land in shadow, got {status:?}"));
    }
    wait_status(&mut admin, |s| s.mirrored >= 8, "shadow sample floor");
    let status = retry_verb("advance", || admin.rollout_advance(MODEL));
    if status.state != RolloutState::Canary {
        fail(&format!("advance must land in canary, got {status:?}"));
    }
    wait_status(&mut admin, |s| s.canary_ok >= 4, "canary slice");
    let status = retry_verb("promote", || admin.rollout_promote(MODEL));
    let promote_ms = started.elapsed().as_secs_f64() * 1e3;
    if status.state != RolloutState::Live {
        fail(&format!("promote must land live, got {status:?}"));
    }

    stop.store(true, Ordering::Relaxed);
    let totals = join_load(load);
    drop(admin);
    server.shutdown();
    lc.shutdown();
    let _ = std::fs::remove_file(&journal);
    (totals, status, promote_ms)
}

/// Scenario 2: a canary that panics mid-slice is rolled back
/// automatically; the live pool answers every client request throughout.
/// Returns (load totals, final status, wall time advance→rolled-back,
/// candidate retired).
fn rollback_under_chaos(args: &Args) -> (LoadReport, RolloutStatus, f64, bool) {
    let live = trained_bundle(args.seed, args.smoke);
    let candidate = trained_bundle(args.seed, args.smoke);
    let router = Arc::new(ModelRouter::new(RouterConfig::default()));
    router
        .register(MODEL, live, ModelConfig::default())
        .unwrap_or_else(|e| fail(&format!("register: {e}")));
    let lc = Arc::new(
        LifecycleController::new(Arc::clone(&router), LifecycleConfig::default())
            .unwrap_or_else(|e| fail(&format!("controller: {e}"))),
    );
    // Clean through shadow, then every candidate batch past the horizon
    // panics — squarely inside the canary slice.
    lc.begin_chaos(
        MODEL,
        candidate,
        bench_policy(),
        FaultPlan::new().panic_from(96),
    )
    .unwrap_or_else(|e| fail(&format!("begin_chaos: {e}")));
    let server = NetServer::start_lifecycle(
        Arc::clone(&router),
        Arc::clone(&lc),
        "127.0.0.1:0",
        NetConfig::default(), // chaos run drives the controller directly
    )
    .unwrap_or_else(|e| fail(&format!("server start: {e}")));
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let threads = if args.smoke { 2 } else { 3 };
    let load = spawn_load(addr, threads, args.seed, &stop);

    let deadline = Instant::now() + PATIENT;
    loop {
        let status = lc
            .status(MODEL)
            .unwrap_or_else(|e| fail(&format!("status: {e}")));
        if status.mirrored >= 8 {
            break;
        }
        if Instant::now() >= deadline {
            fail(&format!("shadow floor never met under load: {status:?}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let tripped_from = Instant::now();
    {
        let deadline = Instant::now() + PATIENT;
        loop {
            match lc.advance(MODEL) {
                Ok(()) => break,
                Err(e) => {
                    if Instant::now() >= deadline {
                        fail(&format!("advance never accepted: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    // The canary slice now walks the candidate across the fault horizon;
    // the controller must trip on its own — no operator in the loop.
    let deadline = Instant::now() + PATIENT;
    let status = loop {
        let status = lc
            .status(MODEL)
            .unwrap_or_else(|e| fail(&format!("status: {e}")));
        match status.state {
            RolloutState::Canary => {
                if Instant::now() >= deadline {
                    fail(&format!("canary never tripped: {status:?}"));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            _ => break status,
        }
    };
    let rollback_ms = tripped_from.elapsed().as_secs_f64() * 1e3;
    if status.state != RolloutState::RolledBack {
        fail(&format!("expected automatic rollback, got {status:?}"));
    }

    // The worker tick retires the candidate pool.
    let deadline = Instant::now() + PATIENT;
    let candidate_name = LifecycleController::candidate_name(MODEL);
    while router.resolve(&candidate_name).is_ok() {
        if Instant::now() >= deadline {
            fail("candidate pool never retired after rollback");
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    stop.store(true, Ordering::Relaxed);
    let totals = join_load(load);
    server.shutdown();
    lc.shutdown();
    (totals, status, rollback_ms, true)
}

/// Scenario 3: unclean stop mid-rollout plus a torn final record; a fresh
/// controller must salvage the tail and resume from the journal alone.
/// Returns (recovered, salvaged).
fn journal_kill_recover(args: &Args) -> (bool, bool) {
    let path = scratch_journal("recover");
    let _ = std::fs::remove_file(&path);
    let config = LifecycleConfig {
        journal_path: Some(path.clone()),
        ..LifecycleConfig::default()
    };
    {
        let router = Arc::new(ModelRouter::new(RouterConfig::default()));
        router
            .register(
                MODEL,
                trained_bundle(args.seed, args.smoke),
                ModelConfig::default(),
            )
            .unwrap_or_else(|e| fail(&format!("register: {e}")));
        let lc = LifecycleController::new(Arc::clone(&router), config.clone())
            .unwrap_or_else(|e| fail(&format!("controller: {e}")));
        lc.begin(
            MODEL,
            trained_bundle(args.seed ^ 0x5EED, args.smoke),
            bench_policy(),
        )
        .unwrap_or_else(|e| fail(&format!("begin: {e}")));
        // Dropped without shutdown: the kill-9 equivalent.
    }
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| fail(&format!("open journal: {e}")));
        file.write_all(b"J1 0000002a deadbeef {\"kind\":\"transition\",\"tor")
            .unwrap_or_else(|e| fail(&format!("tear journal: {e}")));
    }
    let router = Arc::new(ModelRouter::new(RouterConfig::default()));
    router
        .register(
            MODEL,
            trained_bundle(args.seed, args.smoke),
            ModelConfig::default(),
        )
        .unwrap_or_else(|e| fail(&format!("re-register: {e}")));
    let lc = LifecycleController::new(Arc::clone(&router), config)
        .unwrap_or_else(|e| fail(&format!("recovering controller: {e}")));
    let recovery = lc.recovery().clone();
    let salvaged = recovery.salvaged.is_some();
    let resumed = recovery.resumed == 1
        && lc
            .status(MODEL)
            .map(|s| s.state == RolloutState::Shadow)
            .unwrap_or(false)
        && router
            .resolve(&LifecycleController::candidate_name(MODEL))
            .is_ok();
    lc.rollback(MODEL, "recovery drill complete").ok();
    lc.shutdown();
    let _ = std::fs::remove_file(&path);
    (resumed, salvaged)
}

/// Silences the default panic printout for the fault plan's own panics —
/// they are the scenario, not a bug — while leaving real panics loud.
fn muffle_planned_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let planned = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|msg| msg.contains("fault-inject:"));
        if !planned {
            default_hook(info);
        }
    }));
}

fn load_json(r: &LoadReport) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Num(r.ok as f64)),
        ("failed".into(), Json::Num(r.failed as f64)),
        (
            "failure_samples".into(),
            Json::Arr(r.samples.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
    ])
}

fn main() {
    let args = parse_args();
    muffle_planned_panics();

    let (promo_load, promo_status, promote_ms) = promotion_under_load(&args);
    deepmap_obs::info!(
        "promotion: {} requests ok / {} failed, live in {:.0} ms (mirrored {}, canary_ok {})",
        promo_load.ok,
        promo_load.failed,
        promote_ms,
        promo_status.mirrored,
        promo_status.canary_ok
    );

    let (chaos_load, chaos_status, rollback_ms, candidate_retired) = rollback_under_chaos(&args);
    deepmap_obs::info!(
        "chaos: {} requests ok / {} failed, auto-rollback in {:.0} ms ({})",
        chaos_load.ok,
        chaos_load.failed,
        rollback_ms,
        chaos_status
            .reason
            .as_deref()
            .unwrap_or("no reason recorded")
    );

    let (journal_recovered, torn_tail_salvaged) = journal_kill_recover(&args);
    deepmap_obs::info!(
        "journal: recovered {journal_recovered}, torn tail salvaged {torn_tail_salvaged}"
    );

    let failed_requests = promo_load.failed + chaos_load.failed;
    let promoted = promo_status.state == RolloutState::Live;
    let rolled_back = chaos_status.state == RolloutState::RolledBack;
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("lifecycle".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("seed".into(), Json::Num(args.seed as f64)),
        (
            "promotion".into(),
            Json::Obj(vec![
                ("load".into(), load_json(&promo_load)),
                ("promote_ms".into(), Json::Num(promote_ms)),
                ("mirrored".into(), Json::Num(promo_status.mirrored as f64)),
                ("agreement".into(), Json::Num(promo_status.agreement)),
                ("canary_ok".into(), Json::Num(promo_status.canary_ok as f64)),
                ("promoted".into(), Json::Bool(promoted)),
            ]),
        ),
        (
            "chaos".into(),
            Json::Obj(vec![
                ("load".into(), load_json(&chaos_load)),
                ("rollback_ms".into(), Json::Num(rollback_ms)),
                (
                    "reason".into(),
                    Json::Str(
                        chaos_status
                            .reason
                            .clone()
                            .unwrap_or_else(|| "none".to_string()),
                    ),
                ),
                (
                    "canary_faults".into(),
                    Json::Num(chaos_status.canary_faults as f64),
                ),
                ("candidate_retired".into(), Json::Bool(candidate_retired)),
            ]),
        ),
        ("rolled_back".into(), Json::Bool(rolled_back)),
        ("journal_recovered".into(), Json::Bool(journal_recovered)),
        ("torn_tail_salvaged".into(), Json::Bool(torn_tail_salvaged)),
        ("failed_requests".into(), Json::Num(failed_requests as f64)),
        (
            "zero_lost_requests".into(),
            Json::Bool(failed_requests == 0),
        ),
    ]);
    std::fs::create_dir_all("results").ok();
    std::fs::write(&args.out, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", args.out.display())));

    // Self-check: re-read and parse what landed on disk, then enforce the
    // lifecycle contract with non-zero exits.
    let text = std::fs::read_to_string(&args.out)
        .unwrap_or_else(|e| fail(&format!("cannot re-read {}: {e}", args.out.display())));
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("report is not valid JSON: {e}")));
    if parsed.get("failed_requests").is_none()
        || parsed
            .get("promotion")
            .and_then(|p| p.get("promote_ms"))
            .is_none()
        || parsed
            .get("chaos")
            .and_then(|c| c.get("rollback_ms"))
            .is_none()
    {
        fail("report is missing required fields");
    }
    if failed_requests != 0 {
        let first = promo_load
            .samples
            .iter()
            .chain(chaos_load.samples.iter())
            .next()
            .cloned()
            .unwrap_or_default();
        fail(&format!(
            "{failed_requests} client requests failed (first: {first}) — zero-lost contract broken"
        ));
    }
    if !promoted {
        fail("promotion scenario did not end live");
    }
    if !(rolled_back && candidate_retired) {
        fail("chaos scenario did not auto-roll-back and retire the candidate");
    }
    if !(journal_recovered && torn_tail_salvaged) {
        fail("journal scenario did not salvage and resume");
    }
    println!(
        "wrote {} (promotion {:.0} ms, auto-rollback {:.0} ms, {} + {} requests, 0 failed)",
        args.out.display(),
        promote_ms,
        rollback_ms,
        promo_load.ok,
        chaos_load.ok
    );
}
