//! Reproduces **Table 3**: DeepMap vs state-of-the-art baselines.
//!
//! Columns: DEEPMAP (best of its three variants, as the paper selects),
//! the four GNNs on one-hot label inputs, and the three kernel baselines
//! DGK / RETGK / GNTK under SVM CV.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin table3_sota -- \
//!     --scale 0.1 --epochs 20 --datasets SYNTHIE,KKI
//! ```
//!
//! Neural folds are checkpointed to `results/table3_sota.journal.jsonl`;
//! re-run with `--resume` to pick up a killed run where it left off.

use deepmap_bench::runner::{
    deepmap_config, load_dataset, open_journal, run_deepmap_config_journaled, run_dgk,
    run_gnn_journaled, run_gntk, run_retgk, GnnKind, JournalCell,
};
use deepmap_bench::{ExperimentArgs, Journal};
use deepmap_datasets::all_dataset_names;
use deepmap_eval::tables::{Cell, ResultTable};
use deepmap_eval::CvSummary;
use deepmap_gnn::GnnInput;
use deepmap_kernels::FeatureKind;

fn cell_for<'a>(
    journal: Option<&'a Journal>,
    dataset: &'a str,
    method: &'a str,
) -> Option<JournalCell<'a>> {
    journal.map(|j| JournalCell {
        journal: j,
        dataset,
        method,
    })
}

/// Picks the summary with the best mean accuracy (the paper reports the
/// best deep map model per dataset).
fn best_summary(candidates: Vec<CvSummary>) -> CvSummary {
    candidates
        .into_iter()
        .max_by(|a, b| {
            a.accuracy
                .mean
                .partial_cmp(&b.accuracy.mean)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one candidate")
}

fn main() {
    let args = ExperimentArgs::from_env();
    let journal = open_journal("table3_sota", &args);
    let mut table = ResultTable::new(vec![
        "DEEPMAP",
        "DGCNN",
        "GIN",
        "DCNN",
        "PATCHYSAN",
        "DGK",
        "RETGK",
        "GNTK",
    ]);
    for name in all_dataset_names() {
        if !args.wants_dataset(name) {
            continue;
        }
        let ds = load_dataset(name, &args).expect("registered name");
        deepmap_obs::info!("== {name}: {} graphs ==", ds.len());

        let variants = [
            FeatureKind::paper_graphlet(),
            FeatureKind::ShortestPath,
            FeatureKind::paper_wl(),
        ];
        let deepmap = best_summary(
            variants
                .into_iter()
                .map(|k| {
                    let method = format!("DEEPMAP-{}", k.name());
                    let s = run_deepmap_config_journaled(
                        &ds,
                        deepmap_config(k, &args),
                        &args,
                        cell_for(journal.as_ref(), name, &method),
                    );
                    deepmap_obs::info!("  {:<11} {}", method, s.accuracy);
                    s
                })
                .collect(),
        );

        let mut cells = vec![Cell::from_summary(&deepmap)];
        for kind in GnnKind::all() {
            let s = run_gnn_journaled(
                &ds,
                kind,
                GnnInput::OneHotLabels,
                &args,
                cell_for(journal.as_ref(), name, kind.name()),
            );
            deepmap_obs::info!("  {:<9} {}", kind.name(), s.accuracy);
            cells.push(Cell::from_summary(&s));
        }
        let dgk = run_dgk(&ds, &args);
        deepmap_obs::info!("  DGK       {}", dgk.accuracy);
        cells.push(Cell::from_summary(&dgk));
        let retgk = run_retgk(&ds, &args);
        deepmap_obs::info!("  RETGK     {}", retgk.accuracy);
        cells.push(Cell::from_summary(&retgk));
        let gntk = run_gntk(&ds, &args);
        deepmap_obs::info!("  GNTK      {}", gntk.accuracy);
        cells.push(Cell::from_summary(&gntk));

        table.push_cells(name, cells);
    }
    println!(
        "\n# Table 3 — DeepMap vs state of the art (scale {})\n",
        args.scale
    );
    println!("{}", table.to_markdown());
}
