//! Reproduces **Table 3**: DeepMap vs state-of-the-art baselines.
//!
//! Columns: DEEPMAP (best of its three variants, as the paper selects),
//! the four GNNs on one-hot label inputs, and the three kernel baselines
//! DGK / RETGK / GNTK under SVM CV.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin table3_sota -- \
//!     --scale 0.1 --epochs 20 --datasets SYNTHIE,KKI
//! ```

use deepmap_bench::runner::{run_deepmap, run_dgk, run_gnn, run_gntk, run_retgk, GnnKind};
use deepmap_bench::ExperimentArgs;
use deepmap_bench::runner::load_dataset;
use deepmap_datasets::all_dataset_names;
use deepmap_eval::tables::ResultTable;
use deepmap_gnn::GnnInput;
use deepmap_kernels::FeatureKind;

fn main() {
    let args = ExperimentArgs::from_env();
    let mut table = ResultTable::new(vec![
        "DEEPMAP", "DGCNN", "GIN", "DCNN", "PATCHYSAN", "DGK", "RETGK", "GNTK",
    ]);
    for name in all_dataset_names() {
        if !args.wants_dataset(name) {
            continue;
        }
        let ds = load_dataset(name, &args).expect("registered name");
        eprintln!("== {name}: {} graphs ==", ds.len());

        // DeepMap: best of the three variants (the paper reports the best
        // deep map model per dataset).
        let deepmap = [
            FeatureKind::paper_graphlet(),
            FeatureKind::ShortestPath,
            FeatureKind::paper_wl(),
        ]
        .into_iter()
        .map(|k| {
            let s = run_deepmap(&ds, k, &args);
            eprintln!("  DEEPMAP-{:<3} {}", k.name(), s.accuracy);
            s.accuracy
        })
        .max_by(|a, b| a.mean.partial_cmp(&b.mean).unwrap_or(std::cmp::Ordering::Equal))
        .expect("three variants");

        let mut cells = vec![Some(deepmap)];
        for kind in GnnKind::all() {
            let s = run_gnn(&ds, kind, GnnInput::OneHotLabels, &args);
            eprintln!("  {:<9} {}", kind.name(), s.accuracy);
            cells.push(Some(s.accuracy));
        }
        let dgk = run_dgk(&ds, &args);
        eprintln!("  DGK       {}", dgk.accuracy);
        cells.push(Some(dgk.accuracy));
        let retgk = run_retgk(&ds, &args);
        eprintln!("  RETGK     {}", retgk.accuracy);
        cells.push(Some(retgk.accuracy));
        let gntk = run_gntk(&ds, &args);
        eprintln!("  GNTK      {}", gntk.accuracy);
        cells.push(Some(gntk.accuracy));

        table.push_row(name, cells);
    }
    println!("\n# Table 3 — DeepMap vs state of the art (scale {})\n", args.scale);
    println!("{}", table.to_markdown());
}
