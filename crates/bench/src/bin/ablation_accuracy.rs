//! Accuracy ablations for the design choices in DESIGN.md §4:
//! vertex ordering (eigenvector / degree / random), readout (sum /
//! concat), receptive-field fill (full BFS / one-hop), and vertex-map
//! normalisation (on / off), each evaluated under CV on one dataset.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin ablation_accuracy -- \
//!     --datasets PTC_MR --max-graphs 80 --epochs 20 --folds 3
//! ```

use deepmap_bench::runner::{deepmap_config, load_dataset, run_deepmap_config};
use deepmap_bench::ExperimentArgs;
use deepmap_core::{Readout, VertexOrdering};
use deepmap_kernels::FeatureKind;

fn main() {
    let args = ExperimentArgs::from_env();
    let name = args
        .datasets
        .as_ref()
        .and_then(|d| d.first().cloned())
        .unwrap_or_else(|| "PTC_MR".to_string());
    let ds = load_dataset(&name, &args).expect("registered dataset");
    deepmap_obs::info!("{name}: {} graphs", ds.len());
    let kind = FeatureKind::Graphlet {
        size: 4,
        samples: 15,
    };
    let base = deepmap_config(kind, &args);

    println!(
        "# Accuracy ablations on {name} (DEEPMAP-GK, scale {})\n",
        args.scale
    );
    println!("| choice | setting | accuracy |");
    println!("|---|---|---|");

    for (label, ordering) in [
        ("ordering", VertexOrdering::EigenvectorCentrality),
        ("ordering", VertexOrdering::DegreeCentrality),
        ("ordering", VertexOrdering::Random(13)),
    ] {
        let mut config = base;
        config.ordering = ordering;
        let summary = run_deepmap_config(&ds, config, &args);
        println!("| {label} | {ordering:?} | {} |", summary.accuracy);
        deepmap_obs::info!("{label} {ordering:?}: {}", summary.accuracy);
    }
    for (label, readout) in [("readout", Readout::Sum), ("readout", Readout::Concat)] {
        let mut config = base;
        config.readout = readout;
        let summary = run_deepmap_config(&ds, config, &args);
        println!("| {label} | {readout:?} | {} |", summary.accuracy);
        deepmap_obs::info!("{label} {readout:?}: {}", summary.accuracy);
    }
    for (label, hops) in [("bfs-fill", None), ("bfs-fill", Some(1usize))] {
        let mut config = base;
        config.max_hops = hops;
        let summary = run_deepmap_config(&ds, config, &args);
        let setting = match hops {
            None => "full BFS",
            Some(_) => "one-hop only",
        };
        println!("| {label} | {setting} | {} |", summary.accuracy);
        deepmap_obs::info!("{label} {setting}: {}", summary.accuracy);
    }
    for (label, normalize) in [("normalize", true), ("normalize", false)] {
        let mut config = base;
        config.normalize = normalize;
        let summary = run_deepmap_config(&ds, config, &args);
        println!("| {label} | {normalize} | {} |", summary.accuracy);
        deepmap_obs::info!("{label} {normalize}: {}", summary.accuracy);
    }
}
