//! Resilience benchmark: serving latency and recovery under deterministic
//! chaos.
//!
//! Trains a small DeepMap-WL classifier on synthetic cycles-vs-cliques,
//! freezes it into a bundle, then measures three serving scenarios:
//!
//! 1. **healthy** — no faults; baseline p50/p99 latency and throughput;
//! 2. **chaos** — a seed-keyed [`FaultPlan`] injects worker panics,
//!    latency, and dropped replies; every submitted request is accounted
//!    for (`ok` / typed error / hung), and the run is executed twice to
//!    check the outcome sequence is bit-deterministic;
//! 3. **breaker** — a zero restart budget turns the first panic into a
//!    tripped circuit breaker; the run records the trip, the fast-fail,
//!    and the cool-down probe recovery.
//!
//! The report lands in `results/BENCH_resilience.json` with p50/p99 plus
//! shed/panic/restart counters. `hung_requests` must be 0 — a request the
//! server never answered is the one failure mode this harness exists to
//! rule out — and the binary exits non-zero otherwise.
//!
//! ```text
//! cargo run --release -p deepmap-bench --features fault-inject --bin resilience
//! cargo run --release -p deepmap-bench --features fault-inject --bin resilience -- --smoke
//!
//! --smoke          tiny request counts; same hard assertions
//! --requests <n>   requests per scenario (default 160)
//! --seed <u64>     master seed, also keys the FaultPlan (default 7)
//! --out <path>     report path (default results/BENCH_resilience.json)
//! ```

use deepmap_bench::json::Json;
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{
    FaultPlan, InferenceServer, ModelBundle, ResilienceConfig, ServeError, ServerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKERS: usize = 2;
const WAIT_BOUND: Duration = Duration::from_secs(30);

struct Args {
    smoke: bool,
    requests: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        requests: 160,
        seed: 7,
        out: PathBuf::from("results/BENCH_resilience.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--requests" => {
                args.requests = value("--requests").parse().unwrap_or_else(|_| {
                    fail("--requests must be a positive integer");
                })
            }
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    fail("--seed must be an integer");
                })
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            other => fail(&format!(
                "unknown flag {other}\nusage: resilience [--smoke] [--requests n] [--seed s] [--out path]"
            )),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(32);
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("resilience: {msg}");
    std::process::exit(1);
}

fn synthetic_dataset(seed: u64) -> (Vec<Graph>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..10 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    (graphs, labels)
}

fn request_stream(n: usize, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}

/// One-request batches so the batch sequence number equals the submit
/// order — the key the deterministic fault plan is indexed by.
fn unbatched_config(queue: usize) -> ServerConfig {
    ServerConfig {
        workers: WORKERS,
        queue_capacity: queue,
        max_batch: 1,
        max_wait: Duration::from_millis(2),
        ..ServerConfig::default()
    }
}

/// Per-request outcomes of one driven run, plus the counters that matter.
struct RunOutcome {
    /// One label per request, in submit order: `ok:<class>` or the typed
    /// error. Timed-out waits count as hung — the contract violation.
    labels: Vec<String>,
    ok: u64,
    worker_panic: u64,
    deadline: u64,
    dropped: u64,
    hung: u64,
    p50_ms: f64,
    p99_ms: f64,
    throughput_gps: f64,
    shed_deadline: u64,
    worker_panics: u64,
    worker_restarts: u64,
    replies_dropped: u64,
}

/// Submits every graph up front, then resolves each handle under a hard
/// wait bound: nothing is allowed to hang.
fn drive(server: &InferenceServer, graphs: &[Graph]) -> RunOutcome {
    let start = Instant::now();
    let handles: Vec<_> = graphs
        .iter()
        .map(|g| {
            server
                .submit(g.clone())
                .unwrap_or_else(|e| fail(&format!("submit refused: {e}")))
        })
        .collect();
    let mut labels = Vec::with_capacity(handles.len());
    let mut latencies_ms = Vec::new();
    let (mut ok, mut worker_panic, mut deadline, mut dropped, mut hung) = (0, 0, 0, 0, 0);
    for handle in handles {
        match handle.wait_timeout(WAIT_BOUND) {
            Ok(served) => {
                ok += 1;
                latencies_ms.push(served.latency.as_secs_f64() * 1e3);
                labels.push(format!("ok:{}", served.class));
            }
            Err(ServeError::WorkerPanic) => {
                worker_panic += 1;
                labels.push("worker_panic".to_string());
            }
            Err(ServeError::DeadlineExceeded) => {
                deadline += 1;
                labels.push("deadline".to_string());
            }
            Err(ServeError::Shutdown) => {
                // A dropped reply disconnects the handle; the server is
                // still up, so this is the reply-drop fault, not shutdown.
                dropped += 1;
                labels.push("dropped".to_string());
            }
            Err(ServeError::WaitTimeout) => {
                hung += 1;
                labels.push("hung".to_string());
            }
            Err(e) => fail(&format!("unexpected serving error: {e}")),
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    // Counters settle once respawns catch up with panics; bound the wait.
    let settle = Instant::now() + Duration::from_secs(10);
    let metrics = loop {
        let m = server.metrics();
        if m.worker_restarts == m.worker_panics || Instant::now() >= settle {
            break m;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    RunOutcome {
        labels,
        ok,
        worker_panic,
        deadline,
        dropped,
        hung,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        throughput_gps: graphs.len() as f64 / elapsed,
        shed_deadline: metrics.shed_deadline,
        worker_panics: metrics.worker_panics,
        worker_restarts: metrics.worker_restarts,
        replies_dropped: metrics.replies_dropped,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn outcome_json(o: &RunOutcome) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Num(o.ok as f64)),
        ("worker_panic".into(), Json::Num(o.worker_panic as f64)),
        ("deadline".into(), Json::Num(o.deadline as f64)),
        ("dropped".into(), Json::Num(o.dropped as f64)),
        ("p50_ms".into(), Json::Num(o.p50_ms)),
        ("p99_ms".into(), Json::Num(o.p99_ms)),
        ("throughput_gps".into(), Json::Num(o.throughput_gps)),
        ("shed_deadline".into(), Json::Num(o.shed_deadline as f64)),
        ("worker_panics".into(), Json::Num(o.worker_panics as f64)),
        (
            "worker_restarts".into(),
            Json::Num(o.worker_restarts as f64),
        ),
        (
            "replies_dropped".into(),
            Json::Num(o.replies_dropped as f64),
        ),
    ])
}

/// Silences the default panic printout for the fault plan's own panics —
/// they are the scenario, not a bug — while leaving real panics loud.
fn muffle_planned_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let planned = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|msg| msg.contains("fault-inject:"));
        if !planned {
            default_hook(info);
        }
    }));
}

fn main() {
    let args = parse_args();
    muffle_planned_panics();

    // 1. Train and freeze a toy bundle.
    let (graphs, labels) = synthetic_dataset(args.seed);
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: if args.smoke { 6 } else { 15 },
            batch_size: 8,
            learning_rate: 0.01,
            seed: args.seed,
        },
        seed: args.seed,
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm
        .try_prepare_frozen(&graphs, &labels)
        .unwrap_or_else(|e| fail(&format!("prepare failed: {e}")));
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    let bundle = Arc::new(
        ModelBundle::freeze(
            &dm,
            &prepared,
            pre,
            &result.model,
            vec!["cycle".to_string(), "clique".to_string()],
        )
        .unwrap_or_else(|e| fail(&format!("freeze failed: {e}"))),
    );
    let stream = request_stream(args.requests, args.seed);
    let queue = (2 * stream.len()).max(8);

    // 2. Healthy baseline: no faults.
    let server = InferenceServer::start(Arc::clone(&bundle), unbatched_config(queue))
        .unwrap_or_else(|e| fail(&format!("server start failed: {e}")));
    let healthy = drive(&server, &stream);
    drop(server);
    if healthy.ok as usize != stream.len() {
        fail("healthy run must serve every request");
    }
    deepmap_obs::info!(
        "healthy: {} ok, p50 {:.2} ms, p99 {:.2} ms, {:.1} g/s",
        healthy.ok,
        healthy.p50_ms,
        healthy.p99_ms,
        healthy.throughput_gps
    );

    // 3. Chaos: seed-keyed faults, run twice, outcomes must match exactly.
    let plan = FaultPlan::seeded(
        args.seed,
        stream.len() as u64,
        0.10,
        0.10,
        Duration::from_millis(2),
        0.05,
    );
    let chaos_run = || {
        let server = InferenceServer::start_chaos(
            Arc::clone(&bundle),
            unbatched_config(queue),
            ResilienceConfig {
                max_restarts: u32::MAX, // keep chaos on the respawn path
                restart_backoff: Duration::from_millis(1),
                ..ResilienceConfig::default()
            },
            plan.clone(),
        )
        .unwrap_or_else(|e| fail(&format!("chaos server start failed: {e}")));
        drive(&server, &stream)
    };
    let chaos = chaos_run();
    let chaos_replay = chaos_run();
    let deterministic = chaos.labels == chaos_replay.labels
        && chaos.shed_deadline == chaos_replay.shed_deadline
        && chaos.worker_panics == chaos_replay.worker_panics
        && chaos.worker_restarts == chaos_replay.worker_restarts
        && chaos.replies_dropped == chaos_replay.replies_dropped;
    deepmap_obs::info!(
        "chaos: {} ok / {} panic / {} dropped of {} ({} planned panics), p99 {:.2} ms, deterministic: {}",
        chaos.ok,
        chaos.worker_panic,
        chaos.dropped,
        stream.len(),
        plan.planned_panics(),
        chaos.p99_ms,
        deterministic
    );

    // 4. Breaker: zero restart budget, first panic trips, probe recovers.
    let server = InferenceServer::start_chaos(
        Arc::clone(&bundle),
        unbatched_config(queue),
        ResilienceConfig {
            max_restarts: 0,
            breaker_cooldown: Duration::from_millis(50),
            ..ResilienceConfig::default()
        },
        FaultPlan::new().panic_on_batches([0]),
    )
    .unwrap_or_else(|e| fail(&format!("breaker server start failed: {e}")));
    let victim = server
        .submit(stream[0].clone())
        .unwrap_or_else(|e| fail(&format!("victim submit refused: {e}")));
    let victim_panicked = matches!(
        victim.wait_timeout(WAIT_BOUND),
        Err(ServeError::WorkerPanic)
    );
    let trip_deadline = Instant::now() + Duration::from_secs(10);
    while server.metrics().breaker_state != 2 && Instant::now() < trip_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let breaker_tripped = server.metrics().breaker_state == 2;
    let fast_failed = matches!(
        server.submit(stream[0].clone()),
        Err(ServeError::CircuitOpen)
    );
    std::thread::sleep(Duration::from_millis(60)); // past the cool-down
    let probe_recovered = server
        .submit(stream[0].clone())
        .and_then(|h| h.wait_timeout(WAIT_BOUND))
        .is_ok();
    let recover_deadline = Instant::now() + Duration::from_secs(10);
    while server.metrics().breaker_state != 0 && Instant::now() < recover_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let breaker_closed = server.metrics().breaker_state == 0;
    drop(server);
    deepmap_obs::info!(
        "breaker: panicked {victim_panicked}, tripped {breaker_tripped}, fast-failed {fast_failed}, probe recovered {probe_recovered}, closed {breaker_closed}"
    );

    // 5. Report + hard assertions.
    let hung_total = healthy.hung + chaos.hung + chaos_replay.hung;
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("resilience".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("seed".into(), Json::Num(args.seed as f64)),
        ("requests_per_run".into(), Json::Num(stream.len() as f64)),
        ("workers".into(), Json::Num(WORKERS as f64)),
        ("healthy".into(), outcome_json(&healthy)),
        ("chaos".into(), outcome_json(&chaos)),
        (
            "planned_panics".into(),
            Json::Num(plan.planned_panics() as f64),
        ),
        (
            "planned_reply_drops".into(),
            Json::Num(plan.planned_reply_drops() as f64),
        ),
        ("deterministic".into(), Json::Bool(deterministic)),
        (
            "breaker".into(),
            Json::Obj(vec![
                ("tripped".into(), Json::Bool(breaker_tripped)),
                ("fast_failed".into(), Json::Bool(fast_failed)),
                ("probe_recovered".into(), Json::Bool(probe_recovered)),
                ("closed_after_probe".into(), Json::Bool(breaker_closed)),
            ]),
        ),
        ("hung_requests".into(), Json::Num(hung_total as f64)),
    ]);
    std::fs::create_dir_all("results").ok();
    std::fs::write(&args.out, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", args.out.display())));

    // Self-check: re-read and parse what landed on disk, then enforce the
    // resilience contract with non-zero exits.
    let text = std::fs::read_to_string(&args.out)
        .unwrap_or_else(|e| fail(&format!("cannot re-read {}: {e}", args.out.display())));
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("report is not valid JSON: {e}")));
    if parsed.get("chaos").and_then(|c| c.get("p99_ms")).is_none()
        || parsed.get("hung_requests").is_none()
    {
        fail("report is missing required fields");
    }
    if hung_total != 0 {
        fail(&format!(
            "{hung_total} requests hung — resilience contract broken"
        ));
    }
    if !deterministic {
        fail("chaos replay diverged — fault plan is not deterministic");
    }
    if !(victim_panicked && breaker_tripped && fast_failed && probe_recovered && breaker_closed) {
        fail("breaker scenario did not trip and recover as required");
    }
    if chaos.worker_panics != plan.planned_panics() as u64 {
        fail("observed panics disagree with the fault plan");
    }
    println!(
        "wrote {} (chaos: {} ok / {} panic / {} dropped, p99 {:.2} ms, 0 hung, breaker trip+recover ok)",
        args.out.display(),
        chaos.ok,
        chaos.worker_panic,
        chaos.dropped,
        chaos.p99_ms
    );
}
