//! Reproduces **Table 1**: statistics of the benchmark datasets.
//!
//! Prints the statistics of every simulated benchmark next to the paper's
//! target values, so the fidelity of the simulation is auditable.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin table1_datasets -- --scale 1.0
//! ```

use deepmap_bench::ExperimentArgs;
use deepmap_datasets::spec::SPECS;
use deepmap_datasets::{generate_spec, stats};

fn main() {
    let args = ExperimentArgs::from_env();
    println!(
        "# Table 1 — dataset statistics (simulated at scale {})\n",
        args.scale
    );
    println!(
        "| {:<12} | {:>5} | {:>2} | {:>8} | {:>8} | {:>9} | {:>9} | {:>5} |",
        "Dataset", "Size", "C#", "AvgN", "AvgN*", "AvgE", "AvgE*", "L#"
    );
    println!("|{}|", "-".repeat(84));
    for spec in SPECS {
        if !args.wants_dataset(spec.name) {
            continue;
        }
        let ds = generate_spec(spec, args.scale, args.seed);
        let s = stats::compute(&ds);
        println!(
            "| {:<12} | {:>5} | {:>2} | {:>8.2} | {:>8.2} | {:>9.2} | {:>9.2} | {:>5} |",
            s.name,
            s.size,
            s.n_classes,
            s.avg_nodes,
            spec.avg_nodes,
            s.avg_edges,
            spec.avg_edges,
            s.n_labels,
        );
    }
    println!("\n(* = the paper's Table 1 target; unstarred = measured on the simulation)");
}
