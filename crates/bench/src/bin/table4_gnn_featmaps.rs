//! Reproduces **Table 4**: baseline GNNs fed DeepMap's vertex feature maps.
//!
//! The paper's question: is DeepMap's advantage the *input* (vertex feature
//! maps) or the *architecture*? Feeding the same inputs to the GNNs, they
//! still mostly lose — the architecture matters.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin table4_gnn_featmaps -- \
//!     --scale 0.1 --epochs 20 --datasets SYNTHIE,KKI
//! ```
//!
//! Folds are checkpointed to `results/table4_gnn_featmaps.journal.jsonl`;
//! re-run with `--resume` to pick up a killed run where it left off.

use deepmap_bench::runner::{
    deepmap_config, load_dataset, open_journal, run_deepmap_config_journaled, run_gnn_journaled,
    GnnKind, JournalCell, DEFAULT_FEATURE_CAP,
};
use deepmap_bench::ExperimentArgs;
use deepmap_datasets::all_dataset_names;
use deepmap_eval::tables::{Cell, ResultTable};
use deepmap_gnn::GnnInput;
use deepmap_kernels::FeatureKind;

fn main() {
    let args = ExperimentArgs::from_env();
    let journal = open_journal("table4_gnn_featmaps", &args);
    // The paper feeds each GNN the same vertex feature maps DeepMap uses;
    // WL maps are the representative choice (they are what DeepMap's best
    // variant uses on most datasets).
    let featmap = FeatureKind::paper_wl();
    let input = GnnInput::VertexFeatureMaps(featmap, DEFAULT_FEATURE_CAP);

    let mut table = ResultTable::new(vec!["DEEPMAP", "DGCNN", "GIN", "DCNN", "PATCHYSAN"]);
    for name in all_dataset_names() {
        if !args.wants_dataset(name) {
            continue;
        }
        let ds = load_dataset(name, &args).expect("registered name");
        deepmap_obs::info!("== {name}: {} graphs ==", ds.len());

        let deepmap = run_deepmap_config_journaled(
            &ds,
            deepmap_config(featmap, &args),
            &args,
            journal.as_ref().map(|j| JournalCell {
                journal: j,
                dataset: name,
                method: "DEEPMAP-WL",
            }),
        );
        deepmap_obs::info!("  DEEPMAP   {}", deepmap.accuracy);
        let mut cells = vec![Cell::from_summary(&deepmap)];
        for kind in GnnKind::all() {
            let method = format!("{}-FM", kind.name());
            let s = run_gnn_journaled(
                &ds,
                kind,
                input,
                &args,
                journal.as_ref().map(|j| JournalCell {
                    journal: j,
                    dataset: name,
                    method: &method,
                }),
            );
            deepmap_obs::info!("  {:<9} {}", kind.name(), s.accuracy);
            cells.push(Cell::from_summary(&s));
        }
        table.push_cells(name, cells);
    }
    println!(
        "\n# Table 4 — GNNs with DeepMap's vertex feature maps as input (scale {})\n",
        args.scale
    );
    println!("{}", table.to_markdown());
}
