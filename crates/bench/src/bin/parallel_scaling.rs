//! Thread-scaling benchmark for the shared `deepmap-par` pool.
//!
//! Sweeps `deepmap_par::set_threads` over 1/2/4/8 and times the three
//! pool-backed stages on synthetic cycles-vs-cliques data:
//!
//! - **prepare** — feature extraction + alignment + tensor assembly
//!   (`DeepMap::try_prepare_frozen`, per-graph fan-out);
//! - **train** — data-parallel mini-batch training (`DeepMap::fit_split`,
//!   per-sample fan-out with fixed-order gradient reduction);
//! - **embed** — frozen-bundle serving (`Predictor::predict` over a request
//!   stream, chunked fan-out).
//!
//! Alongside wall-clock speedups the run re-asserts the determinism
//! contract: final trained weights and every served prediction must be
//! bit-identical at every thread count. The report lands in
//! `results/BENCH_parallel.json` together with the host's
//! `available_parallelism`, so a 1-core CI container reporting ~1.0x
//! speedups is legible as a hardware limit, not a regression.
//!
//! The report also carries a single-thread `kernels` section: GFLOP/s for
//! each blocked/unrolled matmul variant against the naive ascending-k
//! reference on one fixed shape — the per-core arithmetic floor the
//! thread-scaling numbers multiply.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin parallel_scaling
//! cargo run --release -p deepmap-bench --bin parallel_scaling -- --smoke
//!
//! --smoke       tiny dataset and epoch counts; exit non-zero unless the
//!               JSON report is produced, well-formed, and deterministic
//! --seed <u64>  master seed (default 7)
//! --out <path>  report path (default results/BENCH_parallel.json)
//! ```

use deepmap_bench::json::Json;
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::ModelBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];
const EMBED_CHUNK: usize = 8;

struct Args {
    smoke: bool,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 7,
        out: PathBuf::from("results/BENCH_parallel.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    fail("--seed must be an integer");
                })
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            other => fail(&format!(
                "unknown flag {other}\nusage: parallel_scaling [--smoke] [--seed s] [--out path]"
            )),
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("parallel_scaling: {msg}");
    std::process::exit(1);
}

fn synthetic_dataset(pairs: usize, seed: u64) -> (Vec<Graph>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..pairs {
        graphs.push(cycle_graph(6 + i % 4, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    (graphs, labels)
}

fn request_stream(n: usize, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}

struct SweepPoint {
    threads: usize,
    prepare_s: f64,
    train_s: f64,
    embed_s: f64,
    weights: Vec<Vec<f32>>,
    predictions: Vec<usize>,
}

/// Runs prepare + train + embed with the pool set to `threads` workers and
/// returns timings plus the determinism witnesses (final weights, served
/// classes).
fn run_at(
    threads: usize,
    graphs: &[Graph],
    labels: &[usize],
    stream: &[Graph],
    config: &DeepMapConfig,
) -> SweepPoint {
    deepmap_par::set_threads(threads);
    let dm = DeepMap::new(*config);

    let start = Instant::now();
    let (prepared, pre) = dm
        .try_prepare_frozen(graphs, labels)
        .unwrap_or_else(|e| fail(&format!("prepare failed: {e}")));
    let prepare_s = start.elapsed().as_secs_f64();

    let all: Vec<usize> = (0..graphs.len()).collect();
    let start = Instant::now();
    let result = dm.fit_split(&prepared, &all, &all);
    let train_s = start.elapsed().as_secs_f64();
    let weights: Vec<Vec<f32>> = result
        .model
        .param_values()
        .iter()
        .map(|v| v.to_vec())
        .collect();

    let bundle = ModelBundle::freeze(
        &dm,
        &prepared,
        pre,
        &result.model,
        vec!["cycle".to_string(), "clique".to_string()],
    )
    .unwrap_or_else(|e| fail(&format!("freeze failed: {e}")));
    let chunks: Vec<&[Graph]> = stream.chunks(EMBED_CHUNK).collect();
    let start = Instant::now();
    // One predictor per chunk: predictors carry mutable layer scratch, so
    // each parallel task builds its own from the shared frozen bundle.
    let served = deepmap_par::par_map_indexed(&chunks, |_, chunk| {
        let mut predictor = bundle
            .predictor()
            .unwrap_or_else(|e| fail(&format!("predictor build failed: {e}")));
        chunk
            .iter()
            .map(|g| predictor.predict(g).class)
            .collect::<Vec<usize>>()
    });
    let embed_s = start.elapsed().as_secs_f64();
    let predictions = served.into_iter().flatten().collect();

    SweepPoint {
        threads,
        prepare_s,
        train_s,
        embed_s,
        weights,
        predictions,
    }
}

/// A boxed closure producing one kernel invocation's result.
type KernelFn = Box<dyn FnMut() -> deepmap_nn::matrix::Matrix>;

/// Single-thread GFLOP/s for each f32 matmul kernel on one fixed square
/// shape, with the naive reference as the scalar baseline. Runs before the
/// thread sweep, with the pool irrelevant (the kernels are serial).
fn kernel_micro_bench(smoke: bool, seed: u64) -> Vec<Json> {
    let n = if smoke { 64 } else { 192 };
    let reps = if smoke { 3 } else { 10 };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let a = deepmap_nn::init::uniform(1.0, n, n, &mut rng);
    let b = deepmap_nn::init::uniform(1.0, n, n, &mut rng);
    let at = a.transpose();
    let bt = b.transpose();
    let flops = 2.0 * (n as f64).powi(3) * reps as f64;
    let time = |mut f: KernelFn| -> f64 {
        let _warm = f();
        let start = Instant::now();
        let mut sink = 0.0f32;
        for _ in 0..reps {
            sink += f().get(0, 0);
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        assert!(sink.is_finite());
        flops / secs / 1e9
    };
    let scalar = {
        let (a, b) = (a.clone(), b.clone());
        time(Box::new(move || a.matmul_reference(&b)))
    };
    let variants: Vec<(&str, KernelFn)> = vec![
        {
            let (a, b) = (a.clone(), b.clone());
            ("matmul", Box::new(move || a.matmul(&b)))
        },
        {
            let (at, b) = (at.clone(), b.clone());
            ("t_matmul", Box::new(move || at.t_matmul(&b)))
        },
        {
            let (a, bt) = (a.clone(), bt.clone());
            ("matmul_t", Box::new(move || a.matmul_t(&bt)))
        },
    ];
    let mut rows = vec![Json::Obj(vec![
        ("kernel".into(), Json::Str("matmul_reference".into())),
        ("gflops".into(), Json::Num(scalar)),
        ("speedup_vs_scalar".into(), Json::Num(1.0)),
    ])];
    for (name, f) in variants {
        let gflops = time(f);
        deepmap_obs::info!(
            "kernel {name}: {gflops:.2} GFLOP/s ({:.2}x vs naive reference)",
            gflops / scalar.max(1e-9)
        );
        rows.push(Json::Obj(vec![
            ("kernel".into(), Json::Str(name.into())),
            ("gflops".into(), Json::Num(gflops)),
            (
                "speedup_vs_scalar".into(),
                Json::Num(gflops / scalar.max(1e-9)),
            ),
        ]));
    }
    rows
}

fn main() {
    let args = parse_args();
    let pairs = if args.smoke { 8 } else { 20 };
    let stream_len = if args.smoke { 24 } else { 120 };
    let (graphs, labels) = synthetic_dataset(pairs, args.seed);
    let stream = request_stream(stream_len, args.seed);
    let config = DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: if args.smoke { 4 } else { 12 },
            batch_size: 8,
            learning_rate: 0.01,
            seed: args.seed,
        },
        seed: args.seed,
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    deepmap_obs::info!(
        "parallel_scaling: {} graphs, {} requests, {} hardware threads",
        graphs.len(),
        stream.len(),
        cores
    );

    let kernel_rows = kernel_micro_bench(args.smoke, args.seed);

    let points: Vec<SweepPoint> = THREAD_SWEEP
        .iter()
        .map(|&t| run_at(t, &graphs, &labels, &stream, &config))
        .collect();
    let base = &points[0];
    let mut deterministic = true;
    let mut rows = Vec::new();
    let mut best_speedup = 0.0f64;
    for p in &points {
        let same = p.weights == base.weights && p.predictions == base.predictions;
        deterministic &= same;
        let prepare_speedup = base.prepare_s / p.prepare_s.max(1e-9);
        let train_speedup = base.train_s / p.train_s.max(1e-9);
        let embed_speedup = base.embed_s / p.embed_s.max(1e-9);
        best_speedup = best_speedup
            .max(prepare_speedup)
            .max(train_speedup)
            .max(embed_speedup);
        deepmap_obs::info!(
            "threads {:>2}: prepare {:.3}s ({prepare_speedup:.2}x) | train {:.3}s ({train_speedup:.2}x) | embed {:.3}s ({embed_speedup:.2}x) | bit-identical: {same}",
            p.threads,
            p.prepare_s,
            p.train_s,
            p.embed_s,
        );
        rows.push(Json::Obj(vec![
            ("threads".into(), Json::Num(p.threads as f64)),
            ("prepare_s".into(), Json::Num(p.prepare_s)),
            ("train_s".into(), Json::Num(p.train_s)),
            ("embed_s".into(), Json::Num(p.embed_s)),
            ("prepare_speedup".into(), Json::Num(prepare_speedup)),
            ("train_speedup".into(), Json::Num(train_speedup)),
            ("embed_speedup".into(), Json::Num(embed_speedup)),
            ("bit_identical_to_t1".into(), Json::Bool(same)),
        ]));
    }
    if !deterministic {
        fail("results are not bit-identical across thread counts");
    }

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("parallel_scaling".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("seed".into(), Json::Num(args.seed as f64)),
        ("graphs".into(), Json::Num(graphs.len() as f64)),
        ("requests".into(), Json::Num(stream.len() as f64)),
        ("available_parallelism".into(), Json::Num(cores as f64)),
        ("deterministic".into(), Json::Bool(deterministic)),
        ("best_speedup".into(), Json::Num(best_speedup)),
        ("kernels".into(), Json::Arr(kernel_rows)),
        ("sweep".into(), Json::Arr(rows)),
    ]);
    std::fs::create_dir_all(args.out.parent().unwrap_or_else(|| ".".as_ref())).ok();
    std::fs::write(&args.out, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", args.out.display())));

    // Self-check: the file on disk must parse back as a complete report
    // (this is what `scripts/ci.sh --smoke` relies on).
    let text = std::fs::read_to_string(&args.out)
        .unwrap_or_else(|e| fail(&format!("cannot re-read {}: {e}", args.out.display())));
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("report is not valid JSON: {e}")));
    let n_points = parsed
        .get("sweep")
        .and_then(|s| s.as_arr())
        .map_or(0, |s| s.len());
    let n_kernels = parsed
        .get("kernels")
        .and_then(|s| s.as_arr())
        .map_or(0, |s| s.len());
    if n_points < THREAD_SWEEP.len()
        || n_kernels < 4
        || parsed.get("deterministic").is_none()
        || parsed
            .get("available_parallelism")
            .and_then(|v| v.as_f64())
            .is_none()
    {
        fail("report is missing required fields");
    }
    println!(
        "wrote {} ({} thread counts, deterministic, best speedup {:.2}x on {} hardware threads)",
        args.out.display(),
        n_points,
        best_speedup,
        cores
    );
}
