//! Serving benchmark: bundle round-trip plus micro-batching throughput.
//!
//! Trains a small DeepMap-WL classifier on synthetic cycles-vs-cliques,
//! freezes it into a `DMB1` bundle, reloads the bundle from disk, checks
//! prediction parity, then drives the [`InferenceServer`] with a sliding
//! window of outstanding requests at several concurrency levels — once
//! with micro-batching enabled and once with `max_batch = 1` — and writes
//! latency percentiles and throughput to `results/BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin serve_throughput
//! cargo run --release -p deepmap-bench --bin serve_throughput -- --smoke
//!
//! --smoke          tiny request counts; exit non-zero unless the JSON
//!                  report is produced and well-formed
//! --requests <n>   requests per (level, mode) run (default 240)
//! --seed <u64>     master seed (default 7)
//! --out <path>     report path (default results/BENCH_serve.json)
//! ```
//!
//! The window sizes are the concurrency levels: with `w` requests in
//! flight and a fixed two-worker pool, the batcher can merge up to
//! `max_batch` queued requests into one pass through the convolution
//! stack, so higher windows amortise more per-request overhead.

use deepmap_bench::json::Json;
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{InferenceServer, ModelBundle, ServeError, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKERS: usize = 2;

struct Args {
    smoke: bool,
    requests: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        requests: 240,
        seed: 7,
        out: PathBuf::from("results/BENCH_serve.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--requests" => {
                args.requests = value("--requests").parse().unwrap_or_else(|_| {
                    fail("--requests must be a positive integer");
                })
            }
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    fail("--seed must be an integer");
                })
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            other => fail(&format!(
                "unknown flag {other}\nusage: serve_throughput [--smoke] [--requests n] [--seed s] [--out path]"
            )),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(40);
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("serve_throughput: {msg}");
    std::process::exit(1);
}

fn synthetic_dataset(seed: u64) -> (Vec<Graph>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..10 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    (graphs, labels)
}

fn request_stream(n: usize, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}

struct RunStats {
    throughput_gps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
}

/// Drives the server with a sliding window of `window` outstanding
/// requests: submit until the window is full, then retire the oldest
/// before submitting the next.
fn drive(server: &InferenceServer, graphs: &[Graph], window: usize) -> RunStats {
    let mut outstanding = VecDeque::new();
    let mut latencies_ms = Vec::with_capacity(graphs.len());
    let mut batch_total = 0u64;
    let retire =
        |outstanding: &mut VecDeque<_>, latencies_ms: &mut Vec<f64>, batch_total: &mut u64| {
            let handle: deepmap_serve::PredictionHandle =
                outstanding.pop_front().expect("window non-empty");
            let served = handle
                .wait()
                .expect("server answers every accepted request");
            latencies_ms.push(served.latency.as_secs_f64() * 1e3);
            *batch_total += served.batch_size as u64;
        };
    let start = Instant::now();
    for graph in graphs {
        loop {
            match server.submit(graph.clone()) {
                Ok(handle) => {
                    outstanding.push_back(handle);
                    break;
                }
                // Backpressure: retire the oldest in-flight request and retry.
                Err(ServeError::QueueFull) => {
                    retire(&mut outstanding, &mut latencies_ms, &mut batch_total)
                }
                Err(e) => fail(&format!("submit failed: {e}")),
            }
        }
        if outstanding.len() >= window {
            retire(&mut outstanding, &mut latencies_ms, &mut batch_total);
        }
    }
    while !outstanding.is_empty() {
        retire(&mut outstanding, &mut latencies_ms, &mut batch_total);
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    RunStats {
        throughput_gps: graphs.len() as f64 / elapsed,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        mean_batch: batch_total as f64 / graphs.len() as f64,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_stats_json(s: &RunStats) -> Json {
    Json::Obj(vec![
        ("throughput_gps".into(), Json::Num(s.throughput_gps)),
        ("p50_ms".into(), Json::Num(s.p50_ms)),
        ("p99_ms".into(), Json::Num(s.p99_ms)),
        ("mean_batch".into(), Json::Num(s.mean_batch)),
    ])
}

fn main() {
    let args = parse_args();

    // 1. Train and freeze.
    let (graphs, labels) = synthetic_dataset(args.seed);
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: if args.smoke { 6 } else { 15 },
            batch_size: 8,
            learning_rate: 0.01,
            seed: args.seed,
        },
        seed: args.seed,
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm
        .try_prepare_frozen(&graphs, &labels)
        .unwrap_or_else(|e| fail(&format!("prepare failed: {e}")));
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    deepmap_obs::info!(
        "trained {} epochs, final train accuracy {:.1}%",
        result.history.len(),
        result
            .history
            .last()
            .map_or(0.0, |e| e.train_accuracy * 100.0)
    );
    let bundle = ModelBundle::freeze(
        &dm,
        &prepared,
        pre,
        &result.model,
        vec!["cycle".to_string(), "clique".to_string()],
    )
    .unwrap_or_else(|e| fail(&format!("freeze failed: {e}")));

    // 2. Save, reload, and verify parity on fresh graphs.
    std::fs::create_dir_all("results").ok();
    let bundle_path = PathBuf::from("results/serve_bundle.dmb");
    bundle
        .save(&bundle_path)
        .unwrap_or_else(|e| fail(&format!("bundle save failed: {e}")));
    let reloaded = ModelBundle::load(&bundle_path)
        .unwrap_or_else(|e| fail(&format!("bundle reload failed: {e}")));
    let parity_graphs = request_stream(16, args.seed);
    let mut mem_pred = bundle.predictor().expect("predictor");
    let mut disk_pred = reloaded.predictor().expect("predictor");
    let parity = parity_graphs.iter().all(|g| {
        let a = mem_pred.predict(g);
        let b = disk_pred.predict(g);
        a.class == b.class && a.scores == b.scores
    });
    if !parity {
        fail("reloaded bundle predictions diverge from the in-memory model");
    }
    deepmap_obs::info!(
        "bundle round-trip ok: {} bytes, predictions bit-identical",
        bundle.to_bytes().len()
    );

    // 3. Throughput at several concurrency levels, batched vs unbatched.
    let bundle = Arc::new(reloaded);
    let levels: &[usize] = if args.smoke { &[2, 4, 8] } else { &[4, 16, 64] };
    let stream = request_stream(args.requests, args.seed);
    let mut level_rows = Vec::new();
    let mut speedup_at_max = 0.0;
    for &level in levels {
        let batched_cfg = ServerConfig {
            workers: WORKERS,
            queue_capacity: (2 * level).max(8),
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            ..ServerConfig::default()
        };
        let unbatched_cfg = ServerConfig {
            max_batch: 1,
            ..batched_cfg
        };
        let server = InferenceServer::start(Arc::clone(&bundle), batched_cfg)
            .unwrap_or_else(|e| fail(&format!("server start failed: {e}")));
        let batched = drive(&server, &stream, level);
        drop(server);
        let server = InferenceServer::start(Arc::clone(&bundle), unbatched_cfg)
            .unwrap_or_else(|e| fail(&format!("server start failed: {e}")));
        let unbatched = drive(&server, &stream, level);
        drop(server);
        let speedup = batched.throughput_gps / unbatched.throughput_gps.max(1e-9);
        if level == *levels.last().expect("non-empty levels") {
            speedup_at_max = speedup;
        }
        deepmap_obs::info!(
            "concurrency {level:>3}: batched {:8.1} g/s (p50 {:.2} ms, p99 {:.2} ms, mean batch {:.2}) | unbatched {:8.1} g/s (p50 {:.2} ms, p99 {:.2} ms) | speedup {speedup:.2}x",
            batched.throughput_gps,
            batched.p50_ms,
            batched.p99_ms,
            batched.mean_batch,
            unbatched.throughput_gps,
            unbatched.p50_ms,
            unbatched.p99_ms,
        );
        level_rows.push(Json::Obj(vec![
            ("concurrency".into(), Json::Num(level as f64)),
            ("batched".into(), run_stats_json(&batched)),
            ("unbatched".into(), run_stats_json(&unbatched)),
            ("batched_speedup".into(), Json::Num(speedup)),
        ]));
    }

    // 4. Report.
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("serve_throughput".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("seed".into(), Json::Num(args.seed as f64)),
        ("requests_per_run".into(), Json::Num(stream.len() as f64)),
        ("workers".into(), Json::Num(WORKERS as f64)),
        (
            "bundle_bytes".into(),
            Json::Num(bundle.to_bytes().len() as f64),
        ),
        ("parity".into(), Json::Bool(parity)),
        ("levels".into(), Json::Arr(level_rows)),
        ("batched_speedup_at_max".into(), Json::Num(speedup_at_max)),
    ]);
    std::fs::write(&args.out, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", args.out.display())));

    // 5. Self-check: the file on disk must parse back as a complete report
    //    (this is what `scripts/ci.sh --smoke` relies on).
    let text = std::fs::read_to_string(&args.out)
        .unwrap_or_else(|e| fail(&format!("cannot re-read {}: {e}", args.out.display())));
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("report is not valid JSON: {e}")));
    let n_levels = parsed
        .get("levels")
        .and_then(|l| l.as_arr())
        .map_or(0, |l| l.len());
    if n_levels < 3
        || parsed.get("parity").is_none()
        || parsed
            .get("batched_speedup_at_max")
            .and_then(|v| v.as_f64())
            .is_none()
    {
        fail("report is missing required fields");
    }
    println!(
        "wrote {} ({} concurrency levels, parity ok, speedup at max concurrency {:.2}x)",
        args.out.display(),
        n_levels,
        speedup_at_max
    );
}
