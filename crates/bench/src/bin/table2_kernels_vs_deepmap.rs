//! Reproduces **Table 2**: 10-fold CV accuracy of GK/SP/WL vs
//! DEEPMAP-GK/SP/WL on the benchmark datasets.
//!
//! The paper's finding: the deep map models outperform their flat kernels
//! on almost every dataset (exceptions in the paper: SP on IMDB-MULTI, WL
//! on NCI1/COLLAB).
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin table2_kernels_vs_deepmap -- \
//!     --scale 0.1 --epochs 20 --datasets SYNTHIE,KKI,PTC_MR
//! ```
//!
//! Extra flag: `--readout sum|concat` for the readout ablation (DESIGN.md
//! §4 choice 2).
//!
//! Completed DeepMap folds are checkpointed to
//! `results/table2_kernels_vs_deepmap.journal.jsonl`; re-run with
//! `--resume` to pick up a killed run where it left off.

use deepmap_bench::runner::{
    deepmap_config, load_dataset, open_journal, run_deepmap_config_journaled, run_flat_kernel,
    JournalCell,
};
use deepmap_bench::ExperimentArgs;
use deepmap_core::Readout;
use deepmap_datasets::all_dataset_names;
use deepmap_eval::tables::{Cell, ResultTable};
use deepmap_kernels::FeatureKind;

fn main() {
    let mut raw: Vec<String> = std::env::args().collect();
    let mut readout = Readout::Sum;
    if let Some(pos) = raw.iter().position(|a| a == "--readout") {
        let value = raw.get(pos + 1).cloned().unwrap_or_default();
        readout = match value.as_str() {
            "sum" => Readout::Sum,
            "concat" => Readout::Concat,
            other => {
                eprintln!("unknown readout {other:?}; use sum|concat");
                std::process::exit(2);
            }
        };
        raw.drain(pos..=pos + 1);
    }
    let args = ExperimentArgs::parse(raw);
    let journal = open_journal("table2_kernels_vs_deepmap", &args);

    let kinds = [
        FeatureKind::paper_graphlet(),
        FeatureKind::ShortestPath,
        FeatureKind::paper_wl(),
    ];
    let mut table = ResultTable::new(vec![
        "GK",
        "DEEPMAP-GK",
        "SP",
        "DEEPMAP-SP",
        "WL",
        "DEEPMAP-WL",
    ]);
    for name in all_dataset_names() {
        if !args.wants_dataset(name) {
            continue;
        }
        let ds = load_dataset(name, &args).expect("registered name");
        deepmap_obs::info!("== {name}: {} graphs ==", ds.len());
        let mut cells = Vec::with_capacity(6);
        for kind in kinds {
            let flat = run_flat_kernel(&ds, kind, &args);
            deepmap_obs::info!("  {:<3} {}", kind.name(), flat.accuracy);
            cells.push(Cell::from_summary(&flat));
            let mut config = deepmap_config(kind, &args);
            config.readout = readout;
            // Keep sum/concat runs from sharing journal keys.
            let method = match readout {
                Readout::Sum => format!("DEEPMAP-{}", kind.name()),
                Readout::Concat => format!("DEEPMAP-{}-CONCAT", kind.name()),
            };
            let cell = journal.as_ref().map(|j| JournalCell {
                journal: j,
                dataset: name,
                method: &method,
            });
            let deep = run_deepmap_config_journaled(&ds, config, &args, cell);
            deepmap_obs::info!(
                "  DEEPMAP-{:<3} {} (epoch {:?}, {}/{} folds)",
                kind.name(),
                deep.accuracy,
                deep.best_epoch,
                deep.folds_completed(),
                deep.folds_total
            );
            cells.push(Cell::from_summary(&deep));
        }
        table.push_cells(name, cells);
    }
    println!(
        "\n# Table 2 — flat kernels vs deep maps (scale {}, readout {readout:?})\n",
        args.scale
    );
    println!("{}", table.to_markdown());
}
