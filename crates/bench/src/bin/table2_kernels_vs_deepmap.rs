//! Reproduces **Table 2**: 10-fold CV accuracy of GK/SP/WL vs
//! DEEPMAP-GK/SP/WL on the benchmark datasets.
//!
//! The paper's finding: the deep map models outperform their flat kernels
//! on almost every dataset (exceptions in the paper: SP on IMDB-MULTI, WL
//! on NCI1/COLLAB).
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin table2_kernels_vs_deepmap -- \
//!     --scale 0.1 --epochs 20 --datasets SYNTHIE,KKI,PTC_MR
//! ```
//!
//! Extra flag: `--readout sum|concat` for the readout ablation (DESIGN.md
//! §4 choice 2).

use deepmap_bench::runner::{deepmap_config, run_deepmap_config, run_flat_kernel};
use deepmap_bench::ExperimentArgs;
use deepmap_core::Readout;
use deepmap_bench::runner::load_dataset;
use deepmap_datasets::all_dataset_names;
use deepmap_eval::tables::ResultTable;
use deepmap_kernels::FeatureKind;

fn main() {
    let mut raw: Vec<String> = std::env::args().collect();
    let mut readout = Readout::Sum;
    if let Some(pos) = raw.iter().position(|a| a == "--readout") {
        let value = raw.get(pos + 1).cloned().unwrap_or_default();
        readout = match value.as_str() {
            "sum" => Readout::Sum,
            "concat" => Readout::Concat,
            other => {
                eprintln!("unknown readout {other:?}; use sum|concat");
                std::process::exit(2);
            }
        };
        raw.drain(pos..=pos + 1);
    }
    let args = ExperimentArgs::parse(raw);

    let kinds = [
        FeatureKind::paper_graphlet(),
        FeatureKind::ShortestPath,
        FeatureKind::paper_wl(),
    ];
    let mut table = ResultTable::new(vec![
        "GK", "DEEPMAP-GK", "SP", "DEEPMAP-SP", "WL", "DEEPMAP-WL",
    ]);
    for name in all_dataset_names() {
        if !args.wants_dataset(name) {
            continue;
        }
        let ds = load_dataset(name, &args).expect("registered name");
        eprintln!("== {name}: {} graphs ==", ds.len());
        let mut cells = Vec::with_capacity(6);
        for kind in kinds {
            let flat = run_flat_kernel(&ds, kind, &args);
            eprintln!("  {:<3} {}", kind.name(), flat.accuracy);
            cells.push(Some(flat.accuracy));
            let mut config = deepmap_config(kind, &args);
            config.readout = readout;
            let deep = run_deepmap_config(&ds, config, &args);
            eprintln!("  DEEPMAP-{:<3} {} (epoch {:?})", kind.name(), deep.accuracy, deep.best_epoch);
            cells.push(Some(deep.accuracy));
        }
        table.push_row(name, cells);
    }
    println!("\n# Table 2 — flat kernels vs deep maps (scale {}, readout {readout:?})\n", args.scale);
    println!("{}", table.to_markdown());
}
