//! Reproduces **Figure 6**: representational power of the deep map models
//! vs their flat kernels on SYNTHIE.
//!
//! Representational power = training accuracy over epochs (paper §5.3.2);
//! the flat kernels contribute constant lines (their SVM training
//! accuracy). The paper's finding: the deep maps dramatically exceed their
//! kernels, with DEEPMAP-WL/SP converging faster than DEEPMAP-GK.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin fig6_representation -- --scale 0.25 --epochs 50
//! ```

use deepmap_bench::runner::load_dataset;
use deepmap_bench::runner::{deepmap_training_curve, kernel_training_accuracy};
use deepmap_bench::ExperimentArgs;
use deepmap_eval::tables::series_markdown;
use deepmap_kernels::FeatureKind;

fn main() {
    let args = ExperimentArgs::from_env();
    let ds = load_dataset("SYNTHIE", &args).expect("SYNTHIE registered");
    deepmap_obs::info!("SYNTHIE at scale {}: {} graphs", args.scale, ds.len());

    let kinds = [
        FeatureKind::paper_graphlet(),
        FeatureKind::ShortestPath,
        FeatureKind::paper_wl(),
    ];
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for kind in kinds {
        let flat = kernel_training_accuracy(&ds, kind, &args);
        deepmap_obs::info!(
            "{} training accuracy (flat kernel SVM): {:.2}%",
            kind.name(),
            flat * 100.0
        );
        series.push((kind.name().to_string(), vec![flat; args.epochs]));

        let curve = deepmap_training_curve(&ds, kind, &args);
        deepmap_obs::info!(
            "DEEPMAP-{}: final training accuracy {:.2}%",
            kind.name(),
            curve.last().copied().unwrap_or(0.0) * 100.0
        );
        series.push((format!("DEEPMAP-{}", kind.name()), curve));
    }

    let xs: Vec<f64> = (1..=args.epochs).map(|e| e as f64).collect();
    println!(
        "{}",
        series_markdown(
            "Figure 6 — training accuracy vs epoch (SYNTHIE)",
            "epoch",
            &series,
            &xs,
        )
    );
}
