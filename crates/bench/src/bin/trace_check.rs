//! CI smoke gate for the trace exporter: validates a `deepmap-obs` JSONL
//! trace file.
//!
//! ```text
//! cargo run -p deepmap-bench --bin trace_check -- results/TRACE_pipeline.jsonl
//! ```
//!
//! Every line must parse as JSON with a `kind` of `span` or `event`; span
//! lines must carry `name`, `start_us`, and `dur_us`; parent references
//! must point at span ids that exist in the file. The file must contain the
//! top-level pipeline stage spans plus training epochs — the end-to-end
//! proof that instrumentation reaches from graph alignment to the training
//! loop. Exits non-zero with a diagnostic on the first violation.

use deepmap_bench::json::Json;
use std::collections::HashSet;

/// Span names a full pipeline trace must contain.
const REQUIRED_SPANS: &[&str] = &[
    "pipeline.prepare",
    "pipeline.alignment",
    "pipeline.receptive_field",
    "pipeline.feature_extraction",
    "pipeline.assemble",
    "train.epoch",
];

fn fail(message: &str) -> ! {
    eprintln!("trace_check: {message}");
    std::process::exit(1);
}

fn num(json: &Json, key: &str) -> Option<f64> {
    match json.get(key) {
        Some(Json::Num(n)) => Some(*n),
        _ => None,
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/TRACE_pipeline.jsonl".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));

    let mut names = HashSet::new();
    let mut span_ids = HashSet::new();
    let mut parents = Vec::new();
    let mut spans = 0usize;
    let mut events = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line)
            .unwrap_or_else(|e| fail(&format!("{path}:{}: invalid JSON: {e}", lineno + 1)));
        match json.get("kind").and_then(Json::as_str) {
            Some("span") => {
                spans += 1;
                let name = json
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail(&format!("{path}:{}: span without name", lineno + 1)));
                names.insert(name.to_string());
                let id = num(&json, "id").unwrap_or_else(|| {
                    fail(&format!("{path}:{}: span without numeric id", lineno + 1))
                });
                span_ids.insert(id as u64);
                if num(&json, "start_us").is_none() || num(&json, "dur_us").is_none() {
                    fail(&format!("{path}:{}: span without timing", lineno + 1));
                }
                if let Some(parent) = num(&json, "parent") {
                    parents.push((lineno + 1, parent as u64));
                }
            }
            Some("event") => {
                events += 1;
                if json.get("message").and_then(Json::as_str).is_none() {
                    fail(&format!("{path}:{}: event without message", lineno + 1));
                }
            }
            _ => fail(&format!("{path}:{}: unknown or missing kind", lineno + 1)),
        }
    }
    if spans == 0 {
        fail(&format!(
            "{path}: no spans recorded (is DEEPMAP_TRACE=spans?)"
        ));
    }
    for (lineno, parent) in parents {
        if !span_ids.contains(&parent) {
            fail(&format!("{path}:{lineno}: parent {parent} not in trace"));
        }
    }
    let missing: Vec<&str> = REQUIRED_SPANS
        .iter()
        .copied()
        .filter(|required| !names.contains(*required))
        .collect();
    if !missing.is_empty() {
        fail(&format!("{path}: missing required spans: {missing:?}"));
    }
    println!(
        "trace_check: {path} ok — {spans} span(s), {events} event(s), {} distinct stage name(s)",
        names.len()
    );
}
