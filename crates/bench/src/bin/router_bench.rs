//! Multi-tenant router benchmark: latency with many resident models and
//! zero-downtime hot reload, measured over real sockets.
//!
//! Trains four small DeepMap-WL bundles (different seeds, same task),
//! parks them behind one `deepmap-net` port via the [`ModelRouter`], and
//! measures:
//!
//! 1. **single** — client-observed p50/p99 round-trip latency and
//!    requests/sec with one resident model (the PR-6 baseline shape);
//! 2. **multi** — the same traffic mixed round-robin across four resident
//!    models by name: per-model replica pools mean tenancy must not cost
//!    an order of magnitude;
//! 3. **reload** — four client threads hammer one model over TCP while an
//!    admin connection hot-swaps its weights twice mid-load. The contract
//!    is zero failed requests: every wire request is answered with a
//!    prediction or a typed backpressure rejection, never a dropped
//!    connection or a routing hole;
//! 4. **audit** — shutdown accounting: every retired replica pool joined
//!    (`pools_joined == pools_retired`), zero leaked pools, zero forced
//!    socket closes.
//!
//! The report lands in `results/BENCH_router.json`. Hard contract,
//! enforced with non-zero exits: `reload_failed_requests == 0`,
//! `pools_leaked == 0`, and a clean shutdown.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin router_bench
//! cargo run --release -p deepmap-bench --bin router_bench -- --smoke
//!
//! --smoke          tiny request counts; same hard assertions
//! --requests <n>   round-trips per scenario (default 200)
//! --seed <u64>     master seed for data and traffic (default 7)
//! --out <path>     report path (default results/BENCH_router.json)
//! ```

use deepmap_bench::json::Json;
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_net::{ClientError, ErrorCode, NetClient, NetConfig, NetServer};
use deepmap_nn::train::TrainConfig;
use deepmap_router::{ModelConfig, ModelRouter, RouterConfig};
use deepmap_serve::ModelBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Replies wait out cold starts; nothing in this harness may hang on them.
const PATIENT: Duration = Duration::from_secs(30);
/// Models resident in the multi-tenant scenario.
const TENANTS: usize = 4;
/// Client threads hammering the victim model during the hot reload.
const RELOAD_CLIENTS: usize = 4;

struct Args {
    smoke: bool,
    requests: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        requests: 200,
        seed: 7,
        out: PathBuf::from("results/BENCH_router.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--requests" => {
                args.requests = value("--requests").parse().unwrap_or_else(|_| {
                    fail("--requests must be a positive integer");
                })
            }
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    fail("--seed must be an integer");
                })
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            other => fail(&format!(
                "unknown flag {other}\nusage: router_bench [--smoke] [--requests n] [--seed s] [--out path]"
            )),
        }
    }
    if args.smoke {
        args.requests = args.requests.min(40);
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("router_bench: {msg}");
    std::process::exit(1);
}

fn synthetic_dataset(seed: u64) -> (Vec<Graph>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..10 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    (graphs, labels)
}

fn request_stream(n: usize, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}

fn trained_bundle(seed: u64, smoke: bool) -> Arc<ModelBundle> {
    let (graphs, labels) = synthetic_dataset(seed);
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: if smoke { 6 } else { 15 },
            batch_size: 8,
            learning_rate: 0.01,
            seed,
        },
        seed,
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm
        .try_prepare_frozen(&graphs, &labels)
        .unwrap_or_else(|e| fail(&format!("prepare failed: {e}")));
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    Arc::new(
        ModelBundle::freeze(
            &dm,
            &prepared,
            pre,
            &result.model,
            vec!["cycle".to_string(), "clique".to_string()],
        )
        .unwrap_or_else(|e| fail(&format!("freeze failed: {e}"))),
    )
}

fn start_router_server(bundles: &[Arc<ModelBundle>], config: NetConfig) -> NetServer {
    let router = Arc::new(ModelRouter::new(RouterConfig::default()));
    for (i, bundle) in bundles.iter().enumerate() {
        router
            .register(&format!("m{i}"), Arc::clone(bundle), ModelConfig::default())
            .unwrap_or_else(|e| fail(&format!("register m{i} failed: {e}")));
    }
    NetServer::start_router(router, "127.0.0.1:0", config)
        .unwrap_or_else(|e| fail(&format!("net server start failed: {e}")))
}

fn connect(server: &NetServer) -> NetClient {
    let client = NetClient::connect(server.local_addr())
        .unwrap_or_else(|e| fail(&format!("connect failed: {e}")));
    client
        .set_read_timeout(PATIENT)
        .unwrap_or_else(|e| fail(&format!("set timeout failed: {e}")));
    client
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Round-trips `stream` against `server`, naming `models[i % len]` on each
/// request. Returns (p50_ms, p99_ms, requests_per_sec).
fn measure(server: &NetServer, stream: &[Graph], models: &[&str]) -> (f64, f64, f64) {
    let mut client = connect(server);
    // Warm every named pool so cold starts stay out of the percentiles.
    for model in models {
        client
            .predict_as(model, &stream[0])
            .unwrap_or_else(|e| fail(&format!("warm-up on {model} failed: {e}")));
    }
    let mut latencies_ms = Vec::with_capacity(stream.len());
    let start = Instant::now();
    for (i, graph) in stream.iter().enumerate() {
        let model = models[i % models.len()];
        let sent = Instant::now();
        match client.predict_as(model, graph) {
            Ok(_) => latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3),
            Err(e) => fail(&format!("request {i} on {model} failed: {e}")),
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let requests_per_sec = stream.len() as f64 / elapsed;
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.99),
        requests_per_sec,
    )
}

fn main() {
    let args = parse_args();
    let bundles: Vec<Arc<ModelBundle>> = (0..TENANTS as u64)
        .map(|i| trained_bundle(args.seed.wrapping_add(i * 1009), args.smoke))
        .collect();
    let stream = request_stream(args.requests, args.seed);

    // 1. One resident model: the baseline shape.
    let single = start_router_server(&bundles[..1], NetConfig::default());
    let (single_p50, single_p99, single_rps) = measure(&single, &stream, &["m0"]);
    let single_stats = single.shutdown();
    if single_stats.router.pools_leaked != 0 {
        fail("single-model shutdown leaked a pool");
    }
    deepmap_obs::info!(
        "single: p50 {:.3} ms, p99 {:.3} ms, {:.0} req/s",
        single_p50,
        single_p99,
        single_rps
    );

    // 2. Four resident models, traffic mixed round-robin by name.
    let server = start_router_server(
        &bundles,
        NetConfig {
            allow_admin: true,
            ..NetConfig::default()
        },
    );
    let names: Vec<String> = (0..TENANTS).map(|i| format!("m{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let (multi_p50, multi_p99, multi_rps) = measure(&server, &stream, &name_refs);
    deepmap_obs::info!(
        "multi ({TENANTS} models): p50 {:.3} ms, p99 {:.3} ms, {:.0} req/s",
        multi_p50,
        multi_p99,
        multi_rps
    );

    // 3. Hot reload under load: hammer m0 from several connections while
    // an admin connection swaps its weights twice. Nothing may fail —
    // typed backpressure (Busy/queue-full) counts as answered, anything
    // else is a dropped request and fails the bench.
    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..RELOAD_CLIENTS)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            let failed = Arc::clone(&failed);
            let graphs = stream.clone();
            let mut client = connect(&server);
            std::thread::spawn(move || {
                let mut i = c;
                while !stop.load(Ordering::Relaxed) {
                    let graph = &graphs[i % graphs.len()];
                    i += 1;
                    match client.predict_as("m0", graph) {
                        Ok(_) => {
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Server(r))
                            if r.code == ErrorCode::Busy || r.code == ErrorCode::QueueFull =>
                        {
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("router_bench: reload-load request failed: {e}");
                            failed.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            })
        })
        .collect();

    let mut admin = connect(&server);
    let replacement = trained_bundle(args.seed.wrapping_mul(31).wrapping_add(5), args.smoke);
    let replacement_bytes = replacement.to_bytes();
    std::thread::sleep(Duration::from_millis(if args.smoke { 20 } else { 50 }));
    let mut reload_ms = Vec::new();
    let mut version = 1u64;
    for _ in 0..2 {
        let begin = Instant::now();
        version = admin
            .reload("m0", &replacement_bytes)
            .unwrap_or_else(|e| fail(&format!("hot reload failed: {e}")));
        reload_ms.push(begin.elapsed().as_secs_f64() * 1e3);
        std::thread::sleep(Duration::from_millis(if args.smoke { 20 } else { 50 }));
    }
    stop.store(true, Ordering::Relaxed);
    for client in clients {
        if client.join().is_err() {
            failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    let reload_answered = answered.load(Ordering::Relaxed);
    let reload_failed = failed.load(Ordering::Relaxed);
    if version != 3 {
        fail(&format!(
            "two reloads must land at version 3, got {version}"
        ));
    }
    deepmap_obs::info!(
        "reload: {} requests answered across 2 swaps ({} failed), swap times {:?} ms",
        reload_answered,
        reload_failed,
        reload_ms
    );

    // 4. Shutdown audit.
    drop(admin);
    let stats = server.shutdown();
    let audit = stats.router;
    let clean_shutdown = stats.forced_closes == 0
        && stats.conn_panics == 0
        && stats.conns_accepted == stats.conns_closed
        && audit.pools_leaked == 0
        && audit.pools_joined == audit.pools_retired;

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("router_bench".into())),
        ("smoke".into(), Json::Bool(args.smoke)),
        ("seed".into(), Json::Num(args.seed as f64)),
        ("requests".into(), Json::Num(stream.len() as f64)),
        (
            "single_model".into(),
            Json::Obj(vec![
                ("p50_ms".into(), Json::Num(single_p50)),
                ("p99_ms".into(), Json::Num(single_p99)),
                ("requests_per_sec".into(), Json::Num(single_rps)),
            ]),
        ),
        (
            "multi_model".into(),
            Json::Obj(vec![
                ("models".into(), Json::Num(TENANTS as f64)),
                ("p50_ms".into(), Json::Num(multi_p50)),
                ("p99_ms".into(), Json::Num(multi_p99)),
                ("requests_per_sec".into(), Json::Num(multi_rps)),
            ]),
        ),
        (
            "hot_reload".into(),
            Json::Obj(vec![
                ("reloads".into(), Json::Num(reload_ms.len() as f64)),
                (
                    "answered_during_reload".into(),
                    Json::Num(reload_answered as f64),
                ),
                ("failed_requests".into(), Json::Num(reload_failed as f64)),
                (
                    "swap_ms".into(),
                    Json::Arr(reload_ms.iter().map(|&ms| Json::Num(ms)).collect()),
                ),
                ("final_version".into(), Json::Num(version as f64)),
            ]),
        ),
        (
            "audit".into(),
            Json::Obj(vec![
                (
                    "pools_retired".into(),
                    Json::Num(audit.pools_retired as f64),
                ),
                ("pools_joined".into(), Json::Num(audit.pools_joined as f64)),
                (
                    "threads_joined".into(),
                    Json::Num(audit.threads_joined as f64),
                ),
                ("pools_leaked".into(), Json::Num(audit.pools_leaked as f64)),
            ]),
        ),
        ("clean_shutdown".into(), Json::Bool(clean_shutdown)),
    ]);
    std::fs::create_dir_all("results").ok();
    std::fs::write(&args.out, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", args.out.display())));

    // Self-check: re-read and parse what landed on disk, then enforce the
    // tenancy contract with non-zero exits.
    let text = std::fs::read_to_string(&args.out)
        .unwrap_or_else(|e| fail(&format!("cannot re-read {}: {e}", args.out.display())));
    let parsed =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("report is not valid JSON: {e}")));
    if parsed.get("multi_model").is_none()
        || parsed.get("hot_reload").is_none()
        || parsed.get("audit").is_none()
    {
        fail("report is missing required fields");
    }
    if reload_failed != 0 {
        fail(&format!(
            "{reload_failed} requests failed across the hot swaps — zero-downtime contract broken"
        ));
    }
    if reload_answered == 0 {
        fail("no traffic actually ran during the hot swaps");
    }
    if !clean_shutdown {
        fail(&format!(
            "shutdown was not clean: {} forced closes, {} pools leaked, {}/{} pools joined",
            stats.forced_closes, audit.pools_leaked, audit.pools_joined, audit.pools_retired
        ));
    }
    println!(
        "wrote {} (single p50 {:.3} ms, {TENANTS}-model p50 {:.3} ms, 2 hot swaps with 0 failed requests, clean shutdown)",
        args.out.display(),
        single_p50,
        multi_p50
    );
}
