//! Reproduces **Table 5**: per-epoch runtime of DeepMap and the GNNs.
//!
//! The paper's findings: DeepMap is competitive with the other GNNs; it is
//! slowest where the vertex feature maps are high-dimensional (NCI1,
//! ENZYMES, IMDB-*), and GIN pays for its deep MLPs everywhere.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin table5_runtime -- \
//!     --scale 0.1 --epochs 5 --datasets PTC_MR,KKI
//! ```
//!
//! This binary doubles as the pipeline profiler: unless `DEEPMAP_TRACE` or
//! `--quiet` says otherwise it records stage spans, then writes the
//! per-stage breakdown to `results/BENCH_pipeline_stages.json` and the raw
//! trace to `results/TRACE_pipeline.jsonl`. `--smoke` runs one tiny cell
//! (KKI, DeepMap + one GNN) for CI smoke gates.

use deepmap_bench::runner::load_dataset;
use deepmap_bench::runner::{run_deepmap, run_gnn, GnnKind};
use deepmap_bench::{stages, ExperimentArgs};
use deepmap_datasets::all_dataset_names;
use deepmap_gnn::GnnInput;
use deepmap_kernels::FeatureKind;
use deepmap_obs::time::format_seconds;

fn main() {
    let args = ExperimentArgs::from_env();
    // This is the runtime table: record stage spans by default so the
    // breakdown artifact is always fresh. Explicit settings win.
    if !args.quiet && std::env::var("DEEPMAP_TRACE").is_err() {
        deepmap_obs::set_global_level(deepmap_obs::TraceLevel::Spans);
    }
    let all = GnnKind::all();
    let gnns: &[GnnKind] = if args.smoke { &all[..1] } else { &all };
    println!("# Table 5 — per-epoch runtime (scale {})\n", args.scale);
    let mut header = format!("| {:<12} | {:>9} |", "Dataset", "DEEPMAP");
    for kind in gnns {
        header.push_str(&format!(" {:>9} |", kind.name()));
    }
    println!("{header}");
    println!("|{}|", "-".repeat(header.len().saturating_sub(2)));
    for name in all_dataset_names() {
        if !args.wants_dataset(name) {
            continue;
        }
        if args.smoke && name != "KKI" && args.datasets.is_none() {
            continue;
        }
        let ds = load_dataset(name, &args).expect("registered name");
        deepmap_obs::info!("== {name}: {} graphs ==", ds.len());
        let deepmap = run_deepmap(&ds, FeatureKind::paper_wl(), &args);
        let mut row = format!(
            "| {:<12} | {:>9} |",
            name,
            format_seconds(deepmap.mean_epoch_seconds)
        );
        for kind in gnns {
            let s = run_gnn(&ds, *kind, GnnInput::OneHotLabels, &args);
            row.push_str(&format!(" {:>9} |", format_seconds(s.mean_epoch_seconds)));
        }
        println!("{row}");
    }
    println!("\n(wall-clock mean over folds and epochs; single CPU core per fold)");
    if let Some(path) = stages::finish_run("pipeline") {
        deepmap_obs::info!("stage breakdown written to {}", path.display());
    }
}
