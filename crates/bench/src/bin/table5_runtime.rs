//! Reproduces **Table 5**: per-epoch runtime of DeepMap and the GNNs.
//!
//! The paper's findings: DeepMap is competitive with the other GNNs; it is
//! slowest where the vertex feature maps are high-dimensional (NCI1,
//! ENZYMES, IMDB-*), and GIN pays for its deep MLPs everywhere.
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin table5_runtime -- \
//!     --scale 0.1 --epochs 5 --datasets PTC_MR,KKI
//! ```

use deepmap_bench::runner::load_dataset;
use deepmap_bench::runner::{run_deepmap, run_gnn, GnnKind};
use deepmap_bench::ExperimentArgs;
use deepmap_datasets::all_dataset_names;
use deepmap_gnn::GnnInput;
use deepmap_kernels::FeatureKind;

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.1}s")
    } else {
        format!("{:.1}ms", seconds * 1000.0)
    }
}

fn main() {
    let args = ExperimentArgs::from_env();
    println!("# Table 5 — per-epoch runtime (scale {})\n", args.scale);
    println!(
        "| {:<12} | {:>9} | {:>9} | {:>9} | {:>9} | {:>9} |",
        "Dataset", "DEEPMAP", "DGCNN", "GIN", "DCNN", "PATCHYSAN"
    );
    println!("|{}|", "-".repeat(74));
    for name in all_dataset_names() {
        if !args.wants_dataset(name) {
            continue;
        }
        let ds = load_dataset(name, &args).expect("registered name");
        eprintln!("== {name}: {} graphs ==", ds.len());
        let deepmap = run_deepmap(&ds, FeatureKind::paper_wl(), &args);
        let mut row = format!(
            "| {:<12} | {:>9} |",
            name,
            format_time(deepmap.mean_epoch_seconds)
        );
        for kind in GnnKind::all() {
            let s = run_gnn(&ds, kind, GnnInput::OneHotLabels, &args);
            row.push_str(&format!(" {:>9} |", format_time(s.mean_epoch_seconds)));
        }
        println!("{row}");
    }
    println!("\n(wall-clock mean over folds and epochs; single CPU core per fold)");
}
