//! Reproduces **Figure 7**: representational power of DeepMap vs the GNN
//! baselines (plus the strongest flat kernel) on SYNTHIE.
//!
//! The paper's finding: DeepMap converges faster and reaches higher
//! training accuracy than every baseline, beating them "with a large
//! margin".
//!
//! ```text
//! cargo run --release -p deepmap-bench --bin fig7_baselines_power -- --scale 0.25 --epochs 50
//! ```

use deepmap_bench::runner::load_dataset;
use deepmap_bench::runner::{
    deepmap_training_curve, gnn_training_curve, kernel_training_accuracy, GnnKind,
};
use deepmap_bench::ExperimentArgs;
use deepmap_eval::tables::series_markdown;
use deepmap_gnn::GnnInput;
use deepmap_kernels::FeatureKind;

fn main() {
    let args = ExperimentArgs::from_env();
    let ds = load_dataset("SYNTHIE", &args).expect("SYNTHIE registered");
    deepmap_obs::info!("SYNTHIE at scale {}: {} graphs", args.scale, ds.len());

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();

    // DeepMap: the paper plots the best deep map variant; WL is the robust
    // default.
    let deepmap = deepmap_training_curve(&ds, FeatureKind::paper_wl(), &args);
    deepmap_obs::info!(
        "DEEPMAP final train acc {:.2}%",
        deepmap.last().unwrap_or(&0.0) * 100.0
    );
    series.push(("DEEPMAP".to_string(), deepmap));

    for kind in GnnKind::all() {
        let curve = gnn_training_curve(&ds, kind, GnnInput::OneHotLabels, &args);
        deepmap_obs::info!(
            "{} final train acc {:.2}%",
            kind.name(),
            curve.last().copied().unwrap_or(0.0) * 100.0
        );
        series.push((kind.name().to_string(), curve));
    }

    // The strongest flat kernel as the constant reference line.
    let best_kernel = [
        FeatureKind::paper_graphlet(),
        FeatureKind::ShortestPath,
        FeatureKind::paper_wl(),
    ]
    .into_iter()
    .map(|k| (k, kernel_training_accuracy(&ds, k, &args)))
    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    .expect("three kernels");
    deepmap_obs::info!(
        "best kernel {} train acc {:.2}%",
        best_kernel.0.name(),
        best_kernel.1 * 100.0
    );
    series.push((
        format!("{} (kernel)", best_kernel.0.name()),
        vec![best_kernel.1; args.epochs],
    ));

    let xs: Vec<f64> = (1..=args.epochs).map(|e| e as f64).collect();
    println!(
        "{}",
        series_markdown(
            "Figure 7 — training accuracy vs epoch, DeepMap vs baselines (SYNTHIE)",
            "epoch",
            &series,
            &xs,
        )
    );
}
