//! Minimal flag parsing shared by the experiment binaries.
//!
//! Every binary accepts the same knobs so quick runs and paper-scale runs
//! use one interface:
//!
//! ```text
//! --scale <f64>    dataset size multiplier (default 0.25)
//! --epochs <n>     training epochs (default 30)
//! --folds <n>      cross-validation folds (default 10)
//! --seed <u64>     master seed (default 7)
//! --full           shorthand for --scale 1.0 --epochs 100
//! --datasets a,b   restrict to named datasets
//! --resume         skip folds already recorded in the run journal
//! --journal PATH   journal location (default results/<experiment>.journal.jsonl)
//! --quiet          suppress progress events (sets trace level to off)
//! --smoke          tiny single-cell run for CI smoke gates
//! ```

/// Parsed experiment arguments.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Dataset size multiplier relative to the paper's Table 1.
    pub scale: f64,
    /// Training epochs for neural models.
    pub epochs: usize,
    /// Cross-validation folds.
    pub folds: usize,
    /// Master seed.
    pub seed: u64,
    /// Optional dataset-name filter.
    pub datasets: Option<Vec<String>>,
    /// Hard cap on graphs per dataset after scaling (None = no cap).
    pub max_graphs: Option<usize>,
    /// Resume from the run journal: skip (dataset, method, fold) cells it
    /// already records instead of re-training them.
    pub resume: bool,
    /// Journal path override; `None` uses
    /// `results/<experiment>.journal.jsonl`.
    pub journal: Option<std::path::PathBuf>,
    /// Suppress progress events: sets the global trace level to
    /// [`deepmap_obs::TraceLevel::Off`] so `--quiet` runs print results only.
    pub quiet: bool,
    /// Tiny single-cell run (smallest dataset, few epochs/folds) for CI
    /// smoke gates; each binary interprets the exact cell.
    pub smoke: bool,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            scale: 0.25,
            epochs: 30,
            folds: 10,
            seed: 7,
            datasets: None,
            max_graphs: Some(200),
            resume: false,
            journal: None,
            quiet: false,
            smoke: false,
        }
    }
}

impl ExperimentArgs {
    /// Parses `std::env::args()`-style strings (element 0 is skipped).
    ///
    /// Unknown flags abort with a usage message — silent typos in benchmark
    /// parameters would corrupt result tables.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> ExperimentArgs {
        let mut out = ExperimentArgs::default();
        let mut it = args.into_iter().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => out.scale = expect_value(&mut it, "--scale"),
                "--epochs" => out.epochs = expect_value(&mut it, "--epochs"),
                "--folds" => out.folds = expect_value(&mut it, "--folds"),
                "--seed" => out.seed = expect_value(&mut it, "--seed"),
                "--full" => {
                    out.scale = 1.0;
                    out.epochs = 100;
                    out.max_graphs = None;
                }
                "--max-graphs" => {
                    let v: usize = expect_value(&mut it, "--max-graphs");
                    out.max_graphs = if v == 0 { None } else { Some(v) };
                }
                "--datasets" => {
                    let list: String = expect_value(&mut it, "--datasets");
                    out.datasets = Some(list.split(',').map(|s| s.trim().to_string()).collect());
                }
                "--resume" => out.resume = true,
                "--journal" => {
                    let path: String = expect_value(&mut it, "--journal");
                    out.journal = Some(std::path::PathBuf::from(path));
                }
                "--quiet" => out.quiet = true,
                "--smoke" => {
                    out.smoke = true;
                    out.scale = out.scale.min(0.1);
                    out.epochs = out.epochs.min(3);
                    out.folds = out.folds.min(2);
                    out.max_graphs = Some(out.max_graphs.unwrap_or(40).min(40));
                }
                "--help" | "-h" => {
                    eprintln!("{}", USAGE);
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}\n{USAGE}");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Parses the real process arguments.
    pub fn from_env() -> ExperimentArgs {
        let args = ExperimentArgs::parse(std::env::args());
        if args.quiet {
            deepmap_obs::set_global_level(deepmap_obs::TraceLevel::Off);
        }
        args
    }

    /// `true` when `name` passes the dataset filter.
    pub fn wants_dataset(&self, name: &str) -> bool {
        match &self.datasets {
            None => true,
            Some(list) => list.iter().any(|d| d.eq_ignore_ascii_case(name)),
        }
    }
}

const USAGE: &str = "usage: <experiment> [--scale F] [--epochs N] [--folds N] [--seed N] [--full] [--datasets a,b,c] [--max-graphs N (0 = uncapped)] [--resume] [--journal PATH] [--quiet] [--smoke]";

fn expect_value<T: std::str::FromStr, I: Iterator<Item = String>>(it: &mut I, flag: &str) -> T {
    let raw = it.next().unwrap_or_else(|| {
        eprintln!("missing value for {flag}\n{USAGE}");
        std::process::exit(2);
    });
    raw.parse().unwrap_or_else(|_| {
        eprintln!("bad value {raw:?} for {flag}\n{USAGE}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExperimentArgs {
        let mut full = vec!["prog".to_string()];
        full.extend(args.iter().map(|s| s.to_string()));
        ExperimentArgs::parse(full)
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.folds, 10);
        assert!(a.wants_dataset("SYNTHIE"));
    }

    #[test]
    fn individual_flags() {
        let a = parse(&[
            "--scale", "0.5", "--epochs", "12", "--folds", "3", "--seed", "99",
        ]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.epochs, 12);
        assert_eq!(a.folds, 3);
        assert_eq!(a.seed, 99);
    }

    #[test]
    fn full_shorthand() {
        let a = parse(&["--full"]);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.epochs, 100);
        assert_eq!(a.max_graphs, None);
    }

    #[test]
    fn max_graphs_flag() {
        assert_eq!(parse(&["--max-graphs", "50"]).max_graphs, Some(50));
        assert_eq!(parse(&["--max-graphs", "0"]).max_graphs, None);
        assert_eq!(parse(&[]).max_graphs, Some(200));
    }

    #[test]
    fn resume_and_journal_flags() {
        let a = parse(&[]);
        assert!(!a.resume);
        assert_eq!(a.journal, None);
        let a = parse(&["--resume", "--journal", "results/custom.jsonl"]);
        assert!(a.resume);
        assert_eq!(
            a.journal,
            Some(std::path::PathBuf::from("results/custom.jsonl"))
        );
    }

    #[test]
    fn quiet_and_smoke_flags() {
        let a = parse(&[]);
        assert!(!a.quiet);
        assert!(!a.smoke);
        let a = parse(&["--quiet", "--smoke"]);
        assert!(a.quiet);
        assert!(a.smoke);
        assert!(a.scale <= 0.1);
        assert!(a.epochs <= 3);
        assert!(a.folds <= 2);
        assert_eq!(a.max_graphs, Some(40));
    }

    #[test]
    fn smoke_never_scales_settings_up() {
        let a = parse(&["--epochs", "2", "--folds", "1", "--smoke"]);
        assert_eq!(a.epochs, 2);
        assert_eq!(a.folds, 1);
    }

    #[test]
    fn dataset_filter_case_insensitive() {
        let a = parse(&["--datasets", "synthie, KKI"]);
        assert!(a.wants_dataset("SYNTHIE"));
        assert!(a.wants_dataset("kki"));
        assert!(!a.wants_dataset("NCI1"));
    }
}
