//! Per-stage timing breakdown for the experiment binaries.
//!
//! Every pipeline stage instrumented with a `deepmap-obs` span (alignment,
//! receptive-field assembly, feature-map extraction, tensor assembly,
//! training epochs, …) lands in the global registry when `DEEPMAP_TRACE` is
//! `spans`. [`finish_run`] folds those spans into a per-stage summary,
//! writes it to `results/BENCH_<name>_stages.json`, and flushes the raw
//! trace next to it so a slow run can be diagnosed span by span.

use crate::json::Json;
use std::path::PathBuf;

/// Where the stage breakdown for `name` is written.
pub fn stages_path(name: &str) -> PathBuf {
    PathBuf::from("results").join(format!("BENCH_{name}_stages.json"))
}

/// Writes `results/BENCH_<name>_stages.json` from the spans recorded in the
/// global registry and flushes the JSONL trace via
/// [`deepmap_obs::flush_trace`].
///
/// Returns the breakdown path when spans were recorded, `None` when the
/// trace level never reached `spans` (nothing to summarise). Failures to
/// write are reported as warning events, not panics — a benchmark that ran
/// to completion should still print its table.
pub fn finish_run(name: &str) -> Option<PathBuf> {
    let registry = deepmap_obs::global();
    let summary = registry.stage_summary();
    if summary.is_empty() {
        return None;
    }
    let stages: Vec<Json> = summary
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("stage".to_string(), Json::Str(s.name.clone())),
                ("count".to_string(), Json::Num(s.count as f64)),
                ("total_s".to_string(), Json::Num(s.total_s)),
                ("mean_s".to_string(), Json::Num(s.mean_s)),
                ("min_s".to_string(), Json::Num(s.min_s)),
                ("max_s".to_string(), Json::Num(s.max_s)),
            ])
        })
        .collect();
    let trace = match deepmap_obs::flush_trace(name) {
        Ok(trace) => trace,
        Err(e) => {
            deepmap_obs::warn!("stage trace not written: {e}");
            None
        }
    };
    let doc = Json::Obj(vec![
        ("experiment".to_string(), Json::Str(name.to_string())),
        ("recorded".to_string(), Json::Bool(true)),
        ("stages".to_string(), Json::Arr(stages)),
        (
            "trace".to_string(),
            match &trace {
                Some(path) => Json::Str(path.display().to_string()),
                None => Json::Null,
            },
        ),
    ]);
    let path = stages_path(name);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, format!("{}\n", doc.to_json())) {
        Ok(()) => Some(path),
        Err(e) => {
            deepmap_obs::warn!("cannot write stage breakdown {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_path_is_under_results() {
        assert_eq!(
            stages_path("pipeline"),
            PathBuf::from("results/BENCH_pipeline_stages.json")
        );
    }
}
