//! Criterion bench for **Figure 7**: one training epoch of DeepMap vs each
//! GNN baseline on the same SYNTHIE-shaped inputs — the per-step cost
//! behind the representational-power curves.

use criterion::{criterion_group, criterion_main, Criterion};
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_datasets::generate;
use deepmap_gnn::common::featurize;
use deepmap_gnn::dcnn::{Dcnn, DcnnConfig};
use deepmap_gnn::dgcnn::{Dgcnn, DgcnnConfig};
use deepmap_gnn::gin::{Gin, GinConfig};
use deepmap_gnn::patchysan::{PatchySan, PatchySanConfig};
use deepmap_gnn::{fit_gnn, GnnInput, GnnTrainConfig};
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::{fit, TrainConfig};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let ds = generate("SYNTHIE", 0.02, 1)
        .expect("registered")
        .subsample(8);
    let mut group = c.benchmark_group("fig7_epoch_per_model");
    group.sample_size(10);

    let pipeline = DeepMap::new(DeepMapConfig {
        max_feature_dim: Some(64),
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 3 })
    });
    let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
    group.bench_function("DEEPMAP", |b| {
        b.iter(|| {
            let mut model = pipeline.build_model(&prepared);
            black_box(fit(
                &mut model,
                &prepared.samples,
                None,
                &TrainConfig {
                    epochs: 1,
                    ..Default::default()
                },
            ))
        })
    });

    let (samples, m) = featurize(&ds.graphs, &ds.labels, GnnInput::OneHotLabels, 1);
    let one = GnnTrainConfig {
        epochs: 1,
        ..Default::default()
    };
    group.bench_function("GIN", |b| {
        b.iter(|| {
            let mut model = Gin::new(&GinConfig::default_for(m, ds.n_classes, 1));
            black_box(fit_gnn(&mut model, &samples, None, &one))
        })
    });
    group.bench_function("DGCNN", |b| {
        b.iter(|| {
            let mut model = Dgcnn::new(&DgcnnConfig::default_for(m, ds.n_classes, 1));
            black_box(fit_gnn(&mut model, &samples, None, &one))
        })
    });
    group.bench_function("DCNN", |b| {
        b.iter(|| {
            let mut model = Dcnn::new(&DcnnConfig::default_for(m, ds.n_classes, 1));
            black_box(fit_gnn(&mut model, &samples, None, &one))
        })
    });
    group.bench_function("PATCHYSAN", |b| {
        b.iter(|| {
            let mut model = PatchySan::new(&PatchySanConfig::default_for(m, ds.n_classes, 95.0, 1));
            black_box(fit_gnn(&mut model, &samples, None, &one))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
