//! Criterion bench for **Table 2**: the flat-kernel and deep-map pipelines.
//!
//! Measures the two halves the table compares: Gram-matrix construction for
//! GK/SP/WL (kernel side) and feature extraction + tensor assembly (deep
//! side) on the same dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_datasets::generate;
use deepmap_kernels::{kernel_matrix, FeatureKind};
use std::hint::black_box;

fn bench_kernels_vs_prepare(c: &mut Criterion) {
    let ds = generate("PTC_MR", 0.06, 1).expect("registered");
    let kinds = [
        (
            "GK",
            FeatureKind::Graphlet {
                size: 4,
                samples: 10,
            },
        ),
        ("SP", FeatureKind::ShortestPath),
        ("WL", FeatureKind::WlSubtree { iterations: 3 }),
    ];

    let mut group = c.benchmark_group("table2_flat_kernel_gram");
    for (name, kind) in kinds {
        group.bench_function(name, |b| {
            b.iter(|| black_box(kernel_matrix(&ds.graphs, black_box(kind), 1)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table2_deepmap_prepare");
    for (name, kind) in kinds {
        let pipeline = DeepMap::new(DeepMapConfig {
            max_feature_dim: Some(64),
            ..DeepMapConfig::paper(kind)
        });
        group.bench_function(name, |b| {
            b.iter(|| black_box(pipeline.prepare(&ds.graphs, &ds.labels)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels_vs_prepare);
criterion_main!(benches);
