//! Criterion bench for **Table 4**: featurising GNN inputs.
//!
//! Table 4 swaps the GNNs' one-hot label inputs for DeepMap's vertex
//! feature maps; this bench measures the cost of both featurisations (the
//! only thing that changes between Table 3 and Table 4 runs).

use criterion::{criterion_group, criterion_main, Criterion};
use deepmap_datasets::generate;
use deepmap_gnn::common::featurize;
use deepmap_gnn::GnnInput;
use deepmap_kernels::FeatureKind;
use std::hint::black_box;

fn bench_featurize(c: &mut Criterion) {
    let ds = generate("PTC_FM", 0.08, 1).expect("registered");
    let mut group = c.benchmark_group("table4_featurize");
    group.bench_function("one_hot_labels", |b| {
        b.iter(|| black_box(featurize(&ds.graphs, &ds.labels, GnnInput::OneHotLabels, 1)))
    });
    for (name, kind) in [
        ("vertex_maps_wl", FeatureKind::WlSubtree { iterations: 3 }),
        ("vertex_maps_sp", FeatureKind::ShortestPath),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(featurize(
                    &ds.graphs,
                    &ds.labels,
                    GnnInput::VertexFeatureMaps(kind, 64),
                    1,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_featurize);
criterion_main!(benches);
