//! Criterion bench for **Figure 5**: receptive-field construction as a
//! function of `r` — the pipeline stage the sensitivity sweep stresses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepmap_core::alignment::{vertex_sequence, VertexOrdering};
use deepmap_core::receptive_field::sequence_receptive_fields;
use deepmap_graph::generators::{erdos_renyi, GeneratorConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_receptive_fields(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let g = erdos_renyi(&GeneratorConfig::new(95).edge_probability(0.04), &mut rng);
    let seq = vertex_sequence(&g, VertexOrdering::EigenvectorCentrality);
    let mut group = c.benchmark_group("fig5_receptive_fields");
    for r in [1usize, 2, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| {
                black_box(sequence_receptive_fields(
                    &g,
                    &seq.order,
                    &seq.score,
                    95,
                    black_box(r),
                    None,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_receptive_fields);
criterion_main!(benches);
