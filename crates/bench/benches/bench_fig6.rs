//! Criterion bench for **Figure 6**: one representational-power training
//! step per deep-map variant on a SYNTHIE-shaped graph set.

use criterion::{criterion_group, criterion_main, Criterion};
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_datasets::generate;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::{fit, TrainConfig};
use std::hint::black_box;

fn bench_variants(c: &mut Criterion) {
    let ds = generate("SYNTHIE", 0.02, 1)
        .expect("registered")
        .subsample(8);
    let mut group = c.benchmark_group("fig6_train_epoch");
    group.sample_size(10);
    for kind in [
        FeatureKind::Graphlet {
            size: 4,
            samples: 10,
        },
        FeatureKind::ShortestPath,
        FeatureKind::WlSubtree { iterations: 3 },
    ] {
        let pipeline = DeepMap::new(DeepMapConfig {
            max_feature_dim: Some(64),
            ..DeepMapConfig::paper(kind)
        });
        let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
        group.bench_function(format!("DEEPMAP-{}", kind.name()), |b| {
            b.iter(|| {
                let mut model = pipeline.build_model(&prepared);
                black_box(fit(
                    &mut model,
                    &prepared.samples,
                    None,
                    &TrainConfig {
                        epochs: 1,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
