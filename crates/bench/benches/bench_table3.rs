//! Criterion bench for **Table 3**: the baseline kernels' Gram matrices.
//!
//! DGK (SGNS training + embedded representations), RetGK (exact mean-map),
//! and GNTK (pairwise dynamic program) dominate Table 3's kernel columns;
//! this bench measures each on the same small dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use deepmap_datasets::generate;
use deepmap_kernels::dgk::{self, DgkConfig};
use deepmap_kernels::gntk::{self, GntkConfig};
use deepmap_kernels::retgk::{self, RetGkConfig};
use std::hint::black_box;

fn bench_baseline_kernels(c: &mut Criterion) {
    let ds = generate("PTC_MM", 0.05, 1).expect("registered");
    let mut group = c.benchmark_group("table3_baseline_kernels");
    group.sample_size(10);
    group.bench_function("DGK", |b| {
        b.iter(|| black_box(dgk::kernel_matrix(&ds.graphs, &DgkConfig::default())))
    });
    group.bench_function("RETGK", |b| {
        b.iter(|| black_box(retgk::kernel_matrix(&ds.graphs, &RetGkConfig::default())))
    });
    group.bench_function("GNTK", |b| {
        b.iter(|| black_box(gntk::kernel_matrix(&ds.graphs, &GntkConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_baseline_kernels);
criterion_main!(benches);
