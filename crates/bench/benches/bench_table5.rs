//! Criterion bench for **Table 5**: one training epoch of every neural
//! model — the exact quantity the paper's Table 5 reports.

use criterion::{criterion_group, criterion_main, Criterion};
use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_datasets::generate;
use deepmap_gnn::common::featurize;
use deepmap_gnn::dcnn::{Dcnn, DcnnConfig};
use deepmap_gnn::dgcnn::{Dgcnn, DgcnnConfig};
use deepmap_gnn::gin::{Gin, GinConfig};
use deepmap_gnn::patchysan::{PatchySan, PatchySanConfig};
use deepmap_gnn::{fit_gnn, GnnInput, GnnTrainConfig};
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::{fit, TrainConfig};
use std::hint::black_box;

fn one_epoch(cfg_seed: u64) -> GnnTrainConfig {
    GnnTrainConfig {
        epochs: 1,
        batch_size: 32,
        learning_rate: 0.01,
        seed: cfg_seed,
    }
}

fn bench_epochs(c: &mut Criterion) {
    let ds = generate("PTC_MR", 0.08, 1).expect("registered");
    let mut group = c.benchmark_group("table5_epoch");
    group.sample_size(10);

    // DeepMap epoch.
    let pipeline = DeepMap::new(DeepMapConfig {
        max_feature_dim: Some(64),
        train: TrainConfig {
            epochs: 1,
            ..Default::default()
        },
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 3 })
    });
    let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
    group.bench_function("DEEPMAP", |b| {
        b.iter(|| {
            let mut model = pipeline.build_model(&prepared);
            black_box(fit(
                &mut model,
                &prepared.samples,
                None,
                &TrainConfig {
                    epochs: 1,
                    ..Default::default()
                },
            ))
        })
    });

    // GNN epochs.
    let (samples, m) = featurize(&ds.graphs, &ds.labels, GnnInput::OneHotLabels, 1);
    group.bench_function("GIN", |b| {
        b.iter(|| {
            let mut model = Gin::new(&GinConfig::default_for(m, ds.n_classes, 1));
            black_box(fit_gnn(&mut model, &samples, None, &one_epoch(1)))
        })
    });
    group.bench_function("DGCNN", |b| {
        b.iter(|| {
            let mut model = Dgcnn::new(&DgcnnConfig::default_for(m, ds.n_classes, 1));
            black_box(fit_gnn(&mut model, &samples, None, &one_epoch(1)))
        })
    });
    group.bench_function("DCNN", |b| {
        b.iter(|| {
            let mut model = Dcnn::new(&DcnnConfig::default_for(m, ds.n_classes, 1));
            black_box(fit_gnn(&mut model, &samples, None, &one_epoch(1)))
        })
    });
    group.bench_function("PATCHYSAN", |b| {
        b.iter(|| {
            let mut model = PatchySan::new(&PatchySanConfig::default_for(m, ds.n_classes, 14.0, 1));
            black_box(fit_gnn(&mut model, &samples, None, &one_epoch(1)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_epochs);
criterion_main!(benches);
