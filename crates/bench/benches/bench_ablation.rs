//! Ablation benches for the design choices called out in DESIGN.md §4:
//!
//! 1. Vertex ordering: eigenvector centrality vs degree vs random.
//! 2. Readout: summation vs concatenation.
//! 3. Receptive-field assembly: full BFS fill vs one-hop truncation.
//! 4. Feature truncation: full vocabulary vs top-K.

use criterion::{criterion_group, criterion_main, Criterion};
use deepmap_core::assemble::{assemble_dataset, AssembleConfig};
use deepmap_core::model::{build_deepmap_model, ModelConfig, Readout};
use deepmap_core::VertexOrdering;
use deepmap_datasets::generate;
use deepmap_kernels::{vertex_feature_maps, FeatureKind};
use deepmap_nn::layers::Mode;
use std::hint::black_box;

fn bench_orderings(c: &mut Criterion) {
    let ds = generate("PTC_MR", 0.06, 1).expect("registered");
    let features = vertex_feature_maps(&ds.graphs, FeatureKind::WlSubtree { iterations: 2 }, 1);
    let mut group = c.benchmark_group("ablation_vertex_ordering");
    for (name, ordering) in [
        ("eigenvector", VertexOrdering::EigenvectorCentrality),
        ("degree", VertexOrdering::DegreeCentrality),
        ("random", VertexOrdering::Random(3)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(assemble_dataset(
                    &ds.graphs,
                    &features,
                    &AssembleConfig {
                        r: 5,
                        ordering,
                        max_hops: None,
                        normalize: true,
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_bfs_fill(c: &mut Criterion) {
    let ds = generate("PROTEINS", 0.02, 1).expect("registered");
    let features = vertex_feature_maps(&ds.graphs, FeatureKind::WlSubtree { iterations: 2 }, 1);
    let mut group = c.benchmark_group("ablation_receptive_fill");
    for (name, hops) in [("full_bfs", None), ("one_hop", Some(1usize))] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(assemble_dataset(
                    &ds.graphs,
                    &features,
                    &AssembleConfig {
                        r: 8,
                        ordering: VertexOrdering::EigenvectorCentrality,
                        max_hops: hops,
                        normalize: true,
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_readout(c: &mut Criterion) {
    let ds = generate("PTC_MR", 0.05, 1).expect("registered");
    let features = vertex_feature_maps(&ds.graphs, FeatureKind::WlSubtree { iterations: 2 }, 1)
        .truncate_top_k(32);
    let assembled = assemble_dataset(&ds.graphs, &features, &AssembleConfig::default());
    let mut group = c.benchmark_group("ablation_readout_forward");
    for (name, readout) in [("sum", Readout::Sum), ("concat", Readout::Concat)] {
        let mut model = build_deepmap_model(&ModelConfig {
            readout,
            ..ModelConfig::paper(assembled.m, assembled.r, assembled.w, ds.n_classes, 1)
        });
        group.bench_function(name, |b| {
            b.iter(|| {
                for input in &assembled.inputs {
                    black_box(model.forward(input, Mode::Eval));
                }
            })
        });
    }
    group.finish();
}

fn bench_truncation(c: &mut Criterion) {
    let ds = generate("PTC_MR", 0.08, 1).expect("registered");
    let features = vertex_feature_maps(&ds.graphs, FeatureKind::WlSubtree { iterations: 4 }, 1);
    let mut group = c.benchmark_group("ablation_feature_truncation");
    for k in [16usize, 64, 256] {
        group.bench_function(format!("top_{k}"), |b| {
            b.iter(|| black_box(features.truncate_top_k(black_box(k))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_orderings,
    bench_bfs_fill,
    bench_readout,
    bench_truncation
);
criterion_main!(benches);
