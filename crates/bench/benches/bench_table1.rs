//! Criterion bench for **Table 1**: dataset simulation and statistics.
//!
//! Measures how long each generator family takes to synthesise a benchmark
//! and compute its Table-1 statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use deepmap_datasets::{generate, stats};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_generation");
    for name in [
        "SYNTHIE",
        "KKI",
        "BZR_MD",
        "PTC_MR",
        "PROTEINS",
        "IMDB-BINARY",
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let ds = generate(black_box(name), 0.02, 1).expect("registered");
                black_box(stats::compute(&ds))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
