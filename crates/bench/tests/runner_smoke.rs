//! Smoke tests: every experiment path runs end-to-end at micro scale.
//!
//! These keep the table/figure binaries honest — any API drift in the
//! pipeline crates breaks here instead of at experiment time.

use deepmap_bench::runner::{
    deepmap_training_curve, gnn_training_curve, kernel_training_accuracy, load_dataset,
    run_deepmap, run_dgk, run_flat_kernel, run_gnn, run_gntk, run_retgk, GnnKind,
};
use deepmap_bench::ExperimentArgs;
use deepmap_gnn::GnnInput;
use deepmap_kernels::FeatureKind;

fn micro_args() -> ExperimentArgs {
    ExperimentArgs {
        scale: 1.0,
        epochs: 2,
        folds: 2,
        seed: 1,
        datasets: None,
        max_graphs: Some(12),
        ..ExperimentArgs::default()
    }
}

#[test]
fn deepmap_cv_path() {
    let args = micro_args();
    let ds = load_dataset("PTC_MM", &args).unwrap();
    let summary = run_deepmap(&ds, FeatureKind::WlSubtree { iterations: 1 }, &args);
    assert_eq!(summary.fold_accuracies.len(), 2);
    assert!(summary.accuracy.mean >= 0.0 && summary.accuracy.mean <= 1.0);
    assert!(summary.best_epoch.is_some());
    assert!(summary.mean_epoch_seconds >= 0.0);
}

#[test]
fn flat_kernel_cv_path() {
    let args = micro_args();
    let ds = load_dataset("KKI", &args).unwrap();
    for kind in [
        FeatureKind::Graphlet {
            size: 3,
            samples: 4,
        },
        FeatureKind::ShortestPath,
        FeatureKind::WlSubtree { iterations: 1 },
    ] {
        let summary = run_flat_kernel(&ds, kind, &args);
        assert!((0.0..=1.0).contains(&summary.accuracy.mean), "{kind:?}");
    }
}

#[test]
fn baseline_kernel_paths() {
    let args = micro_args();
    let ds = load_dataset("PTC_FR", &args).unwrap();
    for summary in [
        run_dgk(&ds, &args),
        run_retgk(&ds, &args),
        run_gntk(&ds, &args),
    ] {
        assert!((0.0..=1.0).contains(&summary.accuracy.mean));
    }
}

#[test]
fn gnn_cv_paths_both_inputs() {
    let args = micro_args();
    let ds = load_dataset("PTC_MR", &args).unwrap();
    for kind in GnnKind::all() {
        let one_hot = run_gnn(&ds, kind, GnnInput::OneHotLabels, &args);
        assert!(
            (0.0..=1.0).contains(&one_hot.accuracy.mean),
            "{}",
            kind.name()
        );
        let featmaps = run_gnn(
            &ds,
            kind,
            GnnInput::VertexFeatureMaps(FeatureKind::WlSubtree { iterations: 1 }, 16),
            &args,
        );
        assert!(
            (0.0..=1.0).contains(&featmaps.accuracy.mean),
            "{}",
            kind.name()
        );
    }
}

#[test]
fn training_curve_paths() {
    let args = micro_args();
    let ds = load_dataset("PTC_FM", &args).unwrap();
    let curve = deepmap_training_curve(&ds, FeatureKind::WlSubtree { iterations: 1 }, &args);
    assert_eq!(curve.len(), 2);
    let gnn_curve = gnn_training_curve(&ds, GnnKind::Dcnn, GnnInput::OneHotLabels, &args);
    assert_eq!(gnn_curve.len(), 2);
    let flat = kernel_training_accuracy(&ds, FeatureKind::ShortestPath, &args);
    assert!((0.0..=1.0).contains(&flat));
}

#[test]
fn dataset_cap_is_applied() {
    let args = micro_args();
    let ds = load_dataset("NCI1", &args).unwrap();
    assert!(ds.len() <= 12);
    assert!(load_dataset("NOT_A_DATASET", &args).is_none());
}
