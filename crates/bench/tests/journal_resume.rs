//! Acceptance test for checkpoint/resume: a table run killed mid-experiment
//! resumes from the journal without re-running completed folds, and the
//! resumed summary is identical to an uninterrupted run.

use deepmap_bench::runner::{
    deepmap_config, load_dataset, run_deepmap_config_journaled, JournalCell,
};
use deepmap_bench::{ExperimentArgs, Journal};
use deepmap_datasets::GraphDataset;
use deepmap_eval::cv::CvSummary;
use deepmap_kernels::FeatureKind;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn micro_args() -> ExperimentArgs {
    ExperimentArgs {
        scale: 1.0,
        epochs: 2,
        folds: 2,
        seed: 1,
        datasets: None,
        max_graphs: Some(12),
        ..ExperimentArgs::default()
    }
}

fn tmp_journal(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "deepmap-resume-{}-{tag}-{n}.journal.jsonl",
        std::process::id()
    ))
}

fn journal_lines(path: &PathBuf) -> usize {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

fn run_cell(ds: &GraphDataset, args: &ExperimentArgs, journal: &Journal) -> CvSummary {
    run_deepmap_config_journaled(
        ds,
        deepmap_config(FeatureKind::WlSubtree { iterations: 1 }, args),
        args,
        Some(JournalCell {
            journal,
            dataset: "PTC_MM",
            method: "DEEPMAP-WL",
        }),
    )
}

#[test]
fn completed_run_resumes_without_retraining() {
    let args = micro_args();
    let path = tmp_journal("full");
    let ds = load_dataset("PTC_MM", &args).unwrap();

    let journal = Journal::open(&path, false).unwrap();
    let fresh = run_cell(&ds, &args, &journal);
    drop(journal);
    assert_eq!(fresh.folds_completed(), args.folds);
    assert_eq!(journal_lines(&path), args.folds);

    // Re-run with --resume semantics: every fold comes from the journal,
    // so no new record is appended and the summary is unchanged.
    let journal = Journal::open(&path, true).unwrap();
    assert_eq!(journal.n_loaded(), args.folds);
    let resumed = run_cell(&ds, &args, &journal);
    drop(journal);
    assert_eq!(journal_lines(&path), args.folds);
    assert_eq!(resumed.fold_accuracies, fresh.fold_accuracies);
    assert_eq!(resumed.best_epoch, fresh.best_epoch);
    assert!(resumed.is_complete());
    std::fs::remove_file(&path).ok();
}

#[test]
fn killed_run_resumes_only_missing_folds() {
    let args = micro_args();
    let path = tmp_journal("killed");
    let ds = load_dataset("PTC_MM", &args).unwrap();

    let journal = Journal::open(&path, false).unwrap();
    let baseline = run_cell(&ds, &args, &journal);
    drop(journal);

    // Simulate a kill after one fold: keep only the first journal line.
    let text = std::fs::read_to_string(&path).unwrap();
    let first_line = text.lines().next().unwrap().to_string();
    std::fs::write(&path, format!("{first_line}\n")).unwrap();

    let journal = Journal::open(&path, true).unwrap();
    assert_eq!(journal.n_loaded(), 1);
    let resumed = run_cell(&ds, &args, &journal);
    drop(journal);

    // Exactly the missing fold was retrained and appended; fold
    // determinism makes the stitched summary identical to the baseline.
    assert_eq!(journal_lines(&path), args.folds);
    assert_eq!(resumed.fold_accuracies, baseline.fold_accuracies);
    assert_eq!(resumed.best_epoch, baseline.best_epoch);
    std::fs::remove_file(&path).ok();
}
