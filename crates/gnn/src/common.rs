//! Shared GNN infrastructure: featurisation, samples, and the training
//! loop.

use deepmap_graph::{FxHashMap, Graph};
use deepmap_kernels::{vertex_feature_maps, FeatureKind};
use deepmap_nn::layers::Param;
use deepmap_nn::loss::{predict_class, softmax_cross_entropy};
use deepmap_nn::matrix::Matrix;
use deepmap_nn::optim::{PlateauScheduler, RmsProp};
use deepmap_nn::train::EpochStats;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// What the GNNs consume as node features.
#[derive(Debug, Clone, Copy)]
pub enum GnnInput {
    /// One-hot encodings of vertex labels (the GNNs' native protocol,
    /// paper §2.2: "The inputs to DGCNN and GIN are the one-hot encodings
    /// of vertex labels").
    OneHotLabels,
    /// DeepMap's vertex feature maps (the Table-4 experiment), truncated to
    /// at most the given dimension.
    VertexFeatureMaps(
        /// Substructure family.
        FeatureKind,
        /// Top-K feature-dimension cap.
        usize,
    ),
}

/// One graph ready for GNN consumption.
#[derive(Debug, Clone)]
pub struct GraphSample {
    /// Node features, `(n × m)`.
    pub features: Matrix,
    /// The graph itself (models derive their own propagation operators).
    pub graph: Graph,
    /// Class index.
    pub label: usize,
}

/// Builds dense node-feature matrices for a dataset.
///
/// Returns the samples plus the feature dimension `m` (shared across the
/// dataset). Empty graphs yield `(0 × m)` matrices, which the models guard
/// against.
pub fn featurize(
    graphs: &[Graph],
    labels: &[usize],
    input: GnnInput,
    seed: u64,
) -> (Vec<GraphSample>, usize) {
    assert_eq!(graphs.len(), labels.len());
    match input {
        GnnInput::OneHotLabels => {
            let mut index: FxHashMap<u32, usize> = FxHashMap::default();
            for g in graphs {
                for &l in g.labels() {
                    let next = index.len();
                    index.entry(l).or_insert(next);
                }
            }
            let m = index.len().max(1);
            let samples = graphs
                .iter()
                .zip(labels)
                .map(|(g, &label)| {
                    let mut features = Matrix::zeros(g.n_vertices(), m);
                    for v in g.vertices() {
                        let col = index[&g.label(v)];
                        features.set(v as usize, col, 1.0);
                    }
                    GraphSample {
                        features,
                        graph: g.clone(),
                        label,
                    }
                })
                .collect();
            (samples, m)
        }
        GnnInput::VertexFeatureMaps(kind, cap) => {
            let maps = vertex_feature_maps(graphs, kind, seed).truncate_top_k(cap);
            let m = maps.dim.max(1);
            let samples = graphs
                .iter()
                .zip(labels)
                .zip(&maps.maps)
                .map(|((g, &label), vmaps)| {
                    let mut features = Matrix::zeros(g.n_vertices(), m);
                    for (v, vec) in vmaps.iter().enumerate() {
                        vec.write_dense(features.row_mut(v));
                    }
                    GraphSample {
                        features,
                        graph: g.clone(),
                        label,
                    }
                })
                .collect();
            (samples, m)
        }
    }
}

/// A trainable graph classifier (the four baselines implement this).
pub trait GraphClassifier {
    /// Forward + backward on one sample; accumulates parameter gradients
    /// and returns the loss.
    fn train_step(&mut self, sample: &GraphSample) -> f32;

    /// Inference on one sample.
    fn predict(&mut self, sample: &GraphSample) -> usize;

    /// All parameters in a stable order.
    fn params(&mut self) -> Vec<Param<'_>>;

    /// Clears gradient accumulators.
    fn zero_grad(&mut self);
}

/// Training hyper-parameters for the GNN loop (same defaults as DeepMap's:
/// RMSProp 0.01, plateau decay, batch 32).
#[derive(Debug, Clone, Copy)]
pub struct GnnTrainConfig {
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for GnnTrainConfig {
    fn default() -> Self {
        GnnTrainConfig {
            epochs: 50,
            batch_size: 32,
            learning_rate: 0.01,
            seed: 0,
        }
    }
}

/// Accuracy of `model` on `samples`.
///
/// Returns `None` for an empty slice — an empty fold is "no measurement",
/// not 0% accuracy.
pub fn evaluate_gnn(model: &mut dyn GraphClassifier, samples: &[GraphSample]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let correct = samples
        .iter()
        .filter(|s| model.predict(s) == s.label)
        .count();
    Some(correct as f64 / samples.len() as f64)
}

/// The shared mini-batch training loop (mirrors `deepmap_nn::train::fit`).
pub fn fit_gnn(
    model: &mut dyn GraphClassifier,
    train: &[GraphSample],
    eval: Option<&[GraphSample]>,
    config: &GnnTrainConfig,
) -> Vec<EpochStats> {
    assert!(!train.is_empty(), "training set must be non-empty");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut optimizer = RmsProp::new(config.learning_rate);
    let mut scheduler = PlateauScheduler::paper_default();
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let start = Instant::now();
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f64;
        for batch in order.chunks(config.batch_size.max(1)) {
            model.zero_grad();
            for &i in batch {
                total_loss += model.train_step(&train[i]) as f64;
            }
            let scale = 1.0 / batch.len() as f32;
            for p in model.params() {
                for g in p.grad.iter_mut() {
                    *g *= scale;
                }
            }
            optimizer.step(&mut model.params());
        }
        let epoch_seconds = start.elapsed().as_secs_f64();
        let mean_loss = (total_loss / train.len() as f64) as f32;
        scheduler.observe(mean_loss, &mut optimizer);
        let train_accuracy = evaluate_gnn(model, train).expect("train set is non-empty");
        let eval_accuracy = eval.and_then(|e| evaluate_gnn(model, e));
        history.push(EpochStats {
            epoch,
            loss: mean_loss,
            train_accuracy,
            eval_accuracy,
            epoch_seconds,
            learning_rate: optimizer.learning_rate(),
        });
    }
    history
}

/// Fused softmax/cross-entropy helper for model implementations: returns
/// `(loss, grad_logits)`.
pub fn loss_and_grad(logits: &Matrix, target: usize) -> (f32, Matrix) {
    softmax_cross_entropy(logits, target)
}

/// Argmax prediction helper.
pub fn logits_to_class(logits: &Matrix) -> usize {
    predict_class(logits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;

    fn toy_graphs() -> (Vec<Graph>, Vec<usize>) {
        (
            vec![
                graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[1, 2, 1])).unwrap(),
                graph_from_edges(2, &[(0, 1)], Some(&[2, 3])).unwrap(),
            ],
            vec![0, 1],
        )
    }

    #[test]
    fn one_hot_features_shared_index() {
        let (graphs, labels) = toy_graphs();
        let (samples, m) = featurize(&graphs, &labels, GnnInput::OneHotLabels, 0);
        assert_eq!(m, 3, "labels {{1,2,3}}");
        assert_eq!(samples[0].features.shape(), (3, 3));
        // Each row one-hot.
        for s in &samples {
            for r in 0..s.features.rows() {
                let sum: f32 = s.features.row(r).iter().sum();
                assert_eq!(sum, 1.0);
            }
        }
        // Label 2 maps to the same column in both graphs.
        let col_in_g0 = samples[0].features.row(1).iter().position(|&v| v == 1.0);
        let col_in_g1 = samples[1].features.row(0).iter().position(|&v| v == 1.0);
        assert_eq!(col_in_g0, col_in_g1);
    }

    #[test]
    fn feature_map_input_capped() {
        let (graphs, labels) = toy_graphs();
        let (samples, m) = featurize(
            &graphs,
            &labels,
            GnnInput::VertexFeatureMaps(FeatureKind::WlSubtree { iterations: 2 }, 4),
            0,
        );
        assert!(m <= 4);
        assert_eq!(samples[0].features.cols(), m);
        // WL maps are non-empty.
        assert!(samples[0].features.as_slice().iter().any(|&v| v != 0.0));
    }
}
