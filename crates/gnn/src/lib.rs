//! Baseline graph neural networks for the DeepMap reproduction.
//!
//! The paper compares DeepMap against four GNNs (§5.1) and additionally
//! feeds them DeepMap's vertex feature maps (Table 4). All four are built
//! on the `deepmap-nn` substrate with exact hand-derived gradients:
//!
//! - [`gin`] — Graph Isomorphism Network (Xu et al. 2019): sum aggregation
//!   `(1+ε)h_v + Σ_u h_u` followed by an MLP per layer, sum readout.
//! - [`dgcnn`] — Deep Graph CNN (Zhang et al. 2018): stacked propagation
//!   layers, channel concatenation, SortPooling to a fixed `k`, then a
//!   convolutional head.
//! - [`dcnn`] — Diffusion-Convolutional NN (Atwood & Towsley 2016):
//!   mean-pooled diffusion features `P^j X` for `j < H` hops feeding a
//!   dense classifier.
//! - [`patchysan`] — PATCHY-SAN (Niepert et al. 2016): fixed-length vertex
//!   selection, neighbourhood assembly and normalisation, then a CNN. Our
//!   vertex ordering uses eigenvector centrality in place of NAUTY — the
//!   substitution the paper itself argues for in §6.
//!
//! [`common`] holds the shared sample representation, input featurisation
//! (one-hot labels vs. DeepMap vertex feature maps), and the training loop.
//! Documented simplifications vs. the original architectures are listed in
//! DESIGN.md §1 and in each module's docs.

#![deny(missing_docs)]

pub mod common;
pub mod dcnn;
pub mod dgcnn;
pub mod gin;
pub mod patchysan;

pub use common::{fit_gnn, GnnInput, GnnTrainConfig, GraphClassifier, GraphSample};
