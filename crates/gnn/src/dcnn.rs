//! Diffusion-Convolutional Neural Network (DCNN, Atwood & Towsley 2016).
//!
//! DCNN's graph-classification variant activates `Z = tanh(W ⊙ P* X)` where
//! `P* X` stacks the diffusion features `P^j X` (`P = D⁻¹A`, hop
//! `j = 0..H-1`) averaged over vertices, and reads `Z` with a single dense
//! softmax layer. We keep exactly that capacity — `tanh` of the diffusion
//! features followed by a single `Dense(H·m → classes)` read (the dense
//! layer subsumes the original's elementwise weight `W`) — which is why
//! DCNN is the weakest baseline in the paper's Table 3. The diffusion
//! tensor is parameterless and cheap, which is also why DCNN epochs are
//! fast in Table 5.

use crate::common::{logits_to_class, loss_and_grad, GraphClassifier, GraphSample};
use deepmap_nn::layers::{Dense, Layer, Mode, Param, Tanh};
use deepmap_nn::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DCNN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DcnnConfig {
    /// Diffusion hops `H` (including hop 0 = the raw features).
    pub hops: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Input feature dimension `m`.
    pub input_dim: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl DcnnConfig {
    /// The original's H = 3 hops.
    pub fn default_for(input_dim: usize, n_classes: usize, seed: u64) -> Self {
        DcnnConfig {
            hops: 3,
            n_classes,
            input_dim,
            seed,
        }
    }
}

/// The DCNN classifier.
pub struct Dcnn {
    hops: usize,
    activation: Tanh,
    read: Dense,
}

impl Dcnn {
    /// Builds a DCNN from its configuration.
    pub fn new(config: &DcnnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        Dcnn {
            hops: config.hops,
            activation: Tanh::new(),
            read: Dense::new(config.hops * config.input_dim, config.n_classes, &mut rng),
        }
    }

    /// The mean-pooled diffusion representation: a `1 × (H·m)` row stacking
    /// `mean_v [P^j X]_v` for `j = 0..H-1`.
    pub fn diffusion_features(&self, sample: &GraphSample) -> Matrix {
        let n = sample.features.rows();
        let m = sample.features.cols();
        let mut out = Matrix::zeros(1, self.hops * m);
        if n == 0 {
            return out;
        }
        // Column-wise diffusion: x_c holds P^j applied to feature column c.
        let mut columns: Vec<Vec<f64>> = (0..m)
            .map(|c| (0..n).map(|v| sample.features.get(v, c) as f64).collect())
            .collect();
        for hop in 0..self.hops {
            for (c, col) in columns.iter_mut().enumerate() {
                let mean = col.iter().sum::<f64>() / n as f64;
                out.set(0, hop * m + c, mean as f32);
                if hop + 1 < self.hops {
                    *col = sample.graph.transition_apply(col);
                }
            }
        }
        out
    }

    fn forward(&mut self, sample: &GraphSample, mode: Mode) -> Matrix {
        let feats = self.diffusion_features(sample);
        self.read
            .forward(&self.activation.forward(&feats, mode), mode)
    }
}

impl GraphClassifier for Dcnn {
    fn train_step(&mut self, sample: &GraphSample) -> f32 {
        let logits = self.forward(sample, Mode::Train);
        let (loss, grad) = loss_and_grad(&logits, sample.label);
        // Diffusion features are constant in the parameters, so the chain
        // stops after the dense read layer.
        self.read.backward(&grad);
        loss
    }

    fn predict(&mut self, sample: &GraphSample) -> usize {
        let logits = self.forward(sample, Mode::Eval);
        logits_to_class(&logits)
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        self.read.params()
    }

    fn zero_grad(&mut self) {
        self.read.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{featurize, fit_gnn, GnnInput, GnnTrainConfig};
    use deepmap_graph::generators::{complete_graph, cycle_graph};
    use deepmap_graph::Graph;

    fn degree_labeled(g: Graph) -> Graph {
        let labels: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        g.with_labels(labels).unwrap()
    }

    fn toy_dataset() -> (Vec<Graph>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(6);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            graphs.push(degree_labeled(cycle_graph(5 + i % 3, 0, &mut rng)));
            labels.push(0);
            graphs.push(degree_labeled(complete_graph(4 + i % 3, 0, &mut rng)));
            labels.push(1);
        }
        (graphs, labels)
    }

    #[test]
    fn diffusion_features_shape_and_hop0() {
        let (graphs, labels) = toy_dataset();
        let (samples, m) = featurize(&graphs, &labels, GnnInput::OneHotLabels, 0);
        let dcnn = Dcnn::new(&DcnnConfig::default_for(m, 2, 1));
        let f = dcnn.diffusion_features(&samples[0]);
        assert_eq!(f.shape(), (1, 3 * m));
        // Hop 0 equals the column means of the raw features.
        let n = samples[0].features.rows();
        for c in 0..m {
            let mean: f32 = (0..n).map(|v| samples[0].features.get(v, c)).sum::<f32>() / n as f32;
            assert!((f.get(0, c) - mean).abs() < 1e-6);
        }
    }

    #[test]
    fn diffusion_preserves_total_mass_on_regular_graphs() {
        let (graphs, labels) = toy_dataset();
        let (samples, m) = featurize(&graphs, &labels, GnnInput::OneHotLabels, 0);
        let dcnn = Dcnn::new(&DcnnConfig::default_for(m, 2, 1));
        // Cycles are 2-regular: the transition operator preserves column
        // sums, so each hop's block has the same total as hop 0.
        let f = dcnn.diffusion_features(&samples[0]);
        let block = |h: usize| -> f32 { (0..m).map(|c| f.get(0, h * m + c)).sum() };
        assert!((block(0) - block(1)).abs() < 1e-5);
        assert!((block(0) - block(2)).abs() < 1e-5);
    }

    #[test]
    fn learns_cycles_vs_cliques() {
        let (graphs, labels) = toy_dataset();
        let (samples, m) = featurize(&graphs, &labels, GnnInput::OneHotLabels, 0);
        let mut dcnn = Dcnn::new(&DcnnConfig::default_for(m, 2, 2));
        let history = fit_gnn(
            &mut dcnn,
            &samples,
            None,
            &GnnTrainConfig {
                epochs: 25,
                batch_size: 8,
                ..Default::default()
            },
        );
        let last = history.last().unwrap();
        assert!(
            last.train_accuracy > 0.9,
            "accuracy {}",
            last.train_accuracy
        );
    }

    #[test]
    fn empty_graph_ok() {
        let g = deepmap_graph::builder::graph_from_edges(0, &[], None).unwrap();
        let (samples, m) = featurize(&[g], &[0], GnnInput::OneHotLabels, 0);
        let mut dcnn = Dcnn::new(&DcnnConfig::default_for(m, 2, 1));
        let _ = dcnn.train_step(&samples[0]);
        let _ = dcnn.predict(&samples[0]);
    }
}
