//! Graph Isomorphism Network (GIN, Xu et al. 2019).
//!
//! Layer `l`: `h'_v = MLP_l((1+ε)·h_v + Σ_{u∈N(v)} h_u)` with a two-layer
//! ReLU MLP; graph readout is the sum of the final layer's vertex
//! embeddings followed by a dense classifier. We fix `ε = 0` (GIN-0, the
//! variant the paper's numbers use) and two MLP layers per block — the
//! original's five-layer/MLP configuration is why GIN is the slowest GNN in
//! the paper's Table 5; our ablation keeps the architecture but not the
//! width.

use crate::common::{logits_to_class, loss_and_grad, GraphClassifier, GraphSample};
use deepmap_graph::Graph;
use deepmap_nn::layers::{Dense, Layer, Mode, Param, ReLU};
use deepmap_nn::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GIN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GinConfig {
    /// Number of GIN blocks (aggregation + MLP).
    pub layers: usize,
    /// Hidden width of every MLP.
    pub hidden: usize,
    /// The ε in `(1+ε)h_v`; GIN-0 fixes it to 0.
    pub eps: f32,
    /// Number of classes.
    pub n_classes: usize,
    /// Input feature dimension.
    pub input_dim: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl GinConfig {
    /// GIN-0 with 3 blocks of width 32.
    pub fn default_for(input_dim: usize, n_classes: usize, seed: u64) -> Self {
        GinConfig {
            layers: 3,
            hidden: 32,
            eps: 0.0,
            n_classes,
            input_dim,
            seed,
        }
    }
}

struct GinBlock {
    d1: Dense,
    r1: ReLU,
    d2: Dense,
    r2: ReLU,
}

/// The GIN classifier.
pub struct Gin {
    blocks: Vec<GinBlock>,
    head: Dense,
    eps: f32,
    /// Pre-MLP inputs cached per block for the aggregation backward.
    cached_graph: Option<Graph>,
}

impl Gin {
    /// Builds a GIN from its configuration.
    pub fn new(config: &GinConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut blocks = Vec::with_capacity(config.layers);
        let mut in_dim = config.input_dim;
        for _ in 0..config.layers {
            blocks.push(GinBlock {
                d1: Dense::new(in_dim, config.hidden, &mut rng),
                r1: ReLU::new(),
                d2: Dense::new(config.hidden, config.hidden, &mut rng),
                r2: ReLU::new(),
            });
            in_dim = config.hidden;
        }
        Gin {
            blocks,
            head: Dense::new(in_dim, config.n_classes, &mut rng),
            eps: config.eps,
            cached_graph: None,
        }
    }

    /// `(1+ε)h_v + Σ_{u∈N(v)} h_u`; self-adjoint, so the same routine
    /// serves forward and backward.
    fn aggregate(&self, graph: &Graph, h: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(h.rows(), h.cols());
        for v in graph.vertices() {
            let vi = v as usize;
            // (1+ε) h_v
            let hv: Vec<f32> = h.row(vi).iter().map(|&x| (1.0 + self.eps) * x).collect();
            out.row_mut(vi).copy_from_slice(&hv);
            for &u in graph.neighbors(v) {
                let src = h.row(u as usize).to_vec();
                let dst = out.row_mut(vi);
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
        }
        out
    }

    fn forward(&mut self, sample: &GraphSample, mode: Mode) -> Matrix {
        let n = sample.features.rows();
        // Empty graphs degrade to a single zero-feature vertex so shapes
        // stay valid.
        let mut h = if n == 0 {
            Matrix::zeros(1, sample.features.cols())
        } else {
            sample.features.clone()
        };
        // Borrow-friendly split: aggregation needs `&self`, blocks need
        // `&mut`; compute the aggregate before entering the block.
        for i in 0..self.blocks.len() {
            let agg = if n == 0 {
                h.clone()
            } else {
                self.aggregate(&sample.graph, &h)
            };
            let block = &mut self.blocks[i];
            h = block.r2.forward(
                &block
                    .d2
                    .forward(&block.r1.forward(&block.d1.forward(&agg, mode), mode), mode),
                mode,
            );
        }
        if mode == Mode::Train {
            self.cached_graph = Some(sample.graph.clone());
        }
        let pooled = h.sum_rows();
        self.head.forward(&pooled, mode)
    }

    fn backward(&mut self, grad_logits: &Matrix, n_vertices: usize) {
        let d_pooled = self.head.backward(grad_logits);
        // SumPool backward: broadcast to every vertex row.
        let rows = n_vertices.max(1);
        let mut grad = Matrix::zeros(rows, d_pooled.cols());
        for r in 0..rows {
            grad.row_mut(r).copy_from_slice(d_pooled.row(0));
        }
        let graph = self.cached_graph.take().expect("train forward first");
        for l in (0..self.blocks.len()).rev() {
            let block = &mut self.blocks[l];
            let d_agg = block.d1.backward(
                &block
                    .r1
                    .backward(&block.d2.backward(&block.r2.backward(&grad))),
            );
            grad = if n_vertices == 0 {
                d_agg
            } else {
                // Aggregation is self-adjoint ((1+ε)I + A is symmetric).
                self.aggregate(&graph, &d_agg)
            };
        }
    }
}

impl GraphClassifier for Gin {
    fn train_step(&mut self, sample: &GraphSample) -> f32 {
        let logits = self.forward(sample, Mode::Train);
        let (loss, grad) = loss_and_grad(&logits, sample.label);
        self.backward(&grad, sample.features.rows());
        loss
    }

    fn predict(&mut self, sample: &GraphSample) -> usize {
        let logits = self.forward(sample, Mode::Eval);
        logits_to_class(&logits)
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        let mut out = Vec::new();
        for b in &mut self.blocks {
            out.extend(b.d1.params());
            out.extend(b.d2.params());
        }
        out.extend(self.head.params());
        out
    }

    fn zero_grad(&mut self) {
        for b in &mut self.blocks {
            b.d1.zero_grad();
            b.d2.zero_grad();
        }
        self.head.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{featurize, fit_gnn, GnnInput, GnnTrainConfig};
    use deepmap_graph::generators::{complete_graph, cycle_graph};
    use deepmap_graph::Graph;

    fn degree_labeled(g: Graph) -> Graph {
        let labels: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        g.with_labels(labels).unwrap()
    }

    fn toy_dataset() -> (Vec<Graph>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            graphs.push(degree_labeled(cycle_graph(5 + i % 3, 0, &mut rng)));
            labels.push(0);
            graphs.push(degree_labeled(complete_graph(4 + i % 3, 0, &mut rng)));
            labels.push(1);
        }
        (graphs, labels)
    }

    #[test]
    fn learns_cycles_vs_cliques() {
        let (graphs, labels) = toy_dataset();
        let (samples, m) = featurize(&graphs, &labels, GnnInput::OneHotLabels, 0);
        let mut gin = Gin::new(&GinConfig::default_for(m, 2, 1));
        let history = fit_gnn(
            &mut gin,
            &samples,
            None,
            &GnnTrainConfig {
                epochs: 20,
                batch_size: 8,
                ..Default::default()
            },
        );
        let last = history.last().unwrap();
        assert!(
            last.train_accuracy > 0.9,
            "accuracy {}",
            last.train_accuracy
        );
    }

    #[test]
    fn aggregation_is_permutation_equivariant() {
        let (graphs, labels) = toy_dataset();
        let (samples, m) = featurize(&graphs[..1], &labels[..1], GnnInput::OneHotLabels, 0);
        let gin = Gin::new(&GinConfig::default_for(m, 2, 1));
        let h = samples[0].features.clone();
        let agg = gin.aggregate(&samples[0].graph, &h);
        // Each row = (1+0)·own + sum of neighbours; on a cycle with one-hot
        // degree labels every vertex has the same feature, so every
        // aggregated row equals 3× that feature.
        for r in 0..agg.rows() {
            for c in 0..agg.cols() {
                assert!((agg.get(r, c) - 3.0 * h.get(r, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gradient_check_on_tiny_gin() {
        // Finite-difference check of a couple of weights end-to-end.
        let (graphs, labels) = toy_dataset();
        let (samples, m) = featurize(&graphs, &labels, GnnInput::OneHotLabels, 0);
        let mut gin = Gin::new(&GinConfig {
            layers: 2,
            hidden: 6,
            eps: 0.0,
            n_classes: 2,
            input_dim: m,
            seed: 3,
        });
        let sample = &samples[0];
        // Jitter every parameter off its initial value: zero-initialised
        // biases put ReLU pre-activations exactly on the kink, where the
        // derivative is undefined and finite differences measure the
        // one-sided slope.
        {
            use rand::Rng;
            let mut jitter = StdRng::seed_from_u64(77);
            for p in gin.params() {
                for w in p.value.iter_mut() {
                    *w += jitter.gen_range(0.01..0.03)
                        * if jitter.gen_bool(0.5) { 1.0 } else { -1.0 };
                }
            }
        }
        gin.zero_grad();
        let logits = gin.forward(sample, Mode::Train);
        let (_, grad) = loss_and_grad(&logits, sample.label);
        gin.backward(&grad, sample.features.rows());
        let analytic: Vec<f32> = gin.params().iter().map(|p| p.grad[0]).collect();
        // Central differences at two step sizes: if the two estimates
        // disagree, the probe straddles a ReLU kink (biases start exactly
        // at 0, a kink hotspot) and the comparison is skipped — the loss is
        // only piecewise smooth there, so finite differences are undefined.
        let numeric_at = |gin: &mut Gin, t: usize, eps: f32| -> f32 {
            let orig = {
                let mut ps = gin.params();
                let v = ps[t].value[0];
                ps[t].value[0] = v + eps;
                v
            };
            let lp = {
                let logits = gin.forward(sample, Mode::Train);
                loss_and_grad(&logits, sample.label).0
            };
            {
                let mut ps = gin.params();
                ps[t].value[0] = orig - eps;
            }
            let lm = {
                let logits = gin.forward(sample, Mode::Train);
                loss_and_grad(&logits, sample.label).0
            };
            {
                let mut ps = gin.params();
                ps[t].value[0] = orig;
            }
            (lp - lm) / (2.0 * eps)
        };
        let mut checked = 0;
        #[allow(clippy::needless_range_loop)] // t also indexes the params
        for t in 0..analytic.len() {
            let coarse = numeric_at(&mut gin, t, 1e-2);
            let fine = numeric_at(&mut gin, t, 2.5e-3);
            let spread = (coarse - fine).abs();
            if spread > 1e-3 * coarse.abs().max(fine.abs()).max(1.0) {
                continue; // kink straddled; derivative ill-defined here
            }
            let denom = analytic[t].abs().max(fine.abs()).max(1.0);
            assert!(
                (analytic[t] - fine).abs() / denom < 2e-2,
                "tensor {t}: {} vs {}",
                analytic[t],
                fine
            );
            checked += 1;
        }
        assert!(
            checked >= analytic.len() / 2,
            "too many kink skips: {checked}"
        );
    }

    #[test]
    fn empty_graph_does_not_crash() {
        let g = deepmap_graph::builder::graph_from_edges(0, &[], None).unwrap();
        let (samples, m) = featurize(&[g], &[0], GnnInput::OneHotLabels, 0);
        let mut gin = Gin::new(&GinConfig::default_for(m, 2, 1));
        let _ = gin.train_step(&samples[0]);
        let _ = gin.predict(&samples[0]);
    }
}
