//! Deep Graph CNN (DGCNN, Zhang et al. 2018).
//!
//! DGCNN stacks graph-convolution layers `Z_{t+1} = f(D̃⁻¹ Ã Z_t W_t)`
//! (Ã = A + I), concatenates all layers' outputs per vertex, sorts vertices
//! with **SortPooling** (by the last channel of the final layer, keeping a
//! fixed `k`), and reads the sorted `k × C` tensor with a small
//! convolutional head.
//!
//! Simplifications (documented in DESIGN.md): the propagation layers keep
//! the original's tanh activation, while the head is `Conv1×1(16) → ReLU →
//! Flatten → Dense(128) → ReLU → Dropout → Dense` rather than the
//! original's two 1-D convs with max-pooling — same depth class, fewer
//! shape special-cases. The sort permutation is treated as a constant
//! during backprop, as in the original.

use crate::common::{logits_to_class, loss_and_grad, GraphClassifier, GraphSample};
use deepmap_graph::Graph;
use deepmap_nn::layers::{Conv1D, Dense, Dropout, Flatten, Layer, Mode, Param, ReLU, Tanh};
use deepmap_nn::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DGCNN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DgcnnConfig {
    /// Widths of the graph-convolution layers.
    pub conv_widths: [usize; 3],
    /// SortPooling output size `k`.
    pub k: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Input feature dimension `m`.
    pub input_dim: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl DgcnnConfig {
    /// The original's 32-wide stacks with `k = 10`.
    pub fn default_for(input_dim: usize, n_classes: usize, seed: u64) -> Self {
        DgcnnConfig {
            conv_widths: [32, 32, 32],
            k: 10,
            n_classes,
            input_dim,
            seed,
        }
    }
}

struct GraphConvLayer {
    dense: Dense,
    activation: Tanh,
}

/// The DGCNN classifier.
pub struct Dgcnn {
    layers: Vec<GraphConvLayer>,
    k: usize,
    head_conv: Conv1D,
    head_relu1: ReLU,
    head_flatten: Flatten,
    head_d1: Dense,
    head_relu2: ReLU,
    head_dropout: Dropout,
    head_d2: Dense,
    /// Caches from the last Train forward, for backward.
    cache: Option<ForwardCache>,
}

struct ForwardCache {
    graph: Graph,
    /// Sorted-row source indices: `perm[i]` = vertex row placed at sorted
    /// position `i` (`usize::MAX` = zero padding).
    perm: Vec<usize>,
    /// Layer widths (column split points of the concatenation).
    widths: Vec<usize>,
    n_vertices: usize,
}

/// `D̃⁻¹ Ã x` applied column-wise: `out[v] = (x[v] + Σ_{u∈N(v)} x[u]) / (deg(v)+1)`.
fn propagate(graph: &Graph, x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for v in graph.vertices() {
        let vi = v as usize;
        let mut acc: Vec<f32> = x.row(vi).to_vec();
        for &u in graph.neighbors(v) {
            for (a, &s) in acc.iter_mut().zip(x.row(u as usize)) {
                *a += s;
            }
        }
        let scale = 1.0 / (graph.degree(v) + 1) as f32;
        for (o, a) in out.row_mut(vi).iter_mut().zip(acc) {
            *o = a * scale;
        }
    }
    out
}

/// `(D̃⁻¹ Ã)ᵀ g`: `out[u] = Σ_{v ∈ N(u)∪{u}} g[v] / (deg(v)+1)`.
fn propagate_transpose(graph: &Graph, g: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(g.rows(), g.cols());
    for v in graph.vertices() {
        let vi = v as usize;
        let scale = 1.0 / (graph.degree(v) + 1) as f32;
        let scaled: Vec<f32> = g.row(vi).iter().map(|&x| x * scale).collect();
        // v contributes to itself and to each neighbour u.
        for (o, &s) in out.row_mut(vi).iter_mut().zip(&scaled) {
            *o += s;
        }
        for &u in graph.neighbors(v) {
            for (o, &s) in out.row_mut(u as usize).iter_mut().zip(&scaled) {
                *o += s;
            }
        }
    }
    out
}

impl Dgcnn {
    /// Builds a DGCNN from its configuration.
    pub fn new(config: &DgcnnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::new();
        let mut in_dim = config.input_dim;
        for &w in &config.conv_widths {
            layers.push(GraphConvLayer {
                dense: Dense::new(in_dim, w, &mut rng),
                activation: Tanh::new(),
            });
            in_dim = w;
        }
        let total: usize = config.conv_widths.iter().sum();
        Dgcnn {
            layers,
            k: config.k,
            head_conv: Conv1D::new(total, 16, 1, 1, &mut rng),
            head_relu1: ReLU::new(),
            head_flatten: Flatten::new(),
            head_d1: Dense::new(config.k * 16, 128, &mut rng),
            head_relu2: ReLU::new(),
            head_dropout: Dropout::new(0.5, config.seed ^ 0xd6c),
            head_d2: Dense::new(128, config.n_classes, &mut rng),
            cache: None,
        }
    }

    fn forward(&mut self, sample: &GraphSample, mode: Mode) -> Matrix {
        let n = sample.features.rows();
        let mut h = sample.features.clone();
        let mut zs: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        for layer in &mut self.layers {
            let t = if n == 0 {
                h.clone()
            } else {
                propagate(&sample.graph, &h)
            };
            h = layer
                .activation
                .forward(&layer.dense.forward(&t, mode), mode);
            zs.push(h.clone());
        }
        // Concatenate layer outputs per vertex.
        let widths: Vec<usize> = zs.iter().map(|z| z.cols()).collect();
        let total: usize = widths.iter().sum();
        let mut concat = Matrix::zeros(n, total);
        for v in 0..n {
            let mut off = 0;
            for z in &zs {
                concat.row_mut(v)[off..off + z.cols()].copy_from_slice(z.row(v));
                off += z.cols();
            }
        }
        // SortPooling: order by the last channel of the final layer,
        // descending, ties by vertex id; keep k rows (zero-pad if short).
        let sort_col = total.saturating_sub(1);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            concat
                .get(b, sort_col)
                .partial_cmp(&concat.get(a, sort_col))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        let mut perm = vec![usize::MAX; self.k];
        let mut sorted = Matrix::zeros(self.k, total);
        for i in 0..self.k.min(n) {
            perm[i] = order[i];
            sorted.row_mut(i).copy_from_slice(concat.row(order[i]));
        }
        if mode == Mode::Train {
            self.cache = Some(ForwardCache {
                graph: sample.graph.clone(),
                perm,
                widths,
                n_vertices: n,
            });
        }
        // Convolutional head.
        let x = self.head_conv.forward(&sorted, mode);
        let x = self.head_relu1.forward(&x, mode);
        let x = self.head_flatten.forward(&x, mode);
        let x = self.head_d1.forward(&x, mode);
        let x = self.head_relu2.forward(&x, mode);
        let x = self.head_dropout.forward(&x, mode);
        self.head_d2.forward(&x, mode)
    }

    fn backward(&mut self, grad_logits: &Matrix) {
        let cache = self.cache.take().expect("train forward first");
        let g = self.head_d2.backward(grad_logits);
        let g = self.head_dropout.backward(&g);
        let g = self.head_relu2.backward(&g);
        let g = self.head_d1.backward(&g);
        let g = self.head_flatten.backward(&g);
        let g = self.head_relu1.backward(&g);
        let d_sorted = self.head_conv.backward(&g);
        // Un-sort: scatter sorted-row gradients back to vertex rows.
        let total: usize = cache.widths.iter().sum();
        let mut d_concat = Matrix::zeros(cache.n_vertices, total);
        for (i, &src) in cache.perm.iter().enumerate() {
            if src != usize::MAX {
                d_concat.row_mut(src).copy_from_slice(d_sorted.row(i));
            }
        }
        // Split the concatenation and run the layer stack backwards. The
        // output of layer l feeds both the concat (d_zs[l]) and layer l+1.
        let mut col_offsets = Vec::with_capacity(cache.widths.len());
        let mut off = 0;
        for &w in &cache.widths {
            col_offsets.push(off);
            off += w;
        }
        let slice_grad = |l: usize| -> Matrix {
            let mut m = Matrix::zeros(cache.n_vertices, cache.widths[l]);
            for v in 0..cache.n_vertices {
                m.row_mut(v).copy_from_slice(
                    &d_concat.row(v)[col_offsets[l]..col_offsets[l] + cache.widths[l]],
                );
            }
            m
        };
        let mut carried: Option<Matrix> = None;
        for l in (0..self.layers.len()).rev() {
            let mut gh = slice_grad(l);
            if let Some(extra) = carried.take() {
                gh.add_assign(&extra);
            }
            let layer = &mut self.layers[l];
            let d_t = layer.dense.backward(&layer.activation.backward(&gh));
            if l > 0 {
                carried = Some(if cache.n_vertices == 0 {
                    d_t
                } else {
                    propagate_transpose(&cache.graph, &d_t)
                });
            }
        }
    }
}

impl GraphClassifier for Dgcnn {
    fn train_step(&mut self, sample: &GraphSample) -> f32 {
        let logits = self.forward(sample, Mode::Train);
        let (loss, grad) = loss_and_grad(&logits, sample.label);
        self.backward(&grad);
        loss
    }

    fn predict(&mut self, sample: &GraphSample) -> usize {
        let logits = self.forward(sample, Mode::Eval);
        logits_to_class(&logits)
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        let mut out = Vec::new();
        for l in &mut self.layers {
            out.extend(l.dense.params());
        }
        out.extend(self.head_conv.params());
        out.extend(self.head_d1.params());
        out.extend(self.head_d2.params());
        out
    }

    fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.dense.zero_grad();
        }
        self.head_conv.zero_grad();
        self.head_d1.zero_grad();
        self.head_d2.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{featurize, fit_gnn, GnnInput, GnnTrainConfig};
    use deepmap_graph::builder::graph_from_edges;
    use deepmap_graph::generators::{complete_graph, cycle_graph};

    fn degree_labeled(g: Graph) -> Graph {
        let labels: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        g.with_labels(labels).unwrap()
    }

    #[test]
    fn propagate_is_row_stochastic() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)], None).unwrap();
        let x = Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let out = propagate(&g, &x);
        // Row-normalised: constant vectors are fixed points.
        for v in 0..3 {
            assert!((out.get(v, 0) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn propagate_transpose_is_adjoint() {
        // <P x, y> == <x, Pᵀ y> for random x, y.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)], None).unwrap();
        let x = Matrix::from_vec(4, 2, (0..8).map(|v| (v as f32 * 0.37).sin()).collect());
        let y = Matrix::from_vec(4, 2, (0..8).map(|v| (v as f32 * 0.91).cos()).collect());
        let px = propagate(&g, &x);
        let pty = propagate_transpose(&g, &y);
        let dot = |a: &Matrix, b: &Matrix| -> f32 {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(&p, &q)| p * q)
                .sum()
        };
        assert!((dot(&px, &y) - dot(&x, &pty)).abs() < 1e-4);
    }

    #[test]
    fn forward_shapes() {
        let g = degree_labeled(cycle_graph(6, 0, &mut StdRng::seed_from_u64(1)));
        let (samples, m) = featurize(&[g], &[0], GnnInput::OneHotLabels, 0);
        let mut model = Dgcnn::new(&DgcnnConfig::default_for(m, 3, 1));
        let logits = model.forward(&samples[0], Mode::Eval);
        assert_eq!(logits.shape(), (1, 3));
    }

    #[test]
    fn small_graph_zero_padded_in_sortpool() {
        // Graph smaller than k: must not crash and must produce finite
        // logits.
        let g = degree_labeled(cycle_graph(4, 0, &mut StdRng::seed_from_u64(2)));
        let (samples, m) = featurize(&[g], &[0], GnnInput::OneHotLabels, 0);
        let mut model = Dgcnn::new(&DgcnnConfig::default_for(m, 2, 1));
        let loss = model.train_step(&samples[0]);
        assert!(loss.is_finite());
    }

    #[test]
    fn learns_cycles_vs_cliques() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            graphs.push(degree_labeled(cycle_graph(5 + i % 3, 0, &mut rng)));
            labels.push(0);
            graphs.push(degree_labeled(complete_graph(4 + i % 3, 0, &mut rng)));
            labels.push(1);
        }
        let (samples, m) = featurize(&graphs, &labels, GnnInput::OneHotLabels, 0);
        let mut model = Dgcnn::new(&DgcnnConfig::default_for(m, 2, 3));
        let history = fit_gnn(
            &mut model,
            &samples,
            None,
            &GnnTrainConfig {
                epochs: 25,
                batch_size: 8,
                ..Default::default()
            },
        );
        let last = history.last().unwrap();
        assert!(
            last.train_accuracy > 0.85,
            "accuracy {}",
            last.train_accuracy
        );
    }

    #[test]
    fn empty_graph_ok() {
        let g = graph_from_edges(0, &[], None).unwrap();
        let (samples, m) = featurize(&[g], &[0], GnnInput::OneHotLabels, 0);
        let mut model = Dgcnn::new(&DgcnnConfig::default_for(m, 2, 1));
        let _ = model.train_step(&samples[0]);
        let _ = model.predict(&samples[0]);
    }
}
