//! PATCHY-SAN (Niepert et al. 2016).
//!
//! PATCHY-SAN generalises CNNs to graphs with three operations: (1) select
//! a fixed-length sequence of `w` vertices from a canonical ordering, (2)
//! assemble a `k`-vertex neighbourhood per selected vertex, (3) normalise
//! each neighbourhood into a linear order — then run a 1-D CNN over the
//! `w·k` receptive fields.
//!
//! Substitutions (paper §6 discusses exactly these differences vs DeepMap):
//! the canonical ordering uses eigenvector centrality instead of NAUTY
//! (the paper's own argument: centrality is the cheaper adequate stand-in),
//! and neighbourhood normalisation sorts by centrality. Unlike DeepMap,
//! only `w` vertices are selected (not all), with `w` fixed per dataset —
//! here the dataset's *average* vertex count, the spirit of the original's
//! fixed-budget selection.

use crate::common::{logits_to_class, loss_and_grad, GraphClassifier, GraphSample};
use deepmap_core::alignment::{vertex_sequence, VertexOrdering};
use deepmap_core::receptive_field::{receptive_field, Slot};
use deepmap_nn::layers::{Conv1D, Dense, Dropout, Flatten, Layer, Mode, Param, ReLU};
use deepmap_nn::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// PATCHY-SAN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct PatchySanConfig {
    /// Number of selected vertices `w` (fixed per dataset).
    pub w: usize,
    /// Neighbourhood (receptive-field) size `k`.
    pub k: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Input feature dimension `m`.
    pub input_dim: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl PatchySanConfig {
    /// `w` from the dataset's average vertex count, `k = 5` (a common
    /// PATCHY-SAN setting).
    pub fn default_for(input_dim: usize, n_classes: usize, avg_nodes: f64, seed: u64) -> Self {
        PatchySanConfig {
            w: (avg_nodes.ceil() as usize).max(1),
            k: 5,
            n_classes,
            input_dim,
            seed,
        }
    }
}

/// The PATCHY-SAN classifier.
pub struct PatchySan {
    w: usize,
    k: usize,
    conv1: Conv1D,
    relu1: ReLU,
    conv2: Conv1D,
    relu2: ReLU,
    flatten: Flatten,
    d1: Dense,
    relu3: ReLU,
    dropout: Dropout,
    d2: Dense,
}

impl PatchySan {
    /// Builds a PATCHY-SAN from its configuration.
    pub fn new(config: &PatchySanConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        PatchySan {
            w: config.w,
            k: config.k,
            conv1: Conv1D::new(config.input_dim, 16, config.k, config.k, &mut rng),
            relu1: ReLU::new(),
            conv2: Conv1D::new(16, 8, 1, 1, &mut rng),
            relu2: ReLU::new(),
            flatten: Flatten::new(),
            d1: Dense::new(config.w * 8, 128, &mut rng),
            relu3: ReLU::new(),
            dropout: Dropout::new(0.5, config.seed ^ 0x9a7),
            d2: Dense::new(128, config.n_classes, &mut rng),
        }
    }

    /// Selection + assembly + normalisation: a `(w·k × m)` tensor.
    pub fn assemble(&self, sample: &GraphSample) -> Matrix {
        let graph = &sample.graph;
        let m = sample.features.cols();
        let mut input = Matrix::zeros(self.w * self.k, m);
        if graph.n_vertices() == 0 {
            return input;
        }
        let seq = vertex_sequence(graph, VertexOrdering::EigenvectorCentrality);
        for (pos, &v) in seq.order.iter().take(self.w).enumerate() {
            let field = receptive_field(graph, v, self.k, &seq.score, None);
            for (slot_idx, slot) in field.iter().enumerate() {
                if let Slot::Vertex(u) = slot {
                    input
                        .row_mut(pos * self.k + slot_idx)
                        .copy_from_slice(sample.features.row(*u as usize));
                }
            }
        }
        input
    }

    fn forward(&mut self, sample: &GraphSample, mode: Mode) -> Matrix {
        let x = self.assemble(sample);
        let x = self.conv1.forward(&x, mode);
        let x = self.relu1.forward(&x, mode);
        let x = self.conv2.forward(&x, mode);
        let x = self.relu2.forward(&x, mode);
        let x = self.flatten.forward(&x, mode);
        let x = self.d1.forward(&x, mode);
        let x = self.relu3.forward(&x, mode);
        let x = self.dropout.forward(&x, mode);
        self.d2.forward(&x, mode)
    }
}

impl GraphClassifier for PatchySan {
    fn train_step(&mut self, sample: &GraphSample) -> f32 {
        let logits = self.forward(sample, Mode::Train);
        let (loss, grad) = loss_and_grad(&logits, sample.label);
        let g = self.d2.backward(&grad);
        let g = self.dropout.backward(&g);
        let g = self.relu3.backward(&g);
        let g = self.d1.backward(&g);
        let g = self.flatten.backward(&g);
        let g = self.relu2.backward(&g);
        let g = self.conv2.backward(&g);
        let g = self.relu1.backward(&g);
        let _ = self.conv1.backward(&g); // input assembly is parameterless
        loss
    }

    fn predict(&mut self, sample: &GraphSample) -> usize {
        let logits = self.forward(sample, Mode::Eval);
        logits_to_class(&logits)
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        let mut out = self.conv1.params();
        out.extend(self.conv2.params());
        out.extend(self.d1.params());
        out.extend(self.d2.params());
        out
    }

    fn zero_grad(&mut self) {
        self.conv1.zero_grad();
        self.conv2.zero_grad();
        self.d1.zero_grad();
        self.d2.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{featurize, fit_gnn, GnnInput, GnnTrainConfig};
    use deepmap_graph::generators::{complete_graph, cycle_graph};
    use deepmap_graph::Graph;

    fn degree_labeled(g: Graph) -> Graph {
        let labels: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        g.with_labels(labels).unwrap()
    }

    #[test]
    fn assemble_shape_and_padding() {
        let g = degree_labeled(cycle_graph(4, 0, &mut StdRng::seed_from_u64(1)));
        let (samples, m) = featurize(&[g], &[0], GnnInput::OneHotLabels, 0);
        let ps = PatchySan::new(&PatchySanConfig {
            w: 6,
            k: 3,
            n_classes: 2,
            input_dim: m,
            seed: 1,
        });
        let x = ps.assemble(&samples[0]);
        assert_eq!(x.shape(), (18, m));
        // Positions 4 and 5 exceed the graph: fully zero.
        for pos in 4..6 {
            for slot in 0..3 {
                assert!(x.row(pos * 3 + slot).iter().all(|&v| v == 0.0));
            }
        }
        // Real rows carry one-hot mass.
        assert!(x.row(0).iter().sum::<f32>() > 0.0);
    }

    #[test]
    fn truncates_large_graphs_to_w() {
        let g = degree_labeled(complete_graph(10, 0, &mut StdRng::seed_from_u64(2)));
        let (samples, m) = featurize(&[g], &[0], GnnInput::OneHotLabels, 0);
        let ps = PatchySan::new(&PatchySanConfig {
            w: 4,
            k: 2,
            n_classes: 2,
            input_dim: m,
            seed: 1,
        });
        let x = ps.assemble(&samples[0]);
        assert_eq!(x.rows(), 8, "only w·k rows regardless of graph size");
    }

    #[test]
    fn learns_cycles_vs_cliques() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            graphs.push(degree_labeled(cycle_graph(5 + i % 3, 0, &mut rng)));
            labels.push(0);
            graphs.push(degree_labeled(complete_graph(4 + i % 3, 0, &mut rng)));
            labels.push(1);
        }
        let (samples, m) = featurize(&graphs, &labels, GnnInput::OneHotLabels, 0);
        let mut ps = PatchySan::new(&PatchySanConfig::default_for(m, 2, 6.0, 4));
        let history = fit_gnn(
            &mut ps,
            &samples,
            None,
            &GnnTrainConfig {
                epochs: 25,
                batch_size: 8,
                ..Default::default()
            },
        );
        let last = history.last().unwrap();
        assert!(
            last.train_accuracy > 0.85,
            "accuracy {}",
            last.train_accuracy
        );
    }

    #[test]
    fn empty_graph_ok() {
        let g = deepmap_graph::builder::graph_from_edges(0, &[], None).unwrap();
        let (samples, m) = featurize(&[g], &[0], GnnInput::OneHotLabels, 0);
        let mut ps = PatchySan::new(&PatchySanConfig {
            w: 3,
            k: 2,
            n_classes: 2,
            input_dim: m,
            seed: 1,
        });
        let _ = ps.train_step(&samples[0]);
        let _ = ps.predict(&samples[0]);
    }
}
