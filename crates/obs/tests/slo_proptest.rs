//! Property tests for `SloTracker` burn-rate math at the edges: zero
//! traffic, 100% error rate, and window boundaries. PR 8 shipped the
//! tracker with example-based tests only; these pin the arithmetic over
//! arbitrary traffic shapes via the injected-clock hooks
//! (`observe_at` / `burn_rates_at`), so no test ever sleeps.

use deepmap_obs::{SloConfig, SloTracker};
use proptest::prelude::*;
use std::time::Duration;

fn config(budget: f64, fast: u64, slow: u64) -> SloConfig {
    SloConfig {
        latency_objective: Duration::from_millis(250),
        error_budget: budget,
        fast_window: Duration::from_secs(fast),
        slow_window: Duration::from_secs(slow),
    }
}

proptest! {
    /// Silence never spends budget: with zero traffic the burn is exactly
    /// 0.0 at any observation point, for any window/budget shape.
    #[test]
    fn zero_traffic_burns_nothing(
        now in 0u64..100_000,
        budget in 0.0f64..=1.0,
        fast in 1u64..120,
        slow in 1u64..600,
    ) {
        let tracker = SloTracker::new(config(budget, fast, slow));
        let (f, s) = tracker.burn_rates_at(now);
        prop_assert_eq!(f, 0.0);
        prop_assert_eq!(s, 0.0);
        prop_assert!(!tracker.breached());
    }

    /// All-bad traffic burns at exactly `1 / error_budget` in every
    /// window that saw it — the 100% error rate edge.
    #[test]
    fn total_failure_burns_inverse_budget(
        n in 1u64..500,
        budget in 0.001f64..=1.0,
        fast in 1u64..60,
        slow in 60u64..300,
    ) {
        let tracker = SloTracker::new(config(budget, fast, slow));
        for i in 0..n {
            // Spread across a few seconds, all within the fast window.
            tracker.observe_at(i % fast.min(5), false);
        }
        let now = fast.min(5) - 1;
        let (f, s) = tracker.burn_rates_at(now);
        let want = 1.0 / budget;
        prop_assert!((f - want).abs() < 1e-9, "fast burn {f} != {want}");
        prop_assert!((s - want).abs() < 1e-9, "slow burn {s} != {want}");
    }

    /// A zero (or negative) error budget never divides by zero: burn is
    /// defined as 0.0 no matter how bad the traffic.
    #[test]
    fn degenerate_budget_is_not_a_division(
        n in 1u64..100,
        budget in -1.0f64..=0.0,
    ) {
        let tracker = SloTracker::new(config(budget, 10, 60));
        for _ in 0..n {
            tracker.observe_at(0, false);
        }
        let (f, s) = tracker.burn_rates_at(0);
        prop_assert_eq!(f, 0.0);
        prop_assert_eq!(s, 0.0);
    }

    /// Window boundary: bad traffic at second 0 is visible while `now`
    /// keeps it inside the window and invisible one second after it
    /// falls out. The tracker's window at time `now` covers seconds
    /// `now - W ..= now` inclusive.
    #[test]
    fn window_boundary_is_exact(
        window in 2u64..120,
        bad in 1u64..50,
    ) {
        // Slow window same as fast so nothing is pruned early.
        let tracker = SloTracker::new(config(0.5, window, window));
        for _ in 0..bad {
            tracker.observe_at(0, false);
        }
        // Inside the window (inclusive edge): the burn is visible.
        let (f_edge, _) = tracker.burn_rates_at(window);
        prop_assert!((f_edge - 2.0).abs() < 1e-9, "edge burn {f_edge} != 2.0");
        // One second past the edge: the bucket falls out, burn drops to 0.
        let (f_out, s_out) = tracker.burn_rates_at(window + 1);
        prop_assert_eq!(f_out, 0.0);
        prop_assert_eq!(s_out, 0.0);
    }

    /// Mixed traffic: burn equals `bad_fraction / budget` exactly, and
    /// the fast window never sees traffic the slow window misses.
    #[test]
    fn burn_matches_bad_fraction(
        good in 0u64..400,
        bad in 0u64..400,
        budget in 0.01f64..=0.5,
    ) {
        prop_assume!(good + bad > 0);
        let tracker = SloTracker::new(config(budget, 10, 60));
        for i in 0..good {
            tracker.observe_at(i % 3, true);
        }
        for i in 0..bad {
            tracker.observe_at(i % 3, false);
        }
        let (f, s) = tracker.burn_rates_at(3);
        let want = (bad as f64 / (good + bad) as f64) / budget;
        prop_assert!((f - want).abs() < 1e-9, "fast {f} != {want}");
        prop_assert!((s - want).abs() < 1e-9, "slow {s} != {want}");
        // Fast window ⊆ slow window at identical traffic.
        prop_assert!((f - s).abs() < 1e-9);
    }

    /// Old buckets beyond the slow horizon are pruned on observe, but
    /// pruning never changes what the windows report: replaying the same
    /// stream through a tracker with a tiny slow window matches a direct
    /// computation over the surviving seconds.
    #[test]
    fn pruning_preserves_window_sums(
        seconds in proptest::collection::vec((0u64..2, any::<bool>()), 1..200),
        slow in 2u64..30,
    ) {
        let tracker = SloTracker::new(config(0.1, 1, slow));
        let mut stream: Vec<(u64, bool)> = seconds;
        // Feed in non-decreasing second order, as the wall clock would.
        let mut t = 0u64;
        for (i, entry) in stream.iter_mut().enumerate() {
            t += entry.0; // step 0 or 1 seconds forward
            entry.0 = t;
            let _ = i;
        }
        for &(second, good) in &stream {
            tracker.observe_at(second, good);
        }
        let now = t;
        let horizon = now.saturating_sub(slow);
        let in_window: Vec<&(u64, bool)> =
            stream.iter().filter(|(s, _)| *s >= horizon).collect();
        let total = in_window.len() as f64;
        let bad = in_window.iter().filter(|(_, g)| !*g).count() as f64;
        let want = if total == 0.0 { 0.0 } else { (bad / total) / 0.1 };
        let (_, s_burn) = tracker.burn_rates_at(now);
        prop_assert!((s_burn - want).abs() < 1e-9, "slow {s_burn} != {want}");
    }
}
