//! Integration tests for `deepmap-obs`: span nesting, percentile math,
//! disabled-mode behaviour, and exporter round-trips.

use deepmap_obs::json::Json;
use deepmap_obs::{Histogram, Registry, TraceLevel};

#[test]
fn spans_nest_and_record_parents() {
    let reg = Registry::new(TraceLevel::Spans);
    let (outer_id, inner_id, sibling_id);
    {
        let outer = reg.span("outer").with_u64("graphs", 3);
        outer_id = outer.id();
        {
            let inner = reg.span("inner");
            inner_id = inner.id();
            assert_ne!(inner_id, outer_id);
        }
        {
            let sibling = reg.span("sibling");
            sibling_id = sibling.id();
        }
    }
    let spans = reg.snapshot_spans();
    assert_eq!(spans.len(), 3);
    // Completion order: inner, sibling, outer.
    assert_eq!(spans[0].name, "inner");
    assert_eq!(spans[0].parent, Some(outer_id));
    assert_eq!(spans[1].name, "sibling");
    assert_eq!(spans[1].parent, Some(outer_id));
    assert_eq!(spans[2].name, "outer");
    assert_eq!(spans[2].parent, None);
    assert_eq!(spans[2].id, outer_id);
    assert_eq!(spans[0].id, inner_id);
    assert_ne!(inner_id, sibling_id);
    assert_eq!(spans[2].fields.len(), 1);
    assert!(spans[2].start_us <= spans[0].start_us);
}

#[test]
fn span_fields_record_after_creation() {
    let reg = Registry::new(TraceLevel::Spans);
    {
        let mut span = reg.span("work");
        span.record_f64("loss", 0.25);
        span.record_str("kernel", "WL");
        span.record_i64("delta", -3);
    }
    let spans = reg.snapshot_spans();
    assert_eq!(spans[0].fields.len(), 3);
    assert_eq!(spans[0].fields[0].0, "loss");
}

#[test]
fn histogram_percentiles_known_distribution() {
    let h = Histogram::with_bounds((1..=100).map(f64::from).collect());
    for i in 1..=100 {
        h.observe(f64::from(i));
    }
    assert_eq!(h.percentile(0.5), 50.0);
    assert_eq!(h.percentile(0.9), 90.0);
    assert_eq!(h.percentile(0.99), 99.0);
    assert_eq!(h.count(), 100);
    assert!((h.mean() - 50.5).abs() < 1e-9);
}

#[test]
fn jsonl_export_round_trips() {
    let reg = Registry::new(TraceLevel::Spans);
    {
        let _outer = reg.span("pipeline.prepare").with_str("dataset", "MUTAG");
        let _inner = reg.span("pipeline.alignment");
    }
    reg.event(deepmap_obs::EventLevel::Warn, "low \"memory\"\nretrying");
    let jsonl = reg.export_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 3);
    let mut span_names = Vec::new();
    for line in &lines {
        let value = Json::parse(line).expect("every trace line parses");
        match value.get("kind").and_then(Json::as_str) {
            Some("span") => {
                span_names.push(value.get("name").unwrap().as_str().unwrap().to_string());
                assert!(value.get("id").unwrap().as_u64().is_some());
                assert!(value.get("dur_us").unwrap().as_u64().is_some());
            }
            Some("event") => {
                assert_eq!(
                    value.get("message").unwrap().as_str(),
                    Some("low \"memory\"\nretrying")
                );
                assert_eq!(value.get("level").unwrap().as_str(), Some("warn"));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }
    assert_eq!(span_names, vec!["pipeline.alignment", "pipeline.prepare"]);
    // Parent linkage survives the round-trip.
    let inner = Json::parse(lines[0]).unwrap();
    let outer = Json::parse(lines[1]).unwrap();
    assert_eq!(
        inner.get("parent").unwrap().as_u64(),
        outer.get("id").unwrap().as_u64()
    );
}

#[test]
fn prometheus_render_has_types_buckets_and_peaks() {
    let reg = Registry::new(TraceLevel::Summary);
    reg.counter("train.epochs_run").add(7);
    let g = reg.gauge("serve.queue_depth");
    g.add(5);
    g.add(-3);
    let h = reg.histogram("serve.latency_seconds");
    h.observe(0.5);
    let text = reg.render_prometheus();
    assert!(text.contains("# TYPE deepmap_train_epochs_run counter"));
    assert!(text.contains("deepmap_train_epochs_run 7"));
    assert!(text.contains("deepmap_serve_queue_depth 2"));
    assert!(text.contains("deepmap_serve_queue_depth_peak 5"));
    assert!(text.contains("# TYPE deepmap_serve_latency_seconds histogram"));
    assert!(text.contains("deepmap_serve_latency_seconds_count 1"));
    assert!(text.contains("_bucket{le=\"+Inf\"} 1"));
}

#[test]
fn stage_summary_aggregates_by_name() {
    let reg = Registry::new(TraceLevel::Spans);
    for _ in 0..3 {
        let _s = reg.span("pipeline.alignment");
    }
    {
        let _s = reg.span("pipeline.assemble");
    }
    let stages = reg.stage_summary();
    assert_eq!(stages.len(), 2);
    let alignment = stages
        .iter()
        .find(|s| s.name == "pipeline.alignment")
        .unwrap();
    assert_eq!(alignment.count, 3);
    assert!(alignment.min_s <= alignment.mean_s && alignment.mean_s <= alignment.max_s);
    assert!((alignment.mean_s - alignment.total_s / 3.0).abs() < 1e-12);
}

/// All assertions that mutate the process-global level live in this one
/// test so parallel test threads never race on it.
#[test]
fn global_off_mode_leaves_registry_untouched() {
    let restore = deepmap_obs::global_level();
    deepmap_obs::set_global_level(TraceLevel::Off);

    // Counter writes go to a detached sink, not the registry.
    deepmap_obs::counter("off.test_counter").add(10);
    assert_eq!(deepmap_obs::global().counter("off.test_counter").get(), 0);
    // Gauges and histograms likewise.
    deepmap_obs::gauge("off.test_gauge").add(4);
    assert_eq!(deepmap_obs::global().gauge("off.test_gauge").get(), 0);
    deepmap_obs::histogram("off.test_hist").observe(1.0);
    assert_eq!(deepmap_obs::global().histogram("off.test_hist").count(), 0);
    // Spans are inert guards.
    {
        let span = deepmap_obs::span("off.test_span");
        assert!(!span.is_recording());
        assert_eq!(span.id(), 0);
    }
    assert!(!deepmap_obs::global()
        .snapshot_spans()
        .iter()
        .any(|s| s.name == "off.test_span"));
    // flush_trace declines to write anything.
    assert_eq!(deepmap_obs::flush_trace("off-test"), None);

    // Back on: the same call sites hit the registry.
    deepmap_obs::set_global_level(TraceLevel::Summary);
    deepmap_obs::counter("off.test_counter").add(2);
    assert_eq!(deepmap_obs::global().counter("off.test_counter").get(), 2);

    deepmap_obs::set_global_level(restore);
}

#[test]
fn trace_path_defaults_to_results_dir() {
    // DEEPMAP_TRACE_FILE is not set in the test environment.
    if std::env::var("DEEPMAP_TRACE_FILE").is_err() {
        assert_eq!(
            deepmap_obs::trace_path("pipeline"),
            std::path::PathBuf::from("results/TRACE_pipeline.jsonl")
        );
    }
}

#[test]
fn write_trace_round_trips_through_file() {
    let reg = Registry::new(TraceLevel::Spans);
    {
        let _s = reg.span("disk.round_trip");
    }
    let dir = std::env::temp_dir().join("deepmap-obs-test");
    let path = dir.join("trace.jsonl");
    reg.write_trace(&path).expect("trace written");
    let text = std::fs::read_to_string(&path).expect("trace readable");
    let line = text.lines().next().expect("one line");
    let value = Json::parse(line).expect("line parses");
    assert_eq!(value.get("name").unwrap().as_str(), Some("disk.round_trip"));
    let _ = std::fs::remove_dir_all(&dir);
}
