//! Integration tests for `deepmap-obs`: span nesting, percentile math,
//! disabled-mode behaviour, and exporter round-trips.

use deepmap_obs::json::Json;
use deepmap_obs::{Histogram, Registry, TraceLevel};

#[test]
fn spans_nest_and_record_parents() {
    let reg = Registry::new(TraceLevel::Spans);
    let (outer_id, inner_id, sibling_id);
    {
        let outer = reg.span("outer").with_u64("graphs", 3);
        outer_id = outer.id();
        {
            let inner = reg.span("inner");
            inner_id = inner.id();
            assert_ne!(inner_id, outer_id);
        }
        {
            let sibling = reg.span("sibling");
            sibling_id = sibling.id();
        }
    }
    let spans = reg.snapshot_spans();
    assert_eq!(spans.len(), 3);
    // Completion order: inner, sibling, outer.
    assert_eq!(spans[0].name, "inner");
    assert_eq!(spans[0].parent, Some(outer_id));
    assert_eq!(spans[1].name, "sibling");
    assert_eq!(spans[1].parent, Some(outer_id));
    assert_eq!(spans[2].name, "outer");
    assert_eq!(spans[2].parent, None);
    assert_eq!(spans[2].id, outer_id);
    assert_eq!(spans[0].id, inner_id);
    assert_ne!(inner_id, sibling_id);
    assert_eq!(spans[2].fields.len(), 1);
    assert!(spans[2].start_us <= spans[0].start_us);
}

#[test]
fn span_fields_record_after_creation() {
    let reg = Registry::new(TraceLevel::Spans);
    {
        let mut span = reg.span("work");
        span.record_f64("loss", 0.25);
        span.record_str("kernel", "WL");
        span.record_i64("delta", -3);
    }
    let spans = reg.snapshot_spans();
    assert_eq!(spans[0].fields.len(), 3);
    assert_eq!(spans[0].fields[0].0, "loss");
}

#[test]
fn histogram_percentiles_known_distribution() {
    let h = Histogram::with_bounds((1..=100).map(f64::from).collect());
    for i in 1..=100 {
        h.observe(f64::from(i));
    }
    assert_eq!(h.percentile(0.5), 50.0);
    assert_eq!(h.percentile(0.9), 90.0);
    assert_eq!(h.percentile(0.99), 99.0);
    assert_eq!(h.count(), 100);
    assert!((h.mean() - 50.5).abs() < 1e-9);
}

#[test]
fn jsonl_export_round_trips() {
    let reg = Registry::new(TraceLevel::Spans);
    {
        let _outer = reg.span("pipeline.prepare").with_str("dataset", "MUTAG");
        let _inner = reg.span("pipeline.alignment");
    }
    reg.event(deepmap_obs::EventLevel::Warn, "low \"memory\"\nretrying");
    let jsonl = reg.export_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 3);
    let mut span_names = Vec::new();
    for line in &lines {
        let value = Json::parse(line).expect("every trace line parses");
        match value.get("kind").and_then(Json::as_str) {
            Some("span") => {
                span_names.push(value.get("name").unwrap().as_str().unwrap().to_string());
                assert!(value.get("id").unwrap().as_u64().is_some());
                assert!(value.get("dur_us").unwrap().as_u64().is_some());
            }
            Some("event") => {
                assert_eq!(
                    value.get("message").unwrap().as_str(),
                    Some("low \"memory\"\nretrying")
                );
                assert_eq!(value.get("level").unwrap().as_str(), Some("warn"));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }
    assert_eq!(span_names, vec!["pipeline.alignment", "pipeline.prepare"]);
    // Parent linkage survives the round-trip.
    let inner = Json::parse(lines[0]).unwrap();
    let outer = Json::parse(lines[1]).unwrap();
    assert_eq!(
        inner.get("parent").unwrap().as_u64(),
        outer.get("id").unwrap().as_u64()
    );
}

#[test]
fn prometheus_render_has_types_buckets_and_peaks() {
    let reg = Registry::new(TraceLevel::Summary);
    reg.counter("train.epochs_run").add(7);
    let g = reg.gauge("serve.queue_depth");
    g.add(5);
    g.add(-3);
    let h = reg.histogram("serve.latency_seconds");
    h.observe(0.5);
    let text = reg.render_prometheus();
    assert!(text.contains("# TYPE deepmap_train_epochs_run counter"));
    assert!(text.contains("deepmap_train_epochs_run 7"));
    assert!(text.contains("deepmap_serve_queue_depth 2"));
    assert!(text.contains("deepmap_serve_queue_depth_peak 5"));
    assert!(text.contains("# TYPE deepmap_serve_latency_seconds histogram"));
    assert!(text.contains("deepmap_serve_latency_seconds_count 1"));
    assert!(text.contains("_bucket{le=\"+Inf\"} 1"));
}

#[test]
fn stage_summary_aggregates_by_name() {
    let reg = Registry::new(TraceLevel::Spans);
    for _ in 0..3 {
        let _s = reg.span("pipeline.alignment");
    }
    {
        let _s = reg.span("pipeline.assemble");
    }
    let stages = reg.stage_summary();
    assert_eq!(stages.len(), 2);
    let alignment = stages
        .iter()
        .find(|s| s.name == "pipeline.alignment")
        .unwrap();
    assert_eq!(alignment.count, 3);
    assert!(alignment.min_s <= alignment.mean_s && alignment.mean_s <= alignment.max_s);
    assert!((alignment.mean_s - alignment.total_s / 3.0).abs() < 1e-12);
}

/// All assertions that mutate the process-global level live in this one
/// test so parallel test threads never race on it.
#[test]
fn global_off_mode_leaves_registry_untouched() {
    let restore = deepmap_obs::global_level();
    deepmap_obs::set_global_level(TraceLevel::Off);

    // Counter writes go to a detached sink, not the registry.
    deepmap_obs::counter("off.test_counter").add(10);
    assert_eq!(deepmap_obs::global().counter("off.test_counter").get(), 0);
    // Gauges and histograms likewise.
    deepmap_obs::gauge("off.test_gauge").add(4);
    assert_eq!(deepmap_obs::global().gauge("off.test_gauge").get(), 0);
    deepmap_obs::histogram("off.test_hist").observe(1.0);
    assert_eq!(deepmap_obs::global().histogram("off.test_hist").count(), 0);
    // Spans are inert guards.
    {
        let span = deepmap_obs::span("off.test_span");
        assert!(!span.is_recording());
        assert_eq!(span.id(), 0);
    }
    assert!(!deepmap_obs::global()
        .snapshot_spans()
        .iter()
        .any(|s| s.name == "off.test_span"));
    // flush_trace declines to write anything.
    assert!(matches!(deepmap_obs::flush_trace("off-test"), Ok(None)));

    // Back on: the same call sites hit the registry.
    deepmap_obs::set_global_level(TraceLevel::Summary);
    deepmap_obs::counter("off.test_counter").add(2);
    assert_eq!(deepmap_obs::global().counter("off.test_counter").get(), 2);

    deepmap_obs::set_global_level(restore);
}

#[test]
fn trace_path_defaults_to_results_dir() {
    // DEEPMAP_TRACE_FILE is not set in the test environment.
    if std::env::var("DEEPMAP_TRACE_FILE").is_err() {
        assert_eq!(
            deepmap_obs::trace_path("pipeline"),
            std::path::PathBuf::from("results/TRACE_pipeline.jsonl")
        );
    }
}

#[test]
fn write_trace_round_trips_through_file() {
    let reg = Registry::new(TraceLevel::Spans);
    {
        let _s = reg.span("disk.round_trip");
    }
    let dir = std::env::temp_dir().join("deepmap-obs-test");
    let path = dir.join("trace.jsonl");
    reg.write_trace(&path).expect("trace written");
    let text = std::fs::read_to_string(&path).expect("trace readable");
    let line = text.lines().next().expect("one line");
    let value = Json::parse(line).expect("line parses");
    assert_eq!(value.get("name").unwrap().as_str(), Some("disk.round_trip"));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// PR 8: histogram bucket edges, request tracing, the flight recorder, SLO.
// ---------------------------------------------------------------------------

#[test]
fn histogram_percentiles_at_bucket_edges() {
    // Empty histogram: every percentile is 0.0.
    let empty = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
    assert_eq!(empty.percentile(0.0), 0.0);
    assert_eq!(empty.percentile(0.5), 0.0);
    assert_eq!(empty.percentile(1.0), 0.0);
    assert_eq!(empty.mean(), 0.0);

    // Single sample: every percentile reports that sample's bucket bound.
    let single = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
    single.observe(1.5);
    assert_eq!(single.percentile(0.0), 2.0);
    assert_eq!(single.percentile(0.5), 2.0);
    assert_eq!(single.percentile(1.0), 2.0);
    assert_eq!(single.count(), 1);

    // All observations in the overflow bucket: percentiles clamp to the
    // last finite bound rather than reporting +Inf.
    let overflow = Histogram::with_bounds(vec![1.0, 2.0]);
    for _ in 0..10 {
        overflow.observe(100.0);
    }
    assert_eq!(overflow.percentile(0.5), 2.0);
    assert_eq!(overflow.percentile(0.99), 2.0);
    let buckets = overflow.buckets();
    assert_eq!(buckets.last().unwrap().count, 10);
    assert!(buckets.last().unwrap().upper_bound.is_infinite());
}

#[test]
fn histogram_exemplars_remember_a_trace_id_per_bucket() {
    let h = Histogram::with_bounds(vec![1.0, 2.0]);
    h.observe(0.5); // untraced: no exemplar
    assert!(h.buckets()[0].exemplar.is_none());
    h.observe_with_exemplar(0.7, 0xAB);
    h.observe_with_exemplar(1.5, 0xCD);
    let buckets = h.buckets();
    assert_eq!(buckets[0].exemplar, Some((0xAB, 0.7)));
    assert_eq!(buckets[1].exemplar, Some((0xCD, 1.5)));
    // A newer traced observation replaces the bucket's exemplar.
    h.observe_with_exemplar(0.9, 0xEF);
    assert_eq!(h.buckets()[0].exemplar, Some((0xEF, 0.9)));
}

#[test]
fn request_ctx_stamps_are_monotonic_and_first_write_wins() {
    use deepmap_obs::{RequestCtx, RequestRecord, Stage, TraceOutcome};
    let mut ctx = RequestCtx::mint();
    assert!(ctx.is_enabled());
    assert_ne!(ctx.trace_id(), 0);
    for stage in Stage::ALL {
        ctx.stamp(stage);
    }
    let record = RequestRecord::from_ctx(&ctx, TraceOutcome::Completed);
    assert_eq!(record.stamps.len(), Stage::ALL.len());
    assert!(record.stamps_monotonic());
    // First write wins: re-stamping does not move an existing stamp.
    let first = ctx.stage_us(Stage::Accepted).unwrap();
    ctx.stamp(Stage::Accepted);
    assert_eq!(ctx.stage_us(Stage::Accepted), Some(first));
    // Disabled contexts ignore everything.
    let mut off = RequestCtx::disabled();
    off.stamp(Stage::Accepted);
    assert_eq!(off.trace_id(), 0);
    assert_eq!(off.stage_us(Stage::Accepted), None);
}

#[test]
fn flight_recorder_evicts_fifo_and_keeps_anomalies() {
    use deepmap_obs::{FlightRecorder, RequestCtx, RequestRecord, Stage, TraceOutcome};
    let recorder = FlightRecorder::new(4);
    let mut anomaly_id = 0;
    for i in 0..10u64 {
        let mut ctx = RequestCtx::mint();
        ctx.stamp(Stage::Accepted);
        ctx.stamp(Stage::Enqueued);
        let record = if i == 1 {
            anomaly_id = ctx.trace_id();
            RequestRecord::from_ctx(&ctx, TraceOutcome::ShedDeadline)
                .with_cause("deadline exceeded in queue")
        } else {
            RequestRecord::from_ctx(&ctx, TraceOutcome::Completed).with_batch(i, 1)
        };
        recorder.record(record);
    }
    assert_eq!(recorder.len(), 4);
    assert_eq!(recorder.recorded(), 10);
    assert_eq!(recorder.evicted(), 6);
    assert_eq!(recorder.anomalies(), 1);
    // The early anomaly was evicted from the main ring but survives in the
    // anomaly ring, cause intact.
    assert!(!recorder.snapshot().iter().any(|r| r.trace_id == anomaly_id));
    let anomalies = recorder.anomaly_snapshot();
    assert_eq!(anomalies.len(), 1);
    assert_eq!(anomalies[0].trace_id, anomaly_id);
    assert_eq!(
        anomalies[0].cause.as_deref(),
        Some("deadline exceeded in queue")
    );
}

#[test]
fn flight_recorder_jsonl_round_trips_and_stamps_reply_written() {
    use deepmap_obs::{
        format_trace_id, FlightRecorder, RequestCtx, RequestRecord, Stage, TraceOutcome,
    };
    let recorder = FlightRecorder::new(8);
    let mut ctx = RequestCtx::mint();
    ctx.stamp(Stage::Accepted);
    ctx.stamp(Stage::Admitted);
    ctx.stamp(Stage::Enqueued);
    ctx.stamp(Stage::BatchSealed);
    ctx.stamp(Stage::InferStart);
    ctx.stamp(Stage::InferEnd);
    let id = ctx.trace_id();
    recorder.record(RequestRecord::from_ctx(&ctx, TraceOutcome::Completed).with_batch(7, 3));
    // The net edge back-fills reply_written after the socket write.
    assert!(recorder.stamp_reply_written(id, deepmap_obs::now_micros()));
    assert!(!recorder.stamp_reply_written(0xFFFF_FFFF_FFFF_FFFF, 1));
    let jsonl = recorder.export_jsonl();
    let line = jsonl.lines().next().expect("one record");
    let value = Json::parse(line).expect("record parses");
    assert_eq!(
        value.get("trace_id").unwrap().as_str(),
        Some(format_trace_id(id).as_str())
    );
    assert_eq!(value.get("outcome").unwrap().as_str(), Some("completed"));
    assert_eq!(value.get("batch_seq").unwrap().as_u64(), Some(7));
    let stages = value.get("stages").expect("stages object");
    let mut last = 0.0;
    for stage in deepmap_obs::Stage::ALL {
        let us = stages
            .get(stage.name())
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("stage {} missing", stage.name()));
        assert!(us >= last, "stage stamps must be monotonic in {line}");
        last = us;
    }
}

#[test]
fn flight_recorder_appends_anomalies_to_sink_file() {
    use deepmap_obs::{FlightRecorder, RequestCtx, RequestRecord, Stage, TraceOutcome};
    let dir = std::env::temp_dir().join(format!(
        "deepmap-obs-anomaly-{}",
        deepmap_obs::mint_trace_id()
    ));
    let sink = dir.join("anomalies.jsonl");
    let recorder = FlightRecorder::new(8);
    recorder.set_anomaly_sink(Some(sink.clone()));
    let mut ctx = RequestCtx::mint();
    ctx.stamp(Stage::Accepted);
    recorder.record(
        RequestRecord::from_ctx(&ctx, TraceOutcome::WorkerPanic).with_cause("boom in worker"),
    );
    // Completions do not hit the sink.
    let mut ok = RequestCtx::mint();
    ok.stamp(Stage::Accepted);
    recorder.record(RequestRecord::from_ctx(&ok, TraceOutcome::Completed));
    let text = std::fs::read_to_string(&sink).expect("anomaly sink written");
    assert_eq!(text.lines().count(), 1);
    let value = Json::parse(text.lines().next().unwrap()).expect("parses");
    assert_eq!(value.get("outcome").unwrap().as_str(), Some("worker_panic"));
    assert_eq!(value.get("cause").unwrap().as_str(), Some("boom in worker"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slo_tracker_burns_on_bad_traffic_and_recovers_rates() {
    use deepmap_obs::{SloConfig, SloTracker};
    use std::time::Duration;
    let config = SloConfig {
        latency_objective: Duration::from_millis(100),
        error_budget: 0.1,
        fast_window: Duration::from_secs(5),
        slow_window: Duration::from_secs(60),
    };
    let tracker = SloTracker::new(config);
    // All-good traffic: zero burn.
    for _ in 0..50 {
        tracker.observe_latency(Duration::from_millis(10));
    }
    let (fast, slow) = tracker.burn_rates();
    assert_eq!((fast, slow), (0.0, 0.0));
    assert!(!tracker.breached());
    // 50 good + 50 bad = 50% bad against a 10% budget → burn 5.0 on both
    // windows (all samples land within the last few seconds).
    for _ in 0..50 {
        tracker.observe_error();
    }
    let (fast, slow) = tracker.burn_rates();
    assert!((fast - 5.0).abs() < 1e-9, "fast burn {fast}");
    assert!((slow - 5.0).abs() < 1e-9, "slow burn {slow}");
    assert!(tracker.breached());
    // Slow-but-successful replies also spend budget.
    let slow_only = SloTracker::new(config);
    for _ in 0..10 {
        slow_only.observe_latency(Duration::from_millis(500));
    }
    assert!(slow_only.breached());
}

#[test]
fn slo_tracker_mirrors_burn_into_gauges() {
    use deepmap_obs::{SloConfig, SloTracker};
    let reg = Registry::new(TraceLevel::Summary);
    let fast = reg.gauge("serve.slo_burn_fast_milli");
    let slow = reg.gauge("serve.slo_burn_slow_milli");
    let tracker = SloTracker::new(SloConfig {
        error_budget: 0.5,
        ..SloConfig::default()
    })
    .with_gauges(fast.clone(), slow.clone());
    tracker.observe_error();
    // 100% bad / 50% budget = burn 2.0 → 2000 milli.
    assert_eq!(fast.get(), 2000);
    assert_eq!(slow.get(), 2000);
}
