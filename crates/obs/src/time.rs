//! Wall-clock helpers: the single source of truth for elapsed-seconds
//! bookkeeping and human-readable duration formatting.

use std::time::Instant;

/// A restartable wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds since the (last) start.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Seconds since the (last) start, then restarts the stopwatch.
    pub fn lap_seconds(&mut self) -> f64 {
        let elapsed = self.elapsed_seconds();
        self.start = Instant::now();
        elapsed
    }
}

impl Default for Stopwatch {
    fn default() -> Stopwatch {
        Stopwatch::start()
    }
}

/// Formats a duration for tables: `"1.5s"` at or above one second,
/// `"340.0ms"` below.
pub fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.1}s")
    } else {
        format!("{:.1}ms", seconds * 1000.0)
    }
}

/// Arithmetic mean of a sequence of seconds (0.0 when empty).
pub fn mean_seconds<I: IntoIterator<Item = f64>>(seconds: I) -> f64 {
    let mut total = 0.0;
    let mut count = 0u64;
    for s in seconds {
        total += s;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_matches_table_convention() {
        assert_eq!(format_seconds(1.0), "1.0s");
        assert_eq!(format_seconds(12.34), "12.3s");
        assert_eq!(format_seconds(0.34), "340.0ms");
        assert_eq!(format_seconds(0.0), "0.0ms");
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean_seconds([]), 0.0);
        assert!((mean_seconds([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stopwatch_measures_and_laps() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let first = sw.lap_seconds();
        assert!(first >= 0.004);
        let second = sw.elapsed_seconds();
        assert!(second < first);
    }
}
