//! `deepmap-obs`: zero-dependency structured tracing, stage metrics, and
//! profiling hooks for the DeepMap workspace.
//!
//! The crate provides four pieces, all hand-rolled (no new dependencies):
//!
//! 1. **Hierarchical spans** ([`SpanGuard`]) — RAII-timed regions with
//!    key/value fields and thread-local parent links, recorded into a
//!    thread-safe [`Registry`].
//! 2. **Named metrics** — [`Counter`], [`Gauge`] (with high-water mark), and
//!    fixed-bucket [`Histogram`] (p50/p90/p99 via bucket upper bounds).
//! 3. **Exporters** — a JSONL trace ([`Registry::export_jsonl`]) and a
//!    Prometheus-style text snapshot ([`Registry::render_prometheus`]),
//!    plus a per-stage aggregate ([`Registry::stage_summary`]).
//! 4. **A verbosity switch** — `DEEPMAP_TRACE=off|summary|spans`
//!    ([`TraceLevel`]); instrumented code is near-zero-cost at `off`.
//!
//! Most call sites use the process-global registry through the free
//! functions here:
//!
//! ```
//! let _span = deepmap_obs::span("pipeline.alignment");
//! deepmap_obs::counter("pipeline.graphs_embedded").add(42);
//! deepmap_obs::info!("aligned {} graphs", 42);
//! ```

#![deny(missing_docs)]

pub mod journal;
pub mod json;
mod level;
pub mod metrics;
mod registry;
pub mod slo;
mod span;
pub mod time;
pub mod trace;

pub use journal::{Framing, Journal, JournalError, Replay, Salvage};
pub use level::TraceLevel;
pub use metrics::{Bucket, Counter, Gauge, Histogram};
pub use registry::{EventLevel, EventRecord, Registry, StageSummary};
pub use slo::{SloConfig, SloTracker};
pub use span::{FieldValue, SpanGuard, SpanRecord};
pub use time::Stopwatch;
pub use trace::{
    format_trace_id, mint_trace_id, now_micros, FlightRecorder, RequestCtx, RequestRecord, Stage,
    TraceOutcome,
};

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry. Its initial level comes from the
/// `DEEPMAP_TRACE` environment variable (default `summary`); change it at
/// runtime with [`set_global_level`].
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(|| Registry::new(TraceLevel::from_env()))
}

/// Sets the global registry's level (e.g. `--quiet` → [`TraceLevel::Off`]).
pub fn set_global_level(level: TraceLevel) {
    global().set_level(level);
}

/// The global registry's current level.
pub fn global_level() -> TraceLevel {
    global().level()
}

/// Opens a span named `name` on the global registry. Inert unless
/// `DEEPMAP_TRACE=spans`.
pub fn span(name: &'static str) -> SpanGuard<'static> {
    global().span(name)
}

fn noop_counter() -> Arc<Counter> {
    static NOOP: OnceLock<Arc<Counter>> = OnceLock::new();
    Arc::clone(NOOP.get_or_init(|| Arc::new(Counter::new())))
}

fn noop_gauge() -> Arc<Gauge> {
    static NOOP: OnceLock<Arc<Gauge>> = OnceLock::new();
    Arc::clone(NOOP.get_or_init(|| Arc::new(Gauge::new())))
}

fn noop_histogram() -> Arc<Histogram> {
    static NOOP: OnceLock<Arc<Histogram>> = OnceLock::new();
    Arc::clone(NOOP.get_or_init(|| Arc::new(Histogram::with_bounds(vec![1.0]))))
}

/// The global counter named `name`. When the global level is
/// [`TraceLevel::Off`] a detached sink counter is returned instead, so
/// registered counters stay untouched.
pub fn counter(name: &str) -> Arc<Counter> {
    if global_level().metrics_enabled() {
        global().counter(name)
    } else {
        noop_counter()
    }
}

/// The global gauge named `name` (detached sink at [`TraceLevel::Off`]).
pub fn gauge(name: &str) -> Arc<Gauge> {
    if global_level().metrics_enabled() {
        global().gauge(name)
    } else {
        noop_gauge()
    }
}

/// The global histogram named `name` (detached sink at
/// [`TraceLevel::Off`]).
pub fn histogram(name: &str) -> Arc<Histogram> {
    if global_level().metrics_enabled() {
        global().histogram(name)
    } else {
        noop_histogram()
    }
}

/// Emits a leveled event on the global registry: printed to stderr unless
/// the level is [`TraceLevel::Off`], and recorded into the trace at
/// [`TraceLevel::Spans`]. Prefer the [`info!`] / [`warn!`] macros.
pub fn event(level: EventLevel, message: &str) {
    global().event(level, message);
}

/// Resolves where a trace for run `name` should be written: the
/// `DEEPMAP_TRACE_FILE` environment variable when set, otherwise
/// `results/TRACE_{name}.jsonl`.
pub fn trace_path(name: &str) -> PathBuf {
    match std::env::var("DEEPMAP_TRACE_FILE") {
        Ok(path) if !path.is_empty() => PathBuf::from(path),
        _ => PathBuf::from(format!("results/TRACE_{name}.jsonl")),
    }
}

/// A trace flush that could not reach the filesystem: which path failed
/// and the underlying I/O error, so the caller can log it properly instead
/// of losing the failure to stderr.
#[derive(Debug)]
pub struct TraceFlushError {
    /// The path the trace was headed for.
    pub path: PathBuf,
    /// The I/O failure.
    pub source: std::io::Error,
}

impl std::fmt::Display for TraceFlushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "could not write trace {}: {}",
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for TraceFlushError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Writes the global registry's JSONL trace for run `name` (see
/// [`trace_path`]) and returns the path written, creating the `results/`
/// (or other parent) directory if it is missing. `Ok(None)` means spans
/// are not enabled and the filesystem was never touched; a write failure
/// comes back as a typed [`TraceFlushError`] the caller can log.
pub fn flush_trace(name: &str) -> Result<Option<PathBuf>, TraceFlushError> {
    if !global_level().spans_enabled() {
        return Ok(None);
    }
    let path = trace_path(name);
    match global().write_trace(&path) {
        Ok(()) => Ok(Some(path)),
        Err(source) => Err(TraceFlushError { path, source }),
    }
}

/// Emits an info-level event on the global registry (`format!` syntax).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::event($crate::EventLevel::Info, &format!($($arg)*))
    };
}

/// Emits a warning-level event on the global registry (`format!` syntax).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::event($crate::EventLevel::Warn, &format!($($arg)*))
    };
}
