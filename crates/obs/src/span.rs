//! Hierarchical spans: RAII-timed regions with key/value fields.

use crate::registry::Registry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Globally unique span ids (unique across threads and registries).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of currently open span ids on this thread (innermost last).
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A typed span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string field.
    Str(String),
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A floating-point field.
    F64(f64),
}

/// A finished span as recorded in the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Globally unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (dotted taxonomy, e.g. `pipeline.alignment`).
    pub name: String,
    /// Start offset from the registry epoch, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration, in microseconds.
    pub dur_us: u64,
    /// Attached key/value fields, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

pub(crate) struct ActiveSpan<'a> {
    registry: &'a Registry,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_us: u64,
    fields: Vec<(String, FieldValue)>,
}

/// An RAII guard for an open span. Created by [`Registry::span`] (or the
/// global [`crate::span`]); recording happens when the guard drops.
///
/// A guard created while spans are disabled is an inert no-op: every method
/// returns immediately and nothing is recorded.
pub struct SpanGuard<'a> {
    inner: Option<ActiveSpan<'a>>,
}

impl<'a> SpanGuard<'a> {
    /// An inert guard (spans disabled).
    pub(crate) fn disabled() -> SpanGuard<'a> {
        SpanGuard { inner: None }
    }

    pub(crate) fn open(registry: &'a Registry, name: &'static str) -> SpanGuard<'a> {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = STACK.with(|s| s.borrow().last().copied());
        STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            inner: Some(ActiveSpan {
                registry,
                id,
                parent,
                name,
                start: Instant::now(),
                start_us: registry.micros_since_epoch(),
                fields: Vec::new(),
            }),
        }
    }

    /// `true` when this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The span id (0 for an inert guard).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map(|s| s.id).unwrap_or(0)
    }

    /// Attaches a string field (builder style).
    pub fn with_str(mut self, key: &str, value: &str) -> SpanGuard<'a> {
        self.record_str(key, value);
        self
    }

    /// Attaches an unsigned integer field (builder style).
    pub fn with_u64(mut self, key: &str, value: u64) -> SpanGuard<'a> {
        self.record_u64(key, value);
        self
    }

    /// Attaches a floating-point field (builder style).
    pub fn with_f64(mut self, key: &str, value: f64) -> SpanGuard<'a> {
        self.record_f64(key, value);
        self
    }

    /// Records a string field on the open span.
    pub fn record_str(&mut self, key: &str, value: &str) {
        if let Some(span) = self.inner.as_mut() {
            span.fields
                .push((key.to_string(), FieldValue::Str(value.to_string())));
        }
    }

    /// Records an unsigned integer field on the open span.
    pub fn record_u64(&mut self, key: &str, value: u64) {
        if let Some(span) = self.inner.as_mut() {
            span.fields.push((key.to_string(), FieldValue::U64(value)));
        }
    }

    /// Records a signed integer field on the open span.
    pub fn record_i64(&mut self, key: &str, value: i64) {
        if let Some(span) = self.inner.as_mut() {
            span.fields.push((key.to_string(), FieldValue::I64(value)));
        }
    }

    /// Records a floating-point field on the open span.
    pub fn record_f64(&mut self, key: &str, value: f64) {
        if let Some(span) = self.inner.as_mut() {
            span.fields.push((key.to_string(), FieldValue::F64(value)));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(span) = self.inner.take() else {
            return;
        };
        // Pop this span from the thread-local stack. Guards normally drop in
        // LIFO order so the last entry is ours, but a guard moved across an
        // early return can drop out of order — remove by id to stay correct.
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|id| *id == span.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: span.id,
            parent: span.parent,
            name: span.name.to_string(),
            start_us: span.start_us,
            dur_us: span.start.elapsed().as_micros() as u64,
            fields: span.fields,
        };
        span.registry.push_span(record);
    }
}
