//! Request-scoped tracing: trace ids, per-stage timestamps, and a flight
//! recorder that retains the last N completed/failed requests.
//!
//! The serving stack (PRs 5–7) reports aggregate counters and histograms,
//! which answer "how is the fleet doing" but not "what happened to *this*
//! request". This module adds the request-scoped layer:
//!
//! - [`RequestCtx`] — a 64-bit trace id plus one microsecond timestamp per
//!   pipeline [`Stage`], minted at the net edge (or adopted from a
//!   client-supplied id) and threaded through router → batcher → worker.
//! - [`FlightRecorder`] — a fixed-capacity ring of [`RequestRecord`]s, one
//!   per finished request, dumpable as JSONL on demand and appended to an
//!   optional anomaly sink whenever a request ends abnormally (shed,
//!   panic, breaker rejection, queue-full).
//!
//! Timestamps are microseconds since a process-wide epoch taken on first
//! use ([`now_micros`]), so stamps from different threads are mutually
//! comparable and monotonic per request by construction.

use crate::json::Json;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The pipeline boundaries a request crosses, in order. This is the one
/// stage vocabulary shared by [`RequestCtx`] stamps, the per-stage latency
/// histograms, and the `stage` labels on the serving instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Frame (or in-process call) arrived at the serving edge.
    Accepted,
    /// Passed admission control (breaker + graph limits).
    Admitted,
    /// Placed on the bounded batcher queue.
    Enqueued,
    /// The batcher sealed the batch containing this request.
    BatchSealed,
    /// A worker began inference on the sealed batch.
    InferStart,
    /// Inference finished (successfully or by panic unwinding).
    InferEnd,
    /// The reply frame was written back to the client socket.
    ReplyWritten,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Accepted,
        Stage::Admitted,
        Stage::Enqueued,
        Stage::BatchSealed,
        Stage::InferStart,
        Stage::InferEnd,
        Stage::ReplyWritten,
    ];

    /// The canonical snake_case name used in labels, JSONL, and docs.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accepted => "accepted",
            Stage::Admitted => "admitted",
            Stage::Enqueued => "enqueued",
            Stage::BatchSealed => "batch_sealed",
            Stage::InferStart => "infer_start",
            Stage::InferEnd => "infer_end",
            Stage::ReplyWritten => "reply_written",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Microseconds since the process-wide trace epoch (taken on first call).
///
/// All stage stamps come from this clock, so timestamps recorded on
/// different threads are directly comparable.
pub fn now_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Mints a fresh, never-zero 64-bit trace id.
///
/// Ids come from an atomic counter passed through a splitmix64 finaliser,
/// so they are unique within the process and well spread across the id
/// space without any shared lock.
pub fn mint_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let mixed = splitmix64(NEXT.fetch_add(1, Ordering::Relaxed));
    if mixed == 0 {
        1
    } else {
        mixed
    }
}

/// Formats a trace id the way every dump and exemplar renders it: 16 hex
/// digits, zero-padded.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A request-scoped trace context: one 64-bit id plus a microsecond stamp
/// per [`Stage`]. Cheap to clone and move through channels; a disabled
/// context ([`RequestCtx::disabled`]) makes every stamp a no-op so the
/// tracing-off serve path pays almost nothing.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    trace_id: u64,
    stamps: [u64; Stage::ALL.len()],
    enabled: bool,
}

impl RequestCtx {
    /// Mints a context with a fresh process-unique trace id.
    pub fn mint() -> RequestCtx {
        RequestCtx::adopt(mint_trace_id())
    }

    /// Adopts a client-supplied trace id (0 falls back to minting).
    pub fn adopt(trace_id: u64) -> RequestCtx {
        RequestCtx {
            trace_id: if trace_id == 0 {
                mint_trace_id()
            } else {
                trace_id
            },
            stamps: [0; Stage::ALL.len()],
            enabled: true,
        }
    }

    /// A no-op context: id 0, every stamp ignored. Used when the engine is
    /// configured with tracing off.
    pub fn disabled() -> RequestCtx {
        RequestCtx {
            trace_id: 0,
            stamps: [0; Stage::ALL.len()],
            enabled: false,
        }
    }

    /// Whether stamps are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The trace id (0 for a disabled context).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Stamps `stage` with the current [`now_micros`] reading.
    pub fn stamp(&mut self, stage: Stage) {
        self.stamp_at(stage, now_micros());
    }

    /// Stamps `stage` with an explicit reading (used when the edge reads
    /// the clock before the context exists). Stamps are first-write-wins
    /// and clamped to at least 1 so 0 can mean "never stamped".
    pub fn stamp_at(&mut self, stage: Stage, at_us: u64) {
        if self.enabled && self.stamps[stage.index()] == 0 {
            self.stamps[stage.index()] = at_us.max(1);
        }
    }

    /// The stamp for `stage`, if it was recorded.
    pub fn stage_us(&self, stage: Stage) -> Option<u64> {
        match self.stamps[stage.index()] {
            0 => None,
            us => Some(us),
        }
    }

    /// Microseconds elapsed between two stamped stages (saturating), or
    /// `None` if either stage was never stamped.
    pub fn stage_delta_us(&self, from: Stage, to: Stage) -> Option<u64> {
        Some(self.stage_us(to)?.saturating_sub(self.stage_us(from)?))
    }
}

/// How a traced request left the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The reply was produced and handed to the caller.
    Completed,
    /// Shed by the batcher because its deadline expired in the queue.
    ShedDeadline,
    /// Lost to a worker panic mid-inference.
    WorkerPanic,
    /// The reply was produced but dropped before delivery (fault
    /// injection or a hung-up caller).
    ReplyDropped,
    /// Refused at admission by the circuit breaker.
    BreakerRejected,
    /// Refused because the bounded queue was full.
    QueueFull,
    /// Refused by graph admission limits before enqueue.
    AdmissionRejected,
}

impl TraceOutcome {
    /// Canonical snake_case name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            TraceOutcome::Completed => "completed",
            TraceOutcome::ShedDeadline => "shed_deadline",
            TraceOutcome::WorkerPanic => "worker_panic",
            TraceOutcome::ReplyDropped => "reply_dropped",
            TraceOutcome::BreakerRejected => "breaker_rejected",
            TraceOutcome::QueueFull => "queue_full",
            TraceOutcome::AdmissionRejected => "admission_rejected",
        }
    }

    /// Anything other than a clean completion counts as an anomaly and is
    /// mirrored to the recorder's anomaly sink.
    pub fn is_anomaly(self) -> bool {
        !matches!(self, TraceOutcome::Completed)
    }
}

/// One finished request as retained by the [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The request's trace id.
    pub trace_id: u64,
    /// Present stage stamps in pipeline order (µs since the trace epoch).
    pub stamps: Vec<(Stage, u64)>,
    /// How the request ended.
    pub outcome: TraceOutcome,
    /// Human-readable cause; always set for anomalies (e.g. the worker's
    /// panic message, or how long a shed request overstayed its deadline).
    pub cause: Option<String>,
    /// Sequence number of the batch that carried the request, if it was
    /// ever sealed into one.
    pub batch_seq: Option<u64>,
    /// Size of that batch (0 if never batched).
    pub batch_size: usize,
}

impl RequestRecord {
    /// Builds a record from a context, collecting its present stamps.
    pub fn from_ctx(ctx: &RequestCtx, outcome: TraceOutcome) -> RequestRecord {
        let stamps = Stage::ALL
            .iter()
            .filter_map(|&s| ctx.stage_us(s).map(|us| (s, us)))
            .collect();
        RequestRecord {
            trace_id: ctx.trace_id(),
            stamps,
            outcome,
            cause: None,
            batch_seq: None,
            batch_size: 0,
        }
    }

    /// Attaches a cause message.
    pub fn with_cause(mut self, cause: impl Into<String>) -> RequestRecord {
        self.cause = Some(cause.into());
        self
    }

    /// Attaches the sealed batch's sequence number and size.
    pub fn with_batch(mut self, seq: u64, size: usize) -> RequestRecord {
        self.batch_seq = Some(seq);
        self.batch_size = size;
        self
    }

    /// Whether the recorded stamps are non-decreasing in pipeline order.
    /// True by construction for stamps taken off [`now_micros`]; dumps
    /// assert it anyway so a clock regression is loud.
    pub fn stamps_monotonic(&self) -> bool {
        self.stamps.windows(2).all(|w| w[0].1 <= w[1].1)
    }

    /// Serialises to the flight-recorder JSONL object. Trace ids render as
    /// 16-digit hex strings (a u64 does not survive a JSON f64).
    pub fn to_json(&self) -> Json {
        let stages = self
            .stamps
            .iter()
            .map(|&(s, us)| (s.name().to_string(), Json::Num(us as f64)))
            .collect();
        Json::Obj(vec![
            (
                "trace_id".to_string(),
                Json::Str(format_trace_id(self.trace_id)),
            ),
            (
                "outcome".to_string(),
                Json::Str(self.outcome.name().to_string()),
            ),
            (
                "cause".to_string(),
                match &self.cause {
                    Some(c) => Json::Str(c.clone()),
                    None => Json::Null,
                },
            ),
            (
                "batch_seq".to_string(),
                match self.batch_seq {
                    Some(seq) => Json::Num(seq as f64),
                    None => Json::Null,
                },
            ),
            ("batch_size".to_string(), Json::Num(self.batch_size as f64)),
            ("stages".to_string(), Json::Obj(stages)),
        ])
    }
}

/// A fixed-capacity ring of the last N finished requests, plus a smaller
/// ring of the last anomalies so a burst of healthy traffic cannot evict
/// the interesting failures before anyone looks.
///
/// Recording is one short mutex hold (push + bounded pop); counters are
/// lock-free. Anomalous records are additionally appended, as JSONL, to an
/// optional sink file the moment they happen — the "automatic dump".
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<RequestRecord>>,
    anomaly_ring: Mutex<VecDeque<RequestRecord>>,
    recorded: AtomicU64,
    evicted: AtomicU64,
    anomalies: AtomicU64,
    anomaly_sink: Mutex<Option<PathBuf>>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` requests (min 1). The
    /// anomaly ring keeps `capacity / 4` records (min 16).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            anomaly_ring: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            anomalies: AtomicU64::new(0),
            anomaly_sink: Mutex::new(None),
        }
    }

    /// Routes anomaly records to a JSONL file as they happen (`None`
    /// disables). Parent directories are created on first write.
    pub fn set_anomaly_sink(&self, path: Option<PathBuf>) {
        *lock_ok(&self.anomaly_sink) = path;
    }

    /// Records a finished request, evicting the oldest when full.
    pub fn record(&self, record: RequestRecord) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if record.outcome.is_anomaly() {
            self.anomalies.fetch_add(1, Ordering::Relaxed);
            self.append_anomaly(&record);
            let cap = (self.capacity / 4).max(16);
            let mut ring = lock_ok(&self.anomaly_ring);
            if ring.len() >= cap {
                ring.pop_front();
            }
            ring.push_back(record.clone());
        }
        let mut ring = lock_ok(&self.ring);
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Back-fills the reply-written stamp on an already-recorded request.
    ///
    /// The engine records a request when the worker resolves it, but the
    /// reply frame leaves the socket later, on the connection thread; this
    /// scans newest-first (the record is almost always near the tail) and
    /// returns whether the trace id was found.
    pub fn stamp_reply_written(&self, trace_id: u64, at_us: u64) -> bool {
        if trace_id == 0 {
            return false;
        }
        let mut ring = lock_ok(&self.ring);
        for record in ring.iter_mut().rev() {
            if record.trace_id == trace_id {
                if record.stamps.last().map(|&(s, _)| s) != Some(Stage::ReplyWritten) {
                    let floor = record.stamps.last().map(|&(_, us)| us).unwrap_or(0);
                    record.stamps.push((Stage::ReplyWritten, at_us.max(floor)));
                }
                return true;
            }
        }
        false
    }

    /// A copy of the main ring, oldest first.
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        lock_ok(&self.ring).iter().cloned().collect()
    }

    /// A copy of the anomaly ring, oldest first.
    pub fn anomaly_snapshot(&self) -> Vec<RequestRecord> {
        lock_ok(&self.anomaly_ring).iter().cloned().collect()
    }

    /// The main ring as JSONL, one record per line, oldest first.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.snapshot() {
            out.push_str(&record.to_json().to_json());
            out.push('\n');
        }
        out
    }

    /// Writes [`FlightRecorder::export_jsonl`] to `path`, creating parent
    /// directories as needed.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.export_jsonl())
    }

    /// Total requests recorded since construction.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records evicted from the main ring.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Anomalous records seen since construction.
    pub fn anomalies(&self) -> u64 {
        self.anomalies.load(Ordering::Relaxed)
    }

    /// Main-ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently retained in the main ring.
    pub fn len(&self) -> usize {
        lock_ok(&self.ring).len()
    }

    /// Whether the main ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn append_anomaly(&self, record: &RequestRecord) {
        let sink = lock_ok(&self.anomaly_sink);
        let Some(path) = sink.as_ref() else { return };
        let line = format!("{}\n", record.to_json().to_json());
        let result = (|| -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            file.write_all(line.as_bytes())
        })();
        if let Err(err) = result {
            eprintln!(
                "[obs] flight recorder: failed to append anomaly to {}: {err}",
                path.display()
            );
        }
    }
}

/// Mutex lock that shrugs off poisoning: the recorder holds plain data and
/// a panicked writer leaves it consistent enough to keep serving.
fn lock_ok<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
