//! Append-only JSONL journals with typed errors and torn-tail salvage.
//!
//! Two subsystems keep crash-safe request/run logs: the bench crate's
//! fold journal (PR 1, checkpoint/resume for table runs) and the model
//! lifecycle controller's rollout journal. Both need the same machinery —
//! open-or-truncate, append one JSON record per line, flush so a kill
//! right after the call loses nothing, and survive reopening a file whose
//! final record was torn by a mid-write kill. This module hosts that
//! machinery once, in two framings:
//!
//! - [`Framing::Plain`] — one bare JSON object per line. A line that does
//!   not parse is *skipped* on replay (counted, never fatal). This is the
//!   PR 1 bench-journal format, unchanged byte for byte.
//! - [`Framing::Checked`] — each line is length-prefixed and checksummed:
//!
//!   ```text
//!   J1 <len:8 lowercase hex> <crc32:8 lowercase hex> <json>\n
//!   ```
//!
//!   where `len` is the byte length of `<json>` and `crc32` is the
//!   IEEE CRC-32 of those bytes. On replay the file is scanned record by
//!   record; at the first damaged record the file is **truncated back to
//!   the end of the last intact record** (the salvage is reported in
//!   [`Replay::salvaged`]) and appending resumes from there. A torn
//!   final record is therefore recovered, not fatal — the crash-safety
//!   contract the lifecycle journal needs.
//!
//! Appends take the file mutex, so a journal can be shared across
//! threads; [`Journal::append_sync`] additionally fsyncs, for records
//! (like lifecycle state transitions) that must survive power loss, not
//! just a process kill.

use crate::json::Json;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// How records are laid out on disk. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Bare JSON per line; damaged lines are skipped on replay.
    Plain,
    /// `J1 <len> <crc32> <json>` per line; a damaged tail is truncated
    /// away (salvage) on replay.
    Checked,
}

/// A journal operation that failed, typed so callers can distinguish
/// filesystem trouble from a structurally damaged journal.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// A record could not be encoded (the JSON serialised to something
    /// containing a raw newline — impossible for [`Json`] values, kept
    /// typed rather than panicking).
    Unencodable {
        /// Why the record was refused.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::Unencodable { reason } => {
                write!(f, "record cannot be journaled: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Unencodable { .. } => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// What a truncating salvage removed from a damaged journal tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Salvage {
    /// File size the journal was truncated back to (end of the last
    /// intact record).
    pub kept_bytes: u64,
    /// Bytes discarded after that point.
    pub dropped_bytes: u64,
}

/// The result of replaying an existing journal on open.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every intact record, in append order.
    pub records: Vec<Json>,
    /// Damaged lines skipped ([`Framing::Plain`] only; `Checked` journals
    /// truncate instead of skipping).
    pub skipped_lines: usize,
    /// Present when a damaged tail was truncated away
    /// ([`Framing::Checked`] only).
    pub salvaged: Option<Salvage>,
}

/// An append-only JSONL journal. Cheap to share behind an `Arc`; appends
/// serialise on an internal mutex.
pub struct Journal {
    file: Mutex<File>,
    framing: Framing,
    path: PathBuf,
}

impl Journal {
    /// Opens the journal at `path`, creating parent directories as
    /// needed. With `resume` set, existing records are replayed (and a
    /// damaged `Checked` tail truncated away) and new appends land after
    /// them; without it any existing file is truncated and the replay is
    /// empty.
    pub fn open(
        path: &Path,
        framing: Framing,
        resume: bool,
    ) -> Result<(Journal, Replay), JournalError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut replay = Replay::default();
        if resume && path.exists() {
            let bytes = std::fs::read(path)?;
            let salvage_at = replay_bytes(&bytes, framing, &mut replay);
            if let Some(keep) = salvage_at {
                replay.salvaged = Some(Salvage {
                    kept_bytes: keep,
                    dropped_bytes: bytes.len() as u64 - keep,
                });
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .append(false)
            .truncate(!resume)
            .open(path)?;
        if resume {
            if let Some(salvage) = &replay.salvaged {
                // Truncate the damaged tail so the next append starts a
                // clean record; fsync so the repair itself is durable.
                file.set_len(salvage.kept_bytes)?;
                file.sync_all()?;
            }
        }
        use std::io::Seek;
        let mut file = file;
        file.seek(io::SeekFrom::End(0))?;
        Ok((
            Journal {
                file: Mutex::new(file),
                framing,
                path: path.to_path_buf(),
            },
            replay,
        ))
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The framing this journal was opened with.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// Appends one record and flushes it — a process kill after this call
    /// returns loses nothing (the OS still holds the page; see
    /// [`Journal::append_sync`] for power-loss durability).
    pub fn append(&self, record: &Json) -> Result<(), JournalError> {
        self.write_record(record, false)
    }

    /// Appends one record, flushes, and fsyncs the file. Use for records
    /// that must not be lost even to power failure (e.g. lifecycle state
    /// transitions).
    pub fn append_sync(&self, record: &Json) -> Result<(), JournalError> {
        self.write_record(record, true)
    }

    /// Fsyncs everything appended so far.
    pub fn sync(&self) -> Result<(), JournalError> {
        let file = lock_ok(&self.file);
        file.sync_all()?;
        Ok(())
    }

    fn write_record(&self, record: &Json, sync: bool) -> Result<(), JournalError> {
        let body = record.to_json();
        if body.contains('\n') {
            return Err(JournalError::Unencodable {
                reason: "serialised record contains a raw newline".to_string(),
            });
        }
        let line = match self.framing {
            Framing::Plain => format!("{body}\n"),
            Framing::Checked => {
                let bytes = body.as_bytes();
                format!("J1 {:08x} {:08x} {body}\n", bytes.len(), crc32(bytes))
            }
        };
        let mut file = lock_ok(&self.file);
        file.write_all(line.as_bytes())?;
        file.flush()?;
        if sync {
            file.sync_all()?;
        }
        Ok(())
    }
}

/// Replays `bytes`, filling `replay.records`/`skipped_lines`. Returns
/// `Some(offset)` when a `Checked` journal must be truncated back to
/// `offset` (first damaged record), `None` when the whole file is intact.
fn replay_bytes(bytes: &[u8], framing: Framing, replay: &mut Replay) -> Option<u64> {
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        let (line, consumed, terminated) = match rest.iter().position(|&b| b == b'\n') {
            Some(nl) => (&rest[..nl], nl + 1, true),
            None => (rest, rest.len(), false),
        };
        match framing {
            Framing::Plain => {
                let intact = terminated
                    && match std::str::from_utf8(line) {
                        Ok(text) => {
                            let text = text.trim();
                            if text.is_empty() {
                                offset += consumed;
                                continue;
                            }
                            match Json::parse(text) {
                                Ok(value) => {
                                    replay.records.push(value);
                                    true
                                }
                                Err(_) => false,
                            }
                        }
                        Err(_) => false,
                    };
                if !intact {
                    // Torn or hand-damaged line: skip it, keep reading.
                    replay.skipped_lines += 1;
                }
                offset += consumed;
            }
            Framing::Checked => match parse_checked_line(line, terminated) {
                Some(value) => {
                    replay.records.push(value);
                    offset += consumed;
                }
                // First damaged record: everything from here on is
                // untrustworthy — truncate back to the last intact one.
                None => return Some(offset as u64),
            },
        }
    }
    None
}

/// Parses one `J1 <len> <crc> <json>` line; `None` means damaged.
fn parse_checked_line(line: &[u8], terminated: bool) -> Option<Json> {
    if !terminated {
        return None;
    }
    let text = std::str::from_utf8(line).ok()?;
    let rest = text.strip_prefix("J1 ")?;
    let len_hex = rest.get(..8)?;
    let rest = rest.get(8..)?.strip_prefix(' ')?;
    let crc_hex = rest.get(..8)?;
    let body = rest.get(8..)?.strip_prefix(' ')?;
    let len = usize::from_str_radix(len_hex, 16).ok()?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    if body.len() != len || crc32(body.as_bytes()) != crc {
        return None;
    }
    Json::parse(body).ok()
}

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    });
    let mut crc = u32::MAX;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

fn lock_ok<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("deepmap-obs-journal-{tag}-{}", std::process::id()))
    }

    fn rec(i: u64) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str("test".into())),
            ("i".into(), Json::Num(i as f64)),
        ])
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn plain_roundtrip_and_skip() {
        let path = tmp_path("plain");
        {
            let (journal, replay) = Journal::open(&path, Framing::Plain, false).unwrap();
            assert!(replay.records.is_empty());
            journal.append(&rec(0)).unwrap();
            journal.append(&rec(1)).unwrap();
        }
        // Damage the middle by appending garbage then one more good record.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{torn garbage\n")
            .unwrap();
        {
            let (journal, replay) = Journal::open(&path, Framing::Plain, true).unwrap();
            assert_eq!(replay.records.len(), 2);
            assert_eq!(replay.skipped_lines, 1);
            assert!(replay.salvaged.is_none());
            journal.append(&rec(2)).unwrap();
        }
        let (_, replay) = Journal::open(&path, Framing::Plain, true).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.skipped_lines, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checked_roundtrip() {
        let path = tmp_path("checked");
        {
            let (journal, _) = Journal::open(&path, Framing::Checked, false).unwrap();
            journal.append(&rec(0)).unwrap();
            journal.append_sync(&rec(1)).unwrap();
        }
        let (_, replay) = Journal::open(&path, Framing::Checked, true).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.salvaged.is_none());
        assert_eq!(replay.records[1].get("i").unwrap().as_u64(), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checked_torn_tail_is_truncated_and_salvaged() {
        let path = tmp_path("torn");
        {
            let (journal, _) = Journal::open(&path, Framing::Checked, false).unwrap();
            journal.append(&rec(0)).unwrap();
            journal.append(&rec(1)).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let first_nl = full.iter().position(|&b| b == b'\n').unwrap();
        let keep = first_nl + 1;
        // Kill mid-write: the second record stops partway through.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (journal, replay) = Journal::open(&path, Framing::Checked, true).unwrap();
        assert_eq!(replay.records.len(), 1);
        let salvage = replay.salvaged.expect("tail should be salvaged");
        assert_eq!(salvage.kept_bytes, keep as u64);
        assert!(salvage.dropped_bytes > 0);
        // The file was physically truncated and appending resumes clean.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep as u64);
        journal.append(&rec(2)).unwrap();
        drop(journal);
        let (_, replay) = Journal::open(&path, Framing::Checked, true).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.salvaged.is_none());
        assert_eq!(replay.records[1].get("i").unwrap().as_u64(), Some(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checked_corrupt_crc_truncates_from_damage() {
        let path = tmp_path("crc");
        {
            let (journal, _) = Journal::open(&path, Framing::Checked, false).unwrap();
            journal.append(&rec(0)).unwrap();
            journal.append(&rec(1)).unwrap();
            journal.append(&rec(2)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        // Flip a byte inside the second record's JSON body.
        bytes[first_nl + 25] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Journal::open(&path, Framing::Checked, true).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.salvaged.is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_open_truncates() {
        let path = tmp_path("trunc");
        {
            let (journal, _) = Journal::open(&path, Framing::Checked, false).unwrap();
            journal.append(&rec(0)).unwrap();
        }
        let (_, replay) = Journal::open(&path, Framing::Checked, false).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_appends_all_land() {
        let path = tmp_path("concurrent");
        let (journal, _) = Journal::open(&path, Framing::Checked, false).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let journal = &journal;
                scope.spawn(move || {
                    for i in 0..8 {
                        journal.append(&rec(t * 8 + i)).unwrap();
                    }
                });
            }
        });
        drop(journal);
        let (_, replay) = Journal::open(&path, Framing::Checked, true).unwrap();
        assert_eq!(replay.records.len(), 32);
        assert!(replay.salvaged.is_none());
        std::fs::remove_file(&path).ok();
    }
}
