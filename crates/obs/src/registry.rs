//! The metric/span registry: named instruments, recorded spans and events,
//! and the JSONL / Prometheus-style exporters.

use crate::json::Json;
use crate::level::{LevelCell, TraceLevel};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::span::{FieldValue, SpanGuard, SpanRecord};
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Severity of a leveled [`Registry::event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventLevel {
    /// Progress information; printed plainly.
    Info,
    /// Something suspicious but survivable; printed with a `warning:` prefix.
    Warn,
}

impl EventLevel {
    /// Lowercase name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
        }
    }
}

/// A recorded leveled event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Severity.
    pub level: EventLevel,
    /// Message text.
    pub message: String,
    /// Offset from the registry epoch, in microseconds.
    pub at_us: u64,
}

/// Aggregate view of one span name, from [`Registry::stage_summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Span name.
    pub name: String,
    /// How many spans with this name finished.
    pub count: u64,
    /// Total wall-clock seconds across those spans.
    pub total_s: f64,
    /// Mean seconds per span.
    pub mean_s: f64,
    /// Fastest span, seconds.
    pub min_s: f64,
    /// Slowest span, seconds.
    pub max_s: f64,
}

/// A thread-safe home for named metrics, spans, and events.
///
/// Most code uses the process-global registry via the free functions in the
/// crate root; a private `Registry` is useful for components whose metrics
/// must stay live regardless of `DEEPMAP_TRACE` (the serve engine) and for
/// hermetic tests.
pub struct Registry {
    level: LevelCell,
    epoch: Instant,
    counters: Mutex<Vec<Slot<Counter>>>,
    gauges: Mutex<Vec<Slot<Gauge>>>,
    histograms: Mutex<Vec<Slot<Histogram>>>,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
}

/// One registered instrument: its name, the labels it was registered with
/// (e.g. `stage="batch_sealed"`), and the shared instrument itself.
struct Slot<T> {
    name: String,
    labels: Vec<(String, String)>,
    inst: Arc<T>,
}

impl Registry {
    /// An empty registry at the given level.
    pub fn new(level: TraceLevel) -> Registry {
        Registry {
            level: LevelCell::new(level),
            epoch: Instant::now(),
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Current level.
    pub fn level(&self) -> TraceLevel {
        self.level.get()
    }

    /// Changes the level at runtime.
    pub fn set_level(&self, level: TraceLevel) {
        self.level.set(level);
    }

    pub(crate) fn micros_since_epoch(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_labeled(name, &[])
    }

    /// [`counter`](Registry::counter) with instrument-level labels baked in
    /// at registration (e.g. `stage="accepted"`). Lookup is by name alone;
    /// the first registration's labels win.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut counters = self.counters.lock().expect("counter registry");
        if let Some(slot) = counters.iter().find(|s| s.name == name) {
            return Arc::clone(&slot.inst);
        }
        let c = Arc::new(Counter::new());
        counters.push(Slot {
            name: name.to_string(),
            labels: own_labels(labels),
            inst: Arc::clone(&c),
        });
        c
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_labeled(name, &[])
    }

    /// [`gauge`](Registry::gauge) with instrument-level labels baked in at
    /// registration. Lookup is by name alone.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().expect("gauge registry");
        if let Some(slot) = gauges.iter().find(|s| s.name == name) {
            return Arc::clone(&slot.inst);
        }
        let g = Arc::new(Gauge::new());
        gauges.push(Slot {
            name: name.to_string(),
            labels: own_labels(labels),
            inst: Arc::clone(&g),
        });
        g
    }

    /// The histogram named `name`, created on first use with the default
    /// (duration-oriented) bounds.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_labeled(name, &[])
    }

    /// [`histogram`](Registry::histogram) with instrument-level labels baked
    /// in at registration. Lookup is by name alone.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("histogram registry");
        if let Some(slot) = histograms.iter().find(|s| s.name == name) {
            return Arc::clone(&slot.inst);
        }
        let h = Arc::new(Histogram::new());
        histograms.push(Slot {
            name: name.to_string(),
            labels: own_labels(labels),
            inst: Arc::clone(&h),
        });
        h
    }

    /// Opens a span named `name`. Inert (and free) unless the registry level
    /// is [`TraceLevel::Spans`].
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if self.level().spans_enabled() {
            SpanGuard::open(self, name)
        } else {
            SpanGuard::disabled()
        }
    }

    pub(crate) fn push_span(&self, record: SpanRecord) {
        self.spans.lock().expect("span store").push(record);
    }

    /// Records (and prints to stderr) a leveled event. Dropped entirely at
    /// [`TraceLevel::Off`]; recorded into the trace at [`TraceLevel::Spans`].
    pub fn event(&self, level: EventLevel, message: &str) {
        let trace_level = self.level();
        if !trace_level.metrics_enabled() {
            return;
        }
        match level {
            EventLevel::Info => eprintln!("{message}"),
            EventLevel::Warn => eprintln!("warning: {message}"),
        }
        if trace_level.spans_enabled() {
            self.events.lock().expect("event store").push(EventRecord {
                level,
                message: message.to_string(),
                at_us: self.micros_since_epoch(),
            });
        }
    }

    /// All finished spans, in completion order.
    pub fn snapshot_spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span store").clone()
    }

    /// All recorded events, in order.
    pub fn snapshot_events(&self) -> Vec<EventRecord> {
        self.events.lock().expect("event store").clone()
    }

    /// Serialises spans and events as JSON Lines: one object per line, with
    /// a `"kind"` discriminator (`span` / `event`). Spans carry
    /// `id`/`parent`/`name`/`start_us`/`dur_us` plus a `fields` object.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.snapshot_spans() {
            let mut obj = vec![
                ("kind".to_string(), Json::Str("span".to_string())),
                ("id".to_string(), Json::Num(span.id as f64)),
                (
                    "parent".to_string(),
                    match span.parent {
                        Some(p) => Json::Num(p as f64),
                        None => Json::Null,
                    },
                ),
                ("name".to_string(), Json::Str(span.name.clone())),
                ("start_us".to_string(), Json::Num(span.start_us as f64)),
                ("dur_us".to_string(), Json::Num(span.dur_us as f64)),
            ];
            if !span.fields.is_empty() {
                let fields = span
                    .fields
                    .iter()
                    .map(|(k, v)| {
                        let value = match v {
                            FieldValue::Str(s) => Json::Str(s.clone()),
                            FieldValue::U64(n) => Json::Num(*n as f64),
                            FieldValue::I64(n) => Json::Num(*n as f64),
                            FieldValue::F64(n) => Json::Num(*n),
                        };
                        (k.clone(), value)
                    })
                    .collect();
                obj.push(("fields".to_string(), Json::Obj(fields)));
            }
            out.push_str(&Json::Obj(obj).to_json());
            out.push('\n');
        }
        for event in self.snapshot_events() {
            let obj = Json::Obj(vec![
                ("kind".to_string(), Json::Str("event".to_string())),
                (
                    "level".to_string(),
                    Json::Str(event.level.name().to_string()),
                ),
                ("message".to_string(), Json::Str(event.message.clone())),
                ("at_us".to_string(), Json::Num(event.at_us as f64)),
            ]);
            out.push_str(&obj.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL trace to `path`, creating parent directories.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.export_jsonl().as_bytes())?;
        Ok(())
    }

    /// Renders every instrument in the Prometheus text exposition format.
    /// Metric names are prefixed `deepmap_` with dots mapped to underscores;
    /// gauges also emit a `_peak` companion for their high-water mark.
    pub fn render_prometheus(&self) -> String {
        self.render_prometheus_labeled(&[])
    }

    /// [`render_prometheus`](Registry::render_prometheus) with a fixed set
    /// of labels attached to every series — how a multi-tenant scraper
    /// keeps several registries with identical metric names apart (e.g.
    /// one inference engine per resident model, each rendered with
    /// `model="<name>"`). Histogram series merge the labels with their own
    /// `le` bucket label.
    pub fn render_prometheus_labeled(&self, labels: &[(&str, &str)]) -> String {
        // Call-time labels first (e.g. model="…"), then the labels baked in
        // at instrument registration (e.g. stage="…"). Values are escaped
        // so hostile-but-valid names cannot corrupt the exposition.
        let join = |slot_labels: &[(String, String)]| -> String {
            labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
                .chain(
                    slot_labels
                        .iter()
                        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))),
                )
                .collect::<Vec<_>>()
                .join(",")
        };
        let braced = |joined: &str| -> String {
            if joined.is_empty() {
                String::new()
            } else {
                format!("{{{joined}}}")
            }
        };
        let mut out = String::new();
        for slot in self.counters.lock().expect("counter registry").iter() {
            let name = metric_name(&slot.name);
            let plain = braced(&join(&slot.labels));
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name}{plain} {}\n", slot.inst.get()));
        }
        for slot in self.gauges.lock().expect("gauge registry").iter() {
            let name = metric_name(&slot.name);
            let plain = braced(&join(&slot.labels));
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name}{plain} {}\n", slot.inst.get()));
            out.push_str(&format!("# TYPE {name}_peak gauge\n"));
            out.push_str(&format!("{name}_peak{plain} {}\n", slot.inst.max()));
        }
        for slot in self.histograms.lock().expect("histogram registry").iter() {
            let name = metric_name(&slot.name);
            let joined = join(&slot.labels);
            let plain = braced(&joined);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for bucket in slot.inst.buckets() {
                cumulative += bucket.count;
                let le = if bucket.upper_bound.is_finite() {
                    format!("{}", bucket.upper_bound)
                } else {
                    "+Inf".to_string()
                };
                let bucket_labels = if joined.is_empty() {
                    format!("{{le=\"{le}\"}}")
                } else {
                    format!("{{{joined},le=\"{le}\"}}")
                };
                // OpenMetrics-style exemplar: the most recent traced
                // observation in this bucket, pointing at a flight-recorder
                // trace id.
                let exemplar = match bucket.exemplar {
                    Some((trace_id, value)) => {
                        format!(" # {{trace_id=\"{trace_id:016x}\"}} {value}")
                    }
                    None => String::new(),
                };
                out.push_str(&format!(
                    "{name}_bucket{bucket_labels} {cumulative}{exemplar}\n"
                ));
            }
            out.push_str(&format!("{name}_sum{plain} {}\n", slot.inst.sum()));
            out.push_str(&format!("{name}_count{plain} {}\n", slot.inst.count()));
        }
        out
    }

    /// Aggregates finished spans by name, sorted by total time descending —
    /// the per-stage breakdown written into `results/BENCH_*_stages.json`.
    pub fn stage_summary(&self) -> Vec<StageSummary> {
        let spans = self.snapshot_spans();
        let mut stages: Vec<StageSummary> = Vec::new();
        for span in &spans {
            let seconds = span.dur_us as f64 / 1e6;
            match stages.iter_mut().find(|s| s.name == span.name) {
                Some(stage) => {
                    stage.count += 1;
                    stage.total_s += seconds;
                    stage.min_s = stage.min_s.min(seconds);
                    stage.max_s = stage.max_s.max(seconds);
                }
                None => stages.push(StageSummary {
                    name: span.name.clone(),
                    count: 1,
                    total_s: seconds,
                    mean_s: 0.0,
                    min_s: seconds,
                    max_s: seconds,
                }),
            }
        }
        for stage in &mut stages {
            stage.mean_s = stage.total_s / stage.count as f64;
        }
        stages.sort_by(|a, b| {
            b.total_s
                .partial_cmp(&a.total_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        stages
    }

    /// Drops all recorded spans and events (metrics keep their values).
    pub fn clear_trace(&self) {
        self.spans.lock().expect("span store").clear();
        self.events.lock().expect("event store").clear();
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("level", &self.level())
            .field("spans", &self.spans.lock().expect("span store").len())
            .finish()
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Escapes a label value per the Prometheus exposition rules: backslash,
/// double quote, and newline must be escaped so a hostile-but-valid model
/// name (they can contain any byte the wire accepts) cannot break out of
/// the quoted label or smuggle extra series into the scrape.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `pipeline.alignment` → `deepmap_pipeline_alignment`; characters outside
/// `[A-Za-z0-9_]` become `_`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("deepmap_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let reg = Registry::new(TraceLevel::Summary);
        reg.counter("a").inc();
        reg.counter("a").inc();
        assert_eq!(reg.counter("a").get(), 2);
        assert_eq!(reg.counter("b").get(), 0);
    }

    #[test]
    fn metric_name_sanitizes() {
        assert_eq!(
            metric_name("pipeline.alignment"),
            "deepmap_pipeline_alignment"
        );
        assert_eq!(metric_name("a-b c"), "deepmap_a_b_c");
    }

    #[test]
    fn labeled_rendering_tags_every_series() {
        let reg = Registry::new(TraceLevel::Summary);
        reg.counter("serve.requests_completed").inc();
        reg.gauge("serve.queue_depth").add(3);
        reg.histogram("serve.latency_seconds").observe(0.01);
        let text = reg.render_prometheus_labeled(&[("model", "mutag")]);
        assert!(text.contains("deepmap_serve_requests_completed{model=\"mutag\"} 1"));
        assert!(text.contains("deepmap_serve_queue_depth{model=\"mutag\"} 3"));
        assert!(text.contains("deepmap_serve_queue_depth_peak{model=\"mutag\"} 3"));
        assert!(text.contains("deepmap_serve_latency_seconds_count{model=\"mutag\"} 1"));
        assert!(
            text.contains("deepmap_serve_latency_seconds_bucket{model=\"mutag\",le=\""),
            "histogram buckets must merge the model label with le: {text}"
        );
        // The unlabelled path is byte-for-byte what it always was.
        assert!(reg
            .render_prometheus()
            .contains("deepmap_serve_requests_completed 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new(TraceLevel::Summary);
        reg.counter("serve.requests_completed").inc();
        let text = reg.render_prometheus_labeled(&[("model", "a\\b\"c\nd")]);
        assert!(
            text.contains("deepmap_serve_requests_completed{model=\"a\\\\b\\\"c\\nd\"} 1"),
            "hostile label values must be escaped: {text}"
        );
    }

    #[test]
    fn instrument_labels_render_and_merge_with_call_labels() {
        let reg = Registry::new(TraceLevel::Summary);
        reg.counter_labeled("serve.conn_frames_in", &[("stage", "accepted")])
            .inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains("deepmap_serve_conn_frames_in{stage=\"accepted\"} 1"),
            "{text}"
        );
        let labeled = reg.render_prometheus_labeled(&[("model", "mutag")]);
        assert!(
            labeled.contains("deepmap_serve_conn_frames_in{model=\"mutag\",stage=\"accepted\"} 1"),
            "call-time labels must precede instrument labels: {labeled}"
        );
    }

    #[test]
    fn multiple_instrument_labels_render_in_registration_order() {
        // The serve tier registers its latency histogram with two baked-in
        // labels (stage + precision); all of them must survive rendering,
        // merge with `le` on buckets, and sit after any call-time labels.
        let reg = Registry::new(TraceLevel::Summary);
        let h = reg.histogram_labeled(
            "serve.latency_seconds",
            &[("stage", "infer_end"), ("precision", "int8")],
        );
        h.observe(0.25);
        let text = reg.render_prometheus();
        assert!(
            text.contains(
                "deepmap_serve_latency_seconds_count{stage=\"infer_end\",precision=\"int8\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "deepmap_serve_latency_seconds_bucket{stage=\"infer_end\",precision=\"int8\",le=\""
            ),
            "buckets must merge every instrument label with le: {text}"
        );
        let labeled = reg.render_prometheus_labeled(&[("model", "mutag")]);
        assert!(
            labeled.contains(
                "deepmap_serve_latency_seconds_count{model=\"mutag\",stage=\"infer_end\",precision=\"int8\"} 1"
            ),
            "call-time labels must precede every instrument label: {labeled}"
        );
    }

    #[test]
    fn exemplars_render_openmetrics_style() {
        let reg = Registry::new(TraceLevel::Summary);
        let h = reg.histogram("serve.latency_seconds");
        h.observe_with_exemplar(0.5e-6, 0xDEAD_BEEF);
        let text = reg.render_prometheus();
        assert!(
            text.contains("# {trace_id=\"00000000deadbeef\"}"),
            "bucket exemplar must carry the trace id: {text}"
        );
    }

    #[test]
    fn spans_disabled_below_spans_level() {
        let reg = Registry::new(TraceLevel::Summary);
        {
            let span = reg.span("quiet");
            assert!(!span.is_recording());
        }
        assert!(reg.snapshot_spans().is_empty());
        reg.set_level(TraceLevel::Spans);
        {
            let _span = reg.span("loud");
        }
        assert_eq!(reg.snapshot_spans().len(), 1);
    }
}
