//! Lock-free named metrics: counters, gauges, and fixed-bucket histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. queue depth) that also tracks its
/// high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds `delta` (may be negative) and returns the new value. The
    /// high-water mark is updated when the new value exceeds it.
    pub fn add(&self, delta: i64) -> i64 {
        let new = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max.fetch_max(new, Ordering::Relaxed);
        new
    }

    /// Sets the value outright (also feeds the high-water mark).
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever observed.
    pub fn max(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `f64` observations.
///
/// Buckets are defined by ascending upper bounds; one extra overflow bucket
/// catches observations above the last bound. Percentiles are reported as
/// the upper bound of the bucket containing the requested rank, which is
/// exact when observations land on bucket bounds and conservative (rounds
/// up) otherwise.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    /// Total of all observations, maintained with a CAS loop over bits.
    sum_bits: AtomicU64,
    /// Per-bucket exemplars: the most recent traced observation to land in
    /// each bucket, as `(trace_id, value_bits)`. A trace id of 0 means the
    /// bucket has never seen a traced observation.
    exemplars: Vec<Exemplar>,
}

#[derive(Debug, Default)]
struct Exemplar {
    trace_id: AtomicU64,
    value_bits: AtomicU64,
}

/// One histogram bucket as reported by [`Histogram::buckets`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive upper bound of the bucket (`f64::INFINITY` for overflow).
    pub upper_bound: f64,
    /// Observations that landed in this bucket.
    pub count: u64,
    /// The most recent traced observation in this bucket, as
    /// `(trace_id, value)`, if any request ever carried a trace id here.
    pub exemplar: Option<(u64, f64)>,
}

impl Histogram {
    /// A histogram over the default exponential bounds `1e-6 · 2^i` for
    /// `i in 0..40` — microseconds up to ~12.7 days, suitable for seconds-
    /// denominated durations.
    pub fn new() -> Histogram {
        let bounds = (0..40).map(|i| 1e-6 * f64::powi(2.0, i)).collect();
        Histogram::with_bounds(bounds)
    }

    /// A histogram with caller-chosen ascending upper bounds.
    ///
    /// Non-finite, non-ascending, or empty bounds are rejected by clamping:
    /// the list is sorted, deduplicated, and non-finite entries dropped; an
    /// empty result falls back to a single `1.0` bound.
    pub fn with_bounds(mut bounds: Vec<f64>) -> Histogram {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        if bounds.is_empty() {
            bounds.push(1.0);
        }
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        let exemplars = (0..bounds.len() + 1).map(|_| Exemplar::default()).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            exemplars,
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        self.observe_with_exemplar(value, 0);
    }

    /// Records one observation and, when `trace_id` is non-zero, remembers
    /// it as the bucket's exemplar — so a rendered histogram can point at a
    /// concrete recent request per latency band. The two stores are
    /// independent relaxed atomics: a racing reader may pair a fresh id
    /// with a stale value, both still from real observations in the bucket.
    pub fn observe_with_exemplar(&self, value: f64, trace_id: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        if trace_id != 0 {
            self.exemplars[idx]
                .value_bits
                .store(value.to_bits(), Ordering::Relaxed);
            self.exemplars[idx]
                .trace_id
                .store(trace_id, Ordering::Relaxed);
        }
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() / count as f64
        }
    }

    /// The `p`-quantile (`p` in `[0, 1]`), reported as the upper bound of
    /// the bucket containing that rank. Overflow-bucket ranks report the
    /// last finite bound; an empty histogram reports 0.0.
    pub fn percentile(&self, p: f64) -> f64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    *self.bounds.last().expect("at least one bound")
                };
            }
        }
        *self.bounds.last().expect("at least one bound")
    }

    /// Bucket-by-bucket view (finite buckets plus the overflow bucket).
    pub fn buckets(&self) -> Vec<Bucket> {
        self.counts
            .iter()
            .enumerate()
            .map(|(idx, count)| {
                let trace_id = self.exemplars[idx].trace_id.load(Ordering::Relaxed);
                Bucket {
                    upper_bound: self.bounds.get(idx).copied().unwrap_or(f64::INFINITY),
                    count: count.load(Ordering::Relaxed),
                    exemplar: (trace_id != 0).then(|| {
                        (
                            trace_id,
                            f64::from_bits(self.exemplars[idx].value_bits.load(Ordering::Relaxed)),
                        )
                    }),
                }
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = Gauge::new();
        assert_eq!(g.add(3), 3);
        assert_eq!(g.add(-2), 1);
        assert_eq!(g.add(5), 6);
        assert_eq!(g.add(-6), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(g.max(), 6);
    }

    #[test]
    fn histogram_percentiles_on_known_distribution() {
        let h = Histogram::with_bounds((1..=100).map(|i| i as f64).collect());
        for i in 1..=100 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - 5050.0).abs() < 1e-9);
        assert_eq!(h.percentile(0.50), 50.0);
        assert_eq!(h.percentile(0.90), 90.0);
        assert_eq!(h.percentile(0.99), 99.0);
        assert_eq!(h.percentile(1.0), 100.0);
    }

    #[test]
    fn histogram_overflow_and_empty() {
        let h = Histogram::with_bounds(vec![1.0, 2.0]);
        assert_eq!(h.percentile(0.5), 0.0);
        h.observe(10.0); // overflow bucket
        assert_eq!(h.percentile(0.5), 2.0); // clamps to last finite bound
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[2].count, 1);
        assert!(buckets[2].upper_bound.is_infinite());
    }
}
