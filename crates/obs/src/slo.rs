//! Per-model SLO tracking: a latency/error budget with fast and slow
//! burn-rate windows, Google SRE style.
//!
//! Each served request is classified good (replied within the latency
//! objective) or bad (slow, errored, shed, or lost to a panic). The
//! tracker keeps per-second good/bad tallies over the slow window and
//! derives two burn rates:
//!
//! ```text
//! burn = bad_fraction_over_window / error_budget
//! ```
//!
//! A burn rate of 1.0 means the budget is being spent exactly as fast as
//! it accrues; the SLO is considered breached when **both** the fast and
//! slow windows burn at ≥ 1.0 — the fast window reacts quickly, the slow
//! window confirms it is not a blip. The serving engine feeds the breach
//! signal into `health()` so `Degraded` can fire on SLO burn, not just
//! breaker state.

use crate::metrics::Gauge;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The objective and budget a [`SloTracker`] enforces.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Replies slower than this count against the error budget.
    pub latency_objective: Duration,
    /// Tolerated bad fraction (e.g. 0.05 = 5% of requests may be bad).
    pub error_budget: f64,
    /// Short window for fast burn detection.
    pub fast_window: Duration,
    /// Long window that confirms sustained burn.
    pub slow_window: Duration,
}

impl Default for SloConfig {
    /// 250 ms objective, 5% budget, 10 s fast / 60 s slow windows.
    fn default() -> SloConfig {
        SloConfig {
            latency_objective: Duration::from_millis(250),
            error_budget: 0.05,
            fast_window: Duration::from_secs(10),
            slow_window: Duration::from_secs(60),
        }
    }
}

/// One second's worth of good/bad tallies.
#[derive(Debug, Clone, Copy)]
struct SecondBucket {
    second: u64,
    good: u64,
    bad: u64,
}

/// Tracks SLO burn over sliding windows and mirrors the rates into
/// milli-unit gauges (`Gauge` is integral; 1000 = burn rate 1.0).
pub struct SloTracker {
    config: SloConfig,
    epoch: Instant,
    buckets: Mutex<VecDeque<SecondBucket>>,
    fast_gauge: Option<Arc<Gauge>>,
    slow_gauge: Option<Arc<Gauge>>,
}

impl SloTracker {
    /// A tracker with no attached gauges.
    pub fn new(config: SloConfig) -> SloTracker {
        SloTracker {
            config,
            epoch: Instant::now(),
            buckets: Mutex::new(VecDeque::new()),
            fast_gauge: None,
            slow_gauge: None,
        }
    }

    /// Mirrors burn rates into the given gauges (milli-units) on every
    /// observation.
    pub fn with_gauges(mut self, fast: Arc<Gauge>, slow: Arc<Gauge>) -> SloTracker {
        self.fast_gauge = Some(fast);
        self.slow_gauge = Some(slow);
        self
    }

    /// The configured objective and windows.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Classifies a successful reply by latency.
    pub fn observe_latency(&self, latency: Duration) {
        self.observe(latency <= self.config.latency_objective);
    }

    /// Records a failed request (shed, panic, dropped reply).
    pub fn observe_error(&self) {
        self.observe(false);
    }

    /// Records one request outcome.
    pub fn observe(&self, good: bool) {
        self.observe_at(self.epoch.elapsed().as_secs(), good);
    }

    /// Records one outcome into an explicit epoch-second bucket — the
    /// injected-clock variant of [`SloTracker::observe`] the property
    /// tests drive so window-boundary behavior is checkable without real
    /// sleeps. Seconds must be fed in non-decreasing order (as the wall
    /// clock would).
    pub fn observe_at(&self, second: u64, good: bool) {
        {
            let mut buckets = lock_ok(&self.buckets);
            match buckets.back_mut() {
                Some(bucket) if bucket.second == second => {
                    if good {
                        bucket.good += 1;
                    } else {
                        bucket.bad += 1;
                    }
                }
                _ => buckets.push_back(SecondBucket {
                    second,
                    good: good as u64,
                    bad: !good as u64,
                }),
            }
            let horizon = second.saturating_sub(self.config.slow_window.as_secs().max(1));
            while buckets.front().is_some_and(|b| b.second < horizon) {
                buckets.pop_front();
            }
        }
        if self.fast_gauge.is_some() || self.slow_gauge.is_some() {
            let (fast, slow) = self.burn_rates_at(second);
            if let Some(gauge) = &self.fast_gauge {
                gauge.set((fast * 1000.0).round() as i64);
            }
            if let Some(gauge) = &self.slow_gauge {
                gauge.set((slow * 1000.0).round() as i64);
            }
        }
    }

    /// `(fast, slow)` burn rates right now. With no traffic in a window
    /// its burn is 0.0 — silence does not spend budget.
    pub fn burn_rates(&self) -> (f64, f64) {
        self.burn_rates_at(self.epoch.elapsed().as_secs())
    }

    /// `(fast, slow)` burn rates as seen from an explicit epoch second —
    /// the injected-clock variant of [`SloTracker::burn_rates`] paired
    /// with [`SloTracker::observe_at`].
    pub fn burn_rates_at(&self, now: u64) -> (f64, f64) {
        let buckets = lock_ok(&self.buckets);
        let rate = |window: Duration| -> f64 {
            let horizon = now.saturating_sub(window.as_secs().max(1));
            let (mut good, mut bad) = (0u64, 0u64);
            for bucket in buckets.iter().filter(|b| b.second >= horizon) {
                good += bucket.good;
                bad += bucket.bad;
            }
            let total = good + bad;
            if total == 0 || self.config.error_budget <= 0.0 {
                return 0.0;
            }
            (bad as f64 / total as f64) / self.config.error_budget
        };
        (rate(self.config.fast_window), rate(self.config.slow_window))
    }

    /// Whether both windows are burning at ≥ 1.0 — the signal that flips
    /// engine health to `Degraded`.
    pub fn breached(&self) -> bool {
        let (fast, slow) = self.burn_rates();
        fast >= 1.0 && slow >= 1.0
    }
}

fn lock_ok<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
