//! Minimal JSON reader/writer shared by the trace exporter, the bench run
//! journal, and the `results/*.json` artifacts.
//!
//! The workspace's dependency policy keeps third-party crates out, so these
//! consumers use this hand-rolled subset instead of `serde_json`: enough of
//! RFC 8259 to round-trip flat records (objects, arrays, strings with
//! escapes, finite numbers, booleans, null).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (the journal only stores finite values).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, rejecting fractional
    /// or out-of-range values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to a compact single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // JSON has no NaN/∞; the journal never stores them, but a
                // defensive `null` beats emitting an unparseable token.
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Combine a UTF-16 surrogate pair when present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| format!("invalid \\u escape {text:?}"))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_flat_record() {
        let value = Json::Obj(vec![
            ("dataset".into(), Json::Str("SYNTHIE".into())),
            ("fold".into(), Json::Num(3.0)),
            (
                "curve".into(),
                Json::Arr(vec![Json::Num(0.5), Json::Num(0.625)]),
            ),
            ("ok".into(), Json::Bool(true)),
            ("note".into(), Json::Null),
        ]);
        let text = value.to_json();
        assert_eq!(Json::parse(&text).unwrap(), value);
        assert_eq!(
            text,
            r#"{"dataset":"SYNTHIE","fold":3,"curve":[0.5,0.625],"ok":true,"note":null}"#
        );
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.0, 1.0, -3.5, 0.123456789012345, 1e-12, 2.5e17] {
            let text = Json::Num(v).to_json();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(v), "{text}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "line\nbreak \"quoted\" back\\slash\ttab ünïcode 图";
        let text = Json::Str(nasty.into()).to_json();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let parsed = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(parsed.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn surrogate_pair_escape() {
        let parsed = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed.as_str(), Some("😀"));
        // Raw (unescaped) UTF-8 passes through too.
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nulll").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integer_accessor_guards() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }
}
