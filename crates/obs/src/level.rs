//! The `DEEPMAP_TRACE` verbosity switch.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the observability layer records.
///
/// The level is an ordering: everything a lower level records, a higher
/// level records too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing: spans are no-ops, counters stay untouched, events
    /// are dropped. Instrumented code runs at (near) uninstrumented cost.
    Off,
    /// Counters, gauges, and histograms are live and leveled events print
    /// to stderr, but spans are not recorded. The default.
    Summary,
    /// Everything: metrics, events, and hierarchical spans (exportable as
    /// a JSONL trace).
    Spans,
}

impl TraceLevel {
    /// Parses a `DEEPMAP_TRACE` value. Unrecognised strings yield `None`.
    pub fn parse(text: &str) -> Option<TraceLevel> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(TraceLevel::Off),
            "summary" | "1" | "on" => Some(TraceLevel::Summary),
            "spans" | "2" | "trace" | "full" => Some(TraceLevel::Spans),
            _ => None,
        }
    }

    /// Reads `DEEPMAP_TRACE` from the environment; unset or unparseable
    /// values fall back to [`TraceLevel::Summary`].
    pub fn from_env() -> TraceLevel {
        std::env::var("DEEPMAP_TRACE")
            .ok()
            .and_then(|v| TraceLevel::parse(&v))
            .unwrap_or(TraceLevel::Summary)
    }

    /// `true` when counters/gauges/histograms record.
    pub fn metrics_enabled(self) -> bool {
        self != TraceLevel::Off
    }

    /// `true` when spans record.
    pub fn spans_enabled(self) -> bool {
        self == TraceLevel::Spans
    }

    /// Short lowercase name (`off` / `summary` / `spans`).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Summary => "summary",
            TraceLevel::Spans => "spans",
        }
    }

    pub(crate) fn to_u8(self) -> u8 {
        match self {
            TraceLevel::Off => 0,
            TraceLevel::Summary => 1,
            TraceLevel::Spans => 2,
        }
    }

    pub(crate) fn from_u8(v: u8) -> TraceLevel {
        match v {
            0 => TraceLevel::Off,
            2 => TraceLevel::Spans,
            _ => TraceLevel::Summary,
        }
    }
}

/// An interior-mutable [`TraceLevel`] cell (a registry's level can be
/// flipped at runtime, e.g. by a `--quiet` flag).
#[derive(Debug)]
pub(crate) struct LevelCell(AtomicU8);

impl LevelCell {
    pub(crate) fn new(level: TraceLevel) -> LevelCell {
        LevelCell(AtomicU8::new(level.to_u8()))
    }

    pub(crate) fn get(&self) -> TraceLevel {
        TraceLevel::from_u8(self.0.load(Ordering::Relaxed))
    }

    pub(crate) fn set(&self, level: TraceLevel) {
        self.0.store(level.to_u8(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_values() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("SUMMARY"), Some(TraceLevel::Summary));
        assert_eq!(TraceLevel::parse(" spans "), Some(TraceLevel::Spans));
        assert_eq!(TraceLevel::parse("bogus"), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Off < TraceLevel::Summary);
        assert!(TraceLevel::Summary < TraceLevel::Spans);
        assert!(!TraceLevel::Off.metrics_enabled());
        assert!(TraceLevel::Summary.metrics_enabled());
        assert!(!TraceLevel::Summary.spans_enabled());
        assert!(TraceLevel::Spans.spans_enabled());
    }

    #[test]
    fn cell_round_trips() {
        let cell = LevelCell::new(TraceLevel::Off);
        assert_eq!(cell.get(), TraceLevel::Off);
        cell.set(TraceLevel::Spans);
        assert_eq!(cell.get(), TraceLevel::Spans);
    }
}
