//! Integration tests for the rollout state machine: shadow mirroring,
//! policy-gated promotion, operator rollback, journal crash recovery with
//! torn-tail salvage, and (under `fault-inject`) automatic rollback of a
//! canary that starts panicking mid-slice — with zero lost client
//! requests.

mod common;

use common::{request_graphs, trained_bundle_seeded};
use deepmap_lifecycle::{
    LifecycleConfig, LifecycleController, LifecycleError, PromotionPolicy, RolloutState,
    RolloutStatus,
};
use deepmap_router::{ModelConfig, ModelRouter, RouterConfig, RouterError};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PATIENT: Duration = Duration::from_secs(60);

/// Deterministic gates for tests: mirror and canary everything, demand a
/// handful of samples, and keep the latency/burn gates far from the noise
/// floor of micro-benchmark-sized predictions.
fn test_policy() -> PromotionPolicy {
    PromotionPolicy {
        min_agreement: 0.9,
        max_p99_regression: 1000.0,
        max_error_burn: 1e6,
        min_samples: 8,
        mirror_fraction: 1.0,
        canary_fraction: 1.0,
        max_canary_faults: 2,
    }
}

fn router_with(model: &str, seed: u64) -> Arc<ModelRouter> {
    let router = Arc::new(ModelRouter::new(RouterConfig::default()));
    router
        .register(model, trained_bundle_seeded(seed), ModelConfig::default())
        .unwrap();
    router
}

fn controller(router: &Arc<ModelRouter>) -> LifecycleController {
    LifecycleController::new(Arc::clone(router), LifecycleConfig::default()).unwrap()
}

/// Drives mirrored traffic until `cond` holds on the rollout status (or
/// panics at the deadline — mirroring is asynchronous, so tests poll).
fn drive_until(
    lc: &LifecycleController,
    model: &str,
    cond: impl Fn(&RolloutStatus) -> bool,
) -> RolloutStatus {
    let graphs = request_graphs(4);
    let deadline = Instant::now() + PATIENT;
    loop {
        for graph in &graphs {
            lc.predict(model, graph.clone()).expect("live predict");
        }
        let status = lc.status(model).expect("status");
        if cond(&status) {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "deadline waiting on rollout status, last seen: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn state_machine_refuses_out_of_order_transitions() {
    let router = router_with("alpha", 11);
    let lc = controller(&router);
    let bundle = trained_bundle_seeded(11);

    // Nothing in flight: every rollout verb is a typed refusal.
    assert!(matches!(
        lc.advance("alpha"),
        Err(LifecycleError::NoRollout(_))
    ));
    assert!(matches!(
        lc.promote("alpha"),
        Err(LifecycleError::NoRollout(_))
    ));
    assert!(matches!(
        lc.rollback("alpha", "nothing to roll back"),
        Err(LifecycleError::NoRollout(_))
    ));
    assert!(matches!(
        lc.status("alpha"),
        Err(LifecycleError::NoRollout(_))
    ));

    // A rollout needs a resident model and a sane policy.
    assert!(matches!(
        lc.begin("ghost", Arc::clone(&bundle), test_policy()),
        Err(LifecycleError::Router(RouterError::UnknownModel(_)))
    ));
    let broken = PromotionPolicy {
        min_samples: 0,
        ..test_policy()
    };
    assert!(matches!(
        lc.begin("alpha", Arc::clone(&bundle), broken),
        Err(LifecycleError::BadPolicy(_))
    ));

    // One rollout per model at a time.
    lc.begin("alpha", Arc::clone(&bundle), test_policy())
        .unwrap();
    assert!(matches!(
        lc.begin("alpha", Arc::clone(&bundle), test_policy()),
        Err(LifecycleError::RolloutActive(_))
    ));

    // Shadow cannot skip straight to live.
    match lc.promote("alpha") {
        Err(LifecycleError::BadState { state, wanted, .. }) => {
            assert_eq!(state, RolloutState::Shadow);
            assert_eq!(wanted, "canary");
        }
        other => panic!("expected BadState, got {other:?}"),
    }

    // Rollback withdraws the candidate; a second rollback has nothing
    // left to act on.
    lc.rollback("alpha", "changed my mind").unwrap();
    let status = lc.status("alpha").unwrap();
    assert_eq!(status.state, RolloutState::RolledBack);
    assert_eq!(status.reason.as_deref(), Some("changed my mind"));
    assert!(router.resolve("alpha.next").is_err(), "candidate withdrawn");
    assert!(matches!(
        lc.rollback("alpha", "again"),
        Err(LifecycleError::BadState { .. })
    ));

    // A terminal rollout does not block the next one.
    lc.begin("alpha", bundle, test_policy()).unwrap();
    assert_eq!(lc.status("alpha").unwrap().state, RolloutState::Shadow);
    lc.shutdown();
}

#[test]
fn shadow_gates_canary_and_promote_swaps_live() {
    let router = router_with("alpha", 11);
    let lc = controller(&router);
    // Same weights as the live model: agreement is exactly 1.0, so the
    // gates are deterministic.
    lc.begin("alpha", trained_bundle_seeded(11), test_policy())
        .unwrap();
    assert_eq!(LifecycleController::candidate_name("alpha"), "alpha.next");
    assert!(
        router.resolve("alpha.next").is_ok(),
        "candidate pool registered for shadowing"
    );

    // Thin evidence never promotes.
    match lc.advance("alpha") {
        Err(LifecycleError::NotEligible { reason, .. }) => {
            assert!(reason.contains("samples"), "{reason}");
        }
        other => panic!("expected NotEligible, got {other:?}"),
    }

    // Mirror until the sample floor is met; identical weights agree.
    let status = drive_until(&lc, "alpha", |s| s.mirrored >= 8);
    assert_eq!(status.state, RolloutState::Shadow);
    assert!((status.agreement - 1.0).abs() < f64::EPSILON, "{status:?}");

    lc.advance("alpha").unwrap();
    assert_eq!(lc.status("alpha").unwrap().state, RolloutState::Canary);

    // The canary slice answers (canary_fraction 1.0 routes everything).
    let status = drive_until(&lc, "alpha", |s| s.canary_ok >= 4);
    assert!(status.canary_routed >= status.canary_ok);
    assert_eq!(status.canary_faults, 0);

    lc.promote("alpha").unwrap();
    assert_eq!(lc.status("alpha").unwrap().state, RolloutState::Live);
    assert!(
        router.resolve("alpha.next").is_err(),
        "candidate pool retired after the live swap"
    );
    let info = router.list_models();
    assert_eq!(info.len(), 1);
    assert_eq!(info[0].version, 2, "promotion is a versioned reload");

    // Demoting a live rollout swaps the previous bundle back.
    lc.rollback("alpha", "post-promotion regression").unwrap();
    let status = lc.status("alpha").unwrap();
    assert_eq!(status.state, RolloutState::RolledBack);
    let info = router.list_models();
    assert_eq!(info[0].version, 3, "rollback is a versioned reload too");
    // The model still serves after the whole journey.
    lc.predict("alpha", request_graphs(1).remove(0)).unwrap();
    lc.shutdown();
}

fn scratch_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "deepmap-lifecycle-test-{}-{tag}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("rollouts.journal")
}

#[test]
fn journal_resumes_midflight_rollout_and_salvages_torn_tail() {
    let path = scratch_journal("resume");
    let _ = std::fs::remove_file(&path);
    let config = LifecycleConfig {
        journal_path: Some(path.clone()),
        ..LifecycleConfig::default()
    };

    // First controller begins a rollout and stops uncleanly: no terminal
    // transition is ever journaled.
    {
        let router = router_with("alpha", 11);
        let lc = LifecycleController::new(Arc::clone(&router), config.clone()).unwrap();
        lc.begin("alpha", trained_bundle_seeded(1234), test_policy())
            .unwrap();
        assert_eq!(lc.status("alpha").unwrap().state, RolloutState::Shadow);
    }

    // The crash tore the final record mid-write (no trailing newline).
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(b"J1 0000002a deadbeef {\"kind\":\"transition\",\"tor")
            .unwrap();
    }

    // A fresh process: new router (the model re-registered by the host),
    // new controller — the journal alone carries the rollout.
    let router = router_with("alpha", 11);
    let lc = LifecycleController::new(Arc::clone(&router), config.clone()).unwrap();
    let recovery = lc.recovery().clone();
    assert!(
        recovery.salvaged.is_some(),
        "the torn tail was truncated, not fatal: {recovery:?}"
    );
    assert_eq!(recovery.rollouts, 1);
    assert_eq!(recovery.resumed, 1, "{recovery:?}");
    let status = lc.status("alpha").unwrap();
    assert_eq!(status.state, RolloutState::Shadow, "resumed mid-flight");
    assert!(
        router.resolve("alpha.next").is_ok(),
        "candidate pool rebuilt from the journaled bundle image"
    );

    // The resumed rollout is fully operable: measurements re-accumulate
    // and the state machine drives on.
    let status = drive_until(&lc, "alpha", |s| s.mirrored >= 8);
    assert_eq!(status.state, RolloutState::Shadow);
    lc.rollback("alpha", "recovery drill complete").unwrap();
    lc.shutdown();
    drop(lc);

    // A third open replays the whole history to a terminal state: nothing
    // to resume any more.
    let router = router_with("alpha", 11);
    let lc = LifecycleController::new(Arc::clone(&router), config).unwrap();
    assert_eq!(lc.recovery().resumed, 0);
    assert_eq!(
        lc.status("alpha").unwrap().state,
        RolloutState::RolledBack,
        "terminal history is still queryable"
    );
    lc.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mirroring_sheds_under_pressure_instead_of_blocking() {
    let router = router_with("alpha", 11);
    // A one-slot mirror queue with a slow worker cadence: most taps shed.
    let lc = LifecycleController::new(
        Arc::clone(&router),
        LifecycleConfig {
            mirror_queue: 1,
            tick: Duration::from_millis(200),
            ..LifecycleConfig::default()
        },
    )
    .unwrap();
    lc.begin("alpha", trained_bundle_seeded(11), test_policy())
        .unwrap();
    let graphs = request_graphs(4);
    let started = Instant::now();
    for _ in 0..64 {
        for graph in &graphs {
            lc.predict("alpha", graph.clone()).unwrap();
        }
    }
    // 256 predicts against a single-slot queue: the reply path never
    // blocked on the mirror (generous bound — the predicts themselves
    // dominate), and the backlog was shed, not queued.
    assert!(
        started.elapsed() < PATIENT,
        "mirror tap must never block the reply path"
    );
    let status = lc.status("alpha").unwrap();
    assert!(
        status.mirror_shed > 0,
        "a saturated queue sheds: {status:?}"
    );
    lc.shutdown();
}

#[cfg(feature = "fault-inject")]
mod chaos {
    use super::*;
    use deepmap_serve::FaultPlan;

    #[test]
    fn canary_panics_mid_slice_auto_roll_back_with_zero_lost_requests() {
        let router = router_with("alpha", 11);
        let lc = controller(&router);
        // The candidate serves cleanly through shadow, then starts
        // panicking on every batch from sequence 48 — mid-canary-slice.
        let plan = FaultPlan::new().panic_from(48);
        lc.begin_chaos("alpha", trained_bundle_seeded(11), test_policy(), plan)
            .unwrap();

        let status = drive_until(&lc, "alpha", |s| s.mirrored >= 8);
        assert_eq!(status.state, RolloutState::Shadow);
        lc.advance("alpha").unwrap();

        // Keep serving until the controller trips. Every client request
        // must be answered — the live pool absorbs each canary fault.
        let graphs = request_graphs(4);
        let deadline = Instant::now() + PATIENT;
        let mut answered = 0u64;
        while lc.status("alpha").unwrap().state == RolloutState::Canary {
            for graph in &graphs {
                lc.predict("alpha", graph.clone())
                    .expect("no client request may be lost to a dying canary");
                answered += 1;
            }
            assert!(
                Instant::now() < deadline,
                "canary never tripped after {answered} requests"
            );
        }

        let status = lc.status("alpha").unwrap();
        assert_eq!(
            status.state,
            RolloutState::RolledBack,
            "a panicking canary is rolled back automatically: {status:?}"
        );
        assert!(status.reason.is_some(), "{status:?}");

        // The worker tick retires the candidate pool; the live model is
        // untouched throughout.
        let deadline = Instant::now() + PATIENT;
        while router.resolve("alpha.next").is_ok() {
            assert!(Instant::now() < deadline, "candidate pool never retired");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(router.list_models()[0].version, 1, "live pool untouched");
        lc.predict("alpha", graphs[0].clone()).unwrap();
        lc.shutdown();
    }
}
