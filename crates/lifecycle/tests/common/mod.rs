//! Shared helpers for the deepmap-lifecycle integration suites: a small trained
//! bundle (cycles vs cliques) and deterministic request graphs, mirroring
//! the serve crate's smoke-test fixture.

#![allow(dead_code)] // each test binary uses a subset of these helpers

use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{InferenceServer, ModelBundle, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

pub fn trained_bundle() -> Arc<ModelBundle> {
    trained_bundle_seeded(11)
}

/// Seed-parameterised variant: different seeds give different graph samples
/// and init, hence two genuinely different resident models for the
/// multi-tenant wire tests.
pub fn trained_bundle_seeded(seed: u64) -> Arc<ModelBundle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 0.01,
            seed: seed.wrapping_add(1),
        },
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    let bundle = ModelBundle::freeze(
        &dm,
        &prepared,
        pre,
        &result.model,
        vec!["cycle".to_string(), "clique".to_string()],
    )
    .unwrap();
    Arc::new(bundle)
}

pub fn engine(bundle: &Arc<ModelBundle>) -> InferenceServer {
    InferenceServer::start(Arc::clone(bundle), ServerConfig::default()).unwrap()
}

pub fn request_graphs(n: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(77);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}
