//! The rollout state machine and the point-in-time status snapshot.

use deepmap_obs::json::Json;
use std::fmt;

/// Where a candidate bundle is on its way to (or back from) production.
///
/// ```text
/// Resident ──▶ Shadow ──▶ Canary ──▶ Live
///                 │           │
///                 ▼           ▼
///              Failed     RolledBack
/// ```
///
/// `Resident` is the instant between journaling a rollout and its
/// candidate pool passing the registration probe; `Shadow` mirrors
/// traffic off the reply path; `Canary` serves a real slice; `Live`
/// means the candidate replaced the resident bundle via the probe-gated
/// atomic swap. `RolledBack` and `Failed` are terminal: `Failed` is a
/// candidate that never served (probe/registration failure), `RolledBack`
/// one that did and was withdrawn — by policy or by an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutState {
    /// Journaled, candidate pool not yet registered.
    Resident,
    /// Candidate registered under its derived name, mirroring traffic.
    Shadow,
    /// Candidate serving a real traffic slice.
    Canary,
    /// Candidate promoted into the live slot (terminal, success).
    Live,
    /// Candidate withdrawn; the resident bundle serves (terminal).
    RolledBack,
    /// Candidate never became servable (terminal).
    Failed,
}

impl RolloutState {
    /// All states, in pipeline order.
    pub const ALL: [RolloutState; 6] = [
        RolloutState::Resident,
        RolloutState::Shadow,
        RolloutState::Canary,
        RolloutState::Live,
        RolloutState::RolledBack,
        RolloutState::Failed,
    ];

    /// Stable snake_case name (journal records, status JSON, wire).
    pub fn name(self) -> &'static str {
        match self {
            RolloutState::Resident => "resident",
            RolloutState::Shadow => "shadow",
            RolloutState::Canary => "canary",
            RolloutState::Live => "live",
            RolloutState::RolledBack => "rolled_back",
            RolloutState::Failed => "failed",
        }
    }

    /// Parses [`RolloutState::name`] back; `None` for anything else.
    pub fn from_name(name: &str) -> Option<RolloutState> {
        RolloutState::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Stable byte for the wire reply.
    pub fn as_u8(self) -> u8 {
        match self {
            RolloutState::Resident => 0,
            RolloutState::Shadow => 1,
            RolloutState::Canary => 2,
            RolloutState::Live => 3,
            RolloutState::RolledBack => 4,
            RolloutState::Failed => 5,
        }
    }

    /// Parses [`RolloutState::as_u8`] back.
    pub fn from_u8(byte: u8) -> Option<RolloutState> {
        RolloutState::ALL.into_iter().find(|s| s.as_u8() == byte)
    }

    /// Whether the rollout is finished (no further transitions).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RolloutState::Live | RolloutState::RolledBack | RolloutState::Failed
        )
    }
}

impl fmt::Display for RolloutState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Point-in-time snapshot of one rollout, from
/// [`LifecycleController::status`](crate::LifecycleController::status).
/// Serialises to JSON for the `RolloutStatus` wire reply.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutStatus {
    /// The live model the rollout targets.
    pub model: String,
    /// The candidate's derived registry name (`<model>.next`).
    pub candidate: String,
    /// Monotonic rollout id (survives controller restarts via the journal).
    pub rollout_id: u64,
    /// Where the state machine is.
    pub state: RolloutState,
    /// Why a terminal state was entered, when it was.
    pub reason: Option<String>,
    /// Mirrored comparisons scored so far.
    pub mirrored: u64,
    /// Mirrored comparisons where candidate and live agreed on the class.
    pub agreed: u64,
    /// `agreed / mirrored` (0.0 before any samples).
    pub agreement: f64,
    /// Mirror jobs shed because the backlog was full (never blocks).
    pub mirror_shed: u64,
    /// p99 of the live pool over the mirrored comparisons, microseconds.
    pub live_p99_us: u64,
    /// p99 of the candidate pool over the same comparisons, microseconds.
    pub candidate_p99_us: u64,
    /// Requests the canary slice routed to the candidate.
    pub canary_routed: u64,
    /// Canary requests the candidate answered.
    pub canary_ok: u64,
    /// Canary requests lost to candidate infrastructure faults (each one
    /// was retried on the live pool — clients never see them).
    pub canary_faults: u64,
    /// Candidate pool's fast-window SLO burn rate (0.0 when the pool is
    /// not resident).
    pub candidate_burn_fast: f64,
    /// Candidate pool's slow-window SLO burn rate.
    pub candidate_burn_slow: f64,
}

impl RolloutStatus {
    /// JSON encoding (the `RolloutStatus` wire reply body).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("model".to_string(), Json::Str(self.model.clone())),
            ("candidate".to_string(), Json::Str(self.candidate.clone())),
            ("rollout_id".to_string(), Json::Num(self.rollout_id as f64)),
            (
                "state".to_string(),
                Json::Str(self.state.name().to_string()),
            ),
        ];
        if let Some(reason) = &self.reason {
            fields.push(("reason".to_string(), Json::Str(reason.clone())));
        }
        fields.extend([
            ("mirrored".to_string(), Json::Num(self.mirrored as f64)),
            ("agreed".to_string(), Json::Num(self.agreed as f64)),
            ("agreement".to_string(), Json::Num(self.agreement)),
            (
                "mirror_shed".to_string(),
                Json::Num(self.mirror_shed as f64),
            ),
            (
                "live_p99_us".to_string(),
                Json::Num(self.live_p99_us as f64),
            ),
            (
                "candidate_p99_us".to_string(),
                Json::Num(self.candidate_p99_us as f64),
            ),
            (
                "canary_routed".to_string(),
                Json::Num(self.canary_routed as f64),
            ),
            ("canary_ok".to_string(), Json::Num(self.canary_ok as f64)),
            (
                "canary_faults".to_string(),
                Json::Num(self.canary_faults as f64),
            ),
            (
                "candidate_burn_fast".to_string(),
                Json::Num(self.candidate_burn_fast),
            ),
            (
                "candidate_burn_slow".to_string(),
                Json::Num(self.candidate_burn_slow),
            ),
        ]);
        Json::Obj(fields)
    }

    /// Parses [`RolloutStatus::to_json`] back; `None` when a required
    /// field is missing or mistyped.
    pub fn from_json(value: &Json) -> Option<RolloutStatus> {
        Some(RolloutStatus {
            model: value.get("model")?.as_str()?.to_string(),
            candidate: value.get("candidate")?.as_str()?.to_string(),
            rollout_id: value.get("rollout_id")?.as_u64()?,
            state: RolloutState::from_name(value.get("state")?.as_str()?)?,
            reason: value
                .get("reason")
                .and_then(Json::as_str)
                .map(str::to_string),
            mirrored: value.get("mirrored")?.as_u64()?,
            agreed: value.get("agreed")?.as_u64()?,
            agreement: value.get("agreement")?.as_f64()?,
            mirror_shed: value.get("mirror_shed")?.as_u64()?,
            live_p99_us: value.get("live_p99_us")?.as_u64()?,
            candidate_p99_us: value.get("candidate_p99_us")?.as_u64()?,
            canary_routed: value.get("canary_routed")?.as_u64()?,
            canary_ok: value.get("canary_ok")?.as_u64()?,
            canary_faults: value.get("canary_faults")?.as_u64()?,
            candidate_burn_fast: value.get("candidate_burn_fast")?.as_f64()?,
            candidate_burn_slow: value.get("candidate_burn_slow")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_byte_and_name_round_trip() {
        for state in RolloutState::ALL {
            assert_eq!(RolloutState::from_u8(state.as_u8()), Some(state));
            assert_eq!(RolloutState::from_name(state.name()), Some(state));
        }
        assert_eq!(RolloutState::from_u8(99), None);
        assert_eq!(RolloutState::from_name("zombie"), None);
    }

    #[test]
    fn terminality_matches_the_diagram() {
        assert!(!RolloutState::Resident.is_terminal());
        assert!(!RolloutState::Shadow.is_terminal());
        assert!(!RolloutState::Canary.is_terminal());
        assert!(RolloutState::Live.is_terminal());
        assert!(RolloutState::RolledBack.is_terminal());
        assert!(RolloutState::Failed.is_terminal());
    }

    #[test]
    fn status_json_round_trips() {
        let status = RolloutStatus {
            model: "live".into(),
            candidate: "live.next".into(),
            rollout_id: 7,
            state: RolloutState::Canary,
            reason: None,
            mirrored: 40,
            agreed: 39,
            agreement: 0.975,
            mirror_shed: 2,
            live_p99_us: 900,
            candidate_p99_us: 1100,
            canary_routed: 12,
            canary_ok: 12,
            canary_faults: 0,
            candidate_burn_fast: 0.0,
            candidate_burn_slow: 0.0,
        };
        let parsed = RolloutStatus::from_json(&status.to_json()).unwrap();
        assert_eq!(parsed, status);

        let with_reason = RolloutStatus {
            state: RolloutState::RolledBack,
            reason: Some("canary fault budget exhausted".into()),
            ..status
        };
        let parsed = RolloutStatus::from_json(&with_reason.to_json()).unwrap();
        assert_eq!(parsed, with_reason);
    }
}
