//! Safe model lifecycle for DeepMap serving.
//!
//! A candidate bundle never jumps straight into production. The
//! [`LifecycleController`] walks it through a versioned state machine on
//! top of the model router:
//!
//! ```text
//! begin()          advance()        promote()
//! Resident ──────▶ Shadow ────────▶ Canary ────────▶ Live
//!    │                │                │
//!    ▼                ▼                ▼ (policy trip / operator)
//!  Failed         RolledBack       RolledBack
//! ```
//!
//! - **Shadow**: the candidate is registered under a derived name
//!   (`<model>.next`) and a configurable fraction of live traffic is
//!   mirrored to it *off the reply path* — mirrored predictions never
//!   affect client responses, and the mirror backlog is bounded and shed
//!   under pressure, never blocking. The controller compares prediction
//!   agreement, per-stage latency, and SLO burn against a
//!   [`PromotionPolicy`].
//! - **Canary**: a real traffic slice routes to the candidate. Candidate
//!   infrastructure faults are retried on the live pool (zero lost client
//!   requests) and counted against the policy's fault budget; exhausting
//!   it — or tripping the breaker, or burning the error budget — rolls
//!   the rollout back automatically.
//! - **Live**: the candidate replaces the resident bundle through the
//!   router's probe-gated atomic swap. Rolling back *after* promotion
//!   swaps the previous bundle back through the same gate.
//!
//! Every transition (and the mirrored request/outcome stream) is
//! persisted to a crash-safe CRC-framed JSONL journal — fsynced on
//! transition, torn tail salvaged on reopen — so a restarted controller
//! resumes mid-flight rollouts from disk alone. The mirror stream doubles
//! as a training-data feed when
//! [`LifecycleConfig::journal_graphs`] is set.

#![deny(missing_docs)]

pub mod controller;
pub mod error;
pub mod journal;
pub mod policy;
pub mod state;

pub use controller::{LifecycleConfig, LifecycleController};
pub use error::LifecycleError;
pub use journal::{RecoveryReport, ReplayedRollout};
pub use policy::{PromotionPolicy, POLICY_WIRE_LEN};
pub use state::{RolloutState, RolloutStatus};
