//! The promotion policy: the gates a candidate must clear and the traffic
//! fractions the rollout uses.

use crate::error::LifecycleError;
use deepmap_obs::json::Json;

/// Byte length of the fixed wire/journal encoding.
pub const POLICY_WIRE_LEN: usize = 56;

/// What a candidate must prove before it may advance, and how much
/// traffic each stage may touch. Checked by
/// [`LifecycleController::advance`](crate::LifecycleController::advance)
/// (shadow → canary) and
/// [`LifecycleController::promote`](crate::LifecycleController::promote)
/// (canary → live); the canary fault budget is enforced continuously and
/// trips an automatic rollback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionPolicy {
    /// Minimum prediction agreement (`agreed / mirrored`) with the live
    /// model over mirrored traffic.
    pub min_agreement: f64,
    /// Candidate p99 may be at most this multiple of the live pool's p99
    /// over the same mirrored requests (1.0 = no regression allowed).
    pub max_p99_regression: f64,
    /// Candidate fast-window SLO burn rate ceiling (1.0 = burning budget
    /// exactly as fast as it accrues).
    pub max_error_burn: f64,
    /// Mirrored comparisons required before the shadow gates are even
    /// evaluated — thin evidence never promotes.
    pub min_samples: u64,
    /// Fraction of live traffic mirrored to the candidate in shadow (and
    /// canary) mode, `0.0..=1.0`.
    pub mirror_fraction: f64,
    /// Fraction of live traffic the canary slice routes to the candidate,
    /// `0.0..=1.0`.
    pub canary_fraction: f64,
    /// Candidate infrastructure faults (panic, breaker, timeout,
    /// shutdown) tolerated on the canary slice before the rollout
    /// auto-rolls back.
    pub max_canary_faults: u64,
}

impl Default for PromotionPolicy {
    /// 98% agreement, ≤1.5× p99, burn < 1.0, 32 samples, 20% mirror,
    /// 10% canary, 2 tolerated canary faults.
    fn default() -> PromotionPolicy {
        PromotionPolicy {
            min_agreement: 0.98,
            max_p99_regression: 1.5,
            max_error_burn: 1.0,
            min_samples: 32,
            mirror_fraction: 0.2,
            canary_fraction: 0.1,
            max_canary_faults: 2,
        }
    }
}

impl PromotionPolicy {
    /// Rejects structurally nonsensical policies (NaN gates, fractions
    /// outside `[0, 1]`, a zero sample floor) before a rollout starts.
    pub fn validate(&self) -> Result<(), LifecycleError> {
        let frac = |name: &str, v: f64| -> Result<(), LifecycleError> {
            if !(0.0..=1.0).contains(&v) {
                return Err(LifecycleError::BadPolicy(format!(
                    "{name} must be within [0, 1], got {v}"
                )));
            }
            Ok(())
        };
        frac("min_agreement", self.min_agreement)?;
        frac("mirror_fraction", self.mirror_fraction)?;
        frac("canary_fraction", self.canary_fraction)?;
        if !self.max_p99_regression.is_finite() || self.max_p99_regression <= 0.0 {
            return Err(LifecycleError::BadPolicy(format!(
                "max_p99_regression must be a positive finite ratio, got {}",
                self.max_p99_regression
            )));
        }
        if !self.max_error_burn.is_finite() || self.max_error_burn < 0.0 {
            return Err(LifecycleError::BadPolicy(format!(
                "max_error_burn must be a non-negative finite rate, got {}",
                self.max_error_burn
            )));
        }
        if self.min_samples == 0 {
            return Err(LifecycleError::BadPolicy(
                "min_samples must be at least 1 — a rollout needs evidence".to_string(),
            ));
        }
        Ok(())
    }

    /// Fixed 56-byte little-endian encoding (floats as IEEE 754 bits),
    /// used by the `Rollout` wire frame and the journal.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(POLICY_WIRE_LEN);
        out.extend_from_slice(&self.min_agreement.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max_p99_regression.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max_error_burn.to_bits().to_le_bytes());
        out.extend_from_slice(&self.min_samples.to_le_bytes());
        out.extend_from_slice(&self.mirror_fraction.to_bits().to_le_bytes());
        out.extend_from_slice(&self.canary_fraction.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max_canary_faults.to_le_bytes());
        out
    }

    /// Parses [`PromotionPolicy::encode`] back; `None` on a short or long
    /// buffer (structural validity only — run
    /// [`validate`](PromotionPolicy::validate) for semantic checks).
    pub fn decode(bytes: &[u8]) -> Option<PromotionPolicy> {
        if bytes.len() != POLICY_WIRE_LEN {
            return None;
        }
        let mut at = 0usize;
        let mut next = || {
            let chunk: [u8; 8] = bytes[at..at + 8].try_into().unwrap();
            at += 8;
            u64::from_le_bytes(chunk)
        };
        Some(PromotionPolicy {
            min_agreement: f64::from_bits(next()),
            max_p99_regression: f64::from_bits(next()),
            max_error_burn: f64::from_bits(next()),
            min_samples: next(),
            mirror_fraction: f64::from_bits(next()),
            canary_fraction: f64::from_bits(next()),
            max_canary_faults: next(),
        })
    }

    /// JSON encoding for the journal's `begin` record.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("min_agreement".to_string(), Json::Num(self.min_agreement)),
            (
                "max_p99_regression".to_string(),
                Json::Num(self.max_p99_regression),
            ),
            ("max_error_burn".to_string(), Json::Num(self.max_error_burn)),
            (
                "min_samples".to_string(),
                Json::Num(self.min_samples as f64),
            ),
            (
                "mirror_fraction".to_string(),
                Json::Num(self.mirror_fraction),
            ),
            (
                "canary_fraction".to_string(),
                Json::Num(self.canary_fraction),
            ),
            (
                "max_canary_faults".to_string(),
                Json::Num(self.max_canary_faults as f64),
            ),
        ])
    }

    /// Parses [`PromotionPolicy::to_json`] back.
    pub fn from_json(value: &Json) -> Option<PromotionPolicy> {
        Some(PromotionPolicy {
            min_agreement: value.get("min_agreement")?.as_f64()?,
            max_p99_regression: value.get("max_p99_regression")?.as_f64()?,
            max_error_burn: value.get("max_error_burn")?.as_f64()?,
            min_samples: value.get("min_samples")?.as_u64()?,
            mirror_fraction: value.get("mirror_fraction")?.as_f64()?,
            canary_fraction: value.get("canary_fraction")?.as_f64()?,
            max_canary_faults: value.get("max_canary_faults")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_validates() {
        PromotionPolicy::default().validate().unwrap();
    }

    #[test]
    fn wire_and_json_encodings_round_trip() {
        let policy = PromotionPolicy {
            min_agreement: 0.93,
            max_p99_regression: 2.25,
            max_error_burn: 0.5,
            min_samples: 7,
            mirror_fraction: 0.35,
            canary_fraction: 0.05,
            max_canary_faults: 4,
        };
        let bytes = policy.encode();
        assert_eq!(bytes.len(), POLICY_WIRE_LEN);
        assert_eq!(PromotionPolicy::decode(&bytes), Some(policy));
        assert_eq!(PromotionPolicy::decode(&bytes[1..]), None);
        assert_eq!(PromotionPolicy::from_json(&policy.to_json()), Some(policy));
    }

    #[test]
    fn nonsense_policies_are_refused() {
        let cases = [
            PromotionPolicy {
                min_agreement: 1.2,
                ..PromotionPolicy::default()
            },
            PromotionPolicy {
                min_agreement: f64::NAN,
                ..PromotionPolicy::default()
            },
            PromotionPolicy {
                mirror_fraction: -0.1,
                ..PromotionPolicy::default()
            },
            PromotionPolicy {
                canary_fraction: 1.5,
                ..PromotionPolicy::default()
            },
            PromotionPolicy {
                max_p99_regression: 0.0,
                ..PromotionPolicy::default()
            },
            PromotionPolicy {
                max_error_burn: f64::INFINITY,
                ..PromotionPolicy::default()
            },
            PromotionPolicy {
                min_samples: 0,
                ..PromotionPolicy::default()
            },
        ];
        for policy in cases {
            assert!(
                matches!(policy.validate(), Err(LifecycleError::BadPolicy(_))),
                "{policy:?} should be refused"
            );
        }
    }
}
