//! The rollout controller: drives candidates through
//! `Resident → Shadow → Canary → Live` on top of the model router.
//!
//! The controller never sits on the reply path. Shadow traffic is mirrored
//! through a bounded queue into a worker thread that scores both pools and
//! compares them; when the queue is full the sample is shed, never queued
//! behind. Canary traffic is routed inline by the serving edge (via
//! [`LifecycleController::canary_target`] /
//! [`LifecycleController::predict`]), and every candidate infrastructure
//! fault is retried on the live pool — a misbehaving canary costs latency
//! on a slice of requests, never answers.

use crate::error::LifecycleError;
use crate::journal::{LifecycleJournal, RecoveryReport, ReplayedRollout};
use crate::policy::PromotionPolicy;
use crate::state::{RolloutState, RolloutStatus};
use deepmap_graph::Graph;
use deepmap_router::{ModelConfig, ModelRouter, RouterError};
use deepmap_serve::{Health, ModelBundle, ServeError, ServedPrediction};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

#[cfg(feature = "fault-inject")]
use deepmap_serve::FaultPlan;

/// Controller knobs. The defaults suit tests and small deployments;
/// production callers mostly tune `candidate` (the pool config candidates
/// are built with) and `journal_path`.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Pool configuration candidate models are registered with.
    pub candidate: ModelConfig,
    /// Where the rollout journal lives; `None` runs without persistence
    /// (transitions survive nothing, but everything else works).
    pub journal_path: Option<PathBuf>,
    /// Embed the request graph in each mirror record, turning the journal
    /// into a replayable training-data feed. Costs journal bytes.
    pub journal_graphs: bool,
    /// Mirror queue depth. A full queue sheds the sample — mirroring is
    /// sampled observation, not delivery.
    pub mirror_queue: usize,
    /// Per-rollout latency ring size for the p99 comparison.
    pub latency_window: usize,
    /// Worker housekeeping cadence (canary health watch, pool cleanup,
    /// retired-pool sweeps).
    pub tick: Duration,
}

impl Default for LifecycleConfig {
    fn default() -> LifecycleConfig {
        LifecycleConfig {
            candidate: ModelConfig::default(),
            journal_path: None,
            journal_graphs: false,
            mirror_queue: 256,
            latency_window: 512,
            tick: Duration::from_millis(25),
        }
    }
}

/// Fixed-size latency sample ring; p99 over whatever it currently holds.
struct LatencyRing {
    samples: Vec<u64>,
    cap: usize,
    at: usize,
}

impl LatencyRing {
    fn new(cap: usize) -> LatencyRing {
        LatencyRing {
            samples: Vec::new(),
            cap: cap.max(1),
            at: 0,
        }
    }

    fn push(&mut self, us: u64) {
        if self.samples.len() < self.cap {
            self.samples.push(us);
        } else {
            self.samples[self.at] = us;
            self.at = (self.at + 1) % self.cap;
        }
    }

    fn p99(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 99 / 100]
    }
}

/// One in-flight (or finished) rollout, as the controller tracks it.
struct Rollout {
    id: u64,
    model: String,
    candidate: String,
    policy: PromotionPolicy,
    state: RolloutState,
    reason: Option<String>,
    /// The bundle that was live when the rollout began — what a rollback
    /// after promotion swaps back to.
    previous: Arc<ModelBundle>,
    /// The candidate bundle.
    bundle: Arc<ModelBundle>,
    mirrored: u64,
    agreed: u64,
    mirror_shed: u64,
    live_lat: LatencyRing,
    cand_lat: LatencyRing,
    canary_routed: u64,
    canary_ok: u64,
    canary_faults: u64,
    /// The candidate pool should be unregistered by the worker tick (set
    /// by the data-path trip, which must not block on a pool teardown).
    cleanup_pending: bool,
}

/// A mirrored request waiting to be scored off-path.
struct MirrorJob {
    model: String,
    graph: Graph,
}

struct Shared {
    router: Arc<ModelRouter>,
    config: LifecycleConfig,
    rollouts: Mutex<HashMap<String, Rollout>>,
    journal: Mutex<Option<LifecycleJournal>>,
    stop: AtomicBool,
    /// Rollouts currently in Shadow or Canary — the lock-free early-out
    /// for [`LifecycleController::mirror_tap`] on the hot path.
    active_mirrors: AtomicUsize,
    /// Rollouts currently in Canary — the lock-free early-out for
    /// [`LifecycleController::canary_target`].
    active_canaries: AtomicUsize,
    next_id: AtomicU64,
    mirror_ticket: AtomicU64,
    canary_ticket: AtomicU64,
}

fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

fn mirrors(state: RolloutState) -> bool {
    matches!(state, RolloutState::Shadow | RolloutState::Canary)
}

/// Candidate infrastructure faults — failures of the pool, not of the
/// request. Admission rejections and backpressure are the candidate
/// behaving correctly under load and do not burn the fault budget.
fn is_infra_fault(error: &ServeError) -> bool {
    matches!(
        error,
        ServeError::WorkerPanic
            | ServeError::CircuitOpen
            | ServeError::WaitTimeout
            | ServeError::Shutdown
            | ServeError::DeadlineExceeded
    )
}

impl Shared {
    fn lock_rollouts(&self) -> MutexGuard<'_, HashMap<String, Rollout>> {
        match self.rollouts.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Maintains the lock-free stage counters across a state change.
    fn note_state_change(&self, from: RolloutState, to: RolloutState) {
        if mirrors(from) && !mirrors(to) {
            self.active_mirrors.fetch_sub(1, Ordering::SeqCst);
        }
        if !mirrors(from) && mirrors(to) {
            self.active_mirrors.fetch_add(1, Ordering::SeqCst);
        }
        if from == RolloutState::Canary && to != RolloutState::Canary {
            self.active_canaries.fetch_sub(1, Ordering::SeqCst);
        }
        if from != RolloutState::Canary && to == RolloutState::Canary {
            self.active_canaries.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn journal_begin(
        &self,
        id: u64,
        model: &str,
        candidate: &str,
        policy: &PromotionPolicy,
        bundle_bytes: &[u8],
    ) -> Result<(), LifecycleError> {
        let mut journal = match self.journal.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match journal.as_mut() {
            Some(j) => j.begin(id, model, candidate, policy, bundle_bytes),
            None => Ok(()),
        }
    }

    fn journal_transition(
        &self,
        id: u64,
        model: &str,
        from: RolloutState,
        to: RolloutState,
        reason: Option<&str>,
    ) -> Result<(), LifecycleError> {
        let mut journal = match self.journal.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match journal.as_mut() {
            Some(j) => j.transition(id, model, from, to, now_us(), reason),
            None => Ok(()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn journal_mirror(
        &self,
        id: u64,
        model: &str,
        agree: bool,
        live_class: usize,
        candidate_class: usize,
        live_us: u64,
        candidate_us: u64,
        graph: Option<&Graph>,
    ) {
        let mut journal = match self.journal.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(j) = journal.as_mut() {
            let graph_bytes = graph.map(deepmap_serve::codec::encode_graph);
            // Mirror records are an observability stream; a failed append
            // (disk full, …) must not take down serving.
            let _ = j.mirror(
                id,
                model,
                agree,
                live_class,
                candidate_class,
                live_us,
                candidate_us,
                graph_bytes.as_deref(),
            );
        }
    }

    /// Auto-rollback from the data path or the watch tick. Memory first —
    /// canary routing stops the instant the state flips — then the journal
    /// record. A crash in between replays as a still-active canary, which
    /// simply re-trips on the same evidence after resume.
    fn trip(&self, model: &str, why: String) {
        let (id, from) = {
            let mut rollouts = self.lock_rollouts();
            let Some(entry) = rollouts.get_mut(model) else {
                return;
            };
            if entry.state.is_terminal() {
                return;
            }
            let from = entry.state;
            entry.state = RolloutState::RolledBack;
            entry.reason = Some(why.clone());
            entry.cleanup_pending = true;
            self.note_state_change(from, RolloutState::RolledBack);
            (entry.id, from)
        };
        let _ = self.journal_transition(id, model, from, RolloutState::RolledBack, Some(&why));
    }

    /// Scores one mirrored request on both pools and records the verdict.
    fn process_mirror(&self, job: MirrorJob) {
        let (id, candidate) = {
            let rollouts = self.lock_rollouts();
            let Some(entry) = rollouts.get(&job.model) else {
                return;
            };
            if !mirrors(entry.state) {
                return;
            }
            (entry.id, entry.candidate.clone())
        };
        let Ok(live) = self.router.resolve(&job.model) else {
            return;
        };
        let Ok(cand) = self.router.resolve(&candidate) else {
            return;
        };
        let started = Instant::now();
        let live_pred = live.predict(job.graph.clone());
        let live_us = started.elapsed().as_micros() as u64;
        let started = Instant::now();
        let cand_pred = cand.predict(job.graph.clone());
        let cand_us = started.elapsed().as_micros() as u64;
        // A candidate-side failure feeds the candidate pool's own SLO
        // tracker, which the burn gate and the watch tick read — no need
        // to double-count it here.
        let (Ok(live_pred), Ok(cand_pred)) = (live_pred, cand_pred) else {
            return;
        };
        let agree = live_pred.class == cand_pred.class;
        {
            let mut rollouts = self.lock_rollouts();
            let Some(entry) = rollouts.get_mut(&job.model) else {
                return;
            };
            if entry.id != id {
                return;
            }
            entry.mirrored += 1;
            if agree {
                entry.agreed += 1;
            }
            entry.live_lat.push(live_us);
            entry.cand_lat.push(cand_us);
        }
        let graph = self.config.journal_graphs.then_some(&job.graph);
        self.journal_mirror(
            id,
            &job.model,
            agree,
            live_pred.class,
            cand_pred.class,
            live_us,
            cand_us,
            graph,
        );
    }

    /// Housekeeping: tear down pools the data path flagged, watch canary
    /// health and SLO burn, and sweep retired router pools.
    fn tick(&self) {
        let pending: Vec<String> = {
            let mut rollouts = self.lock_rollouts();
            rollouts
                .values_mut()
                .filter(|r| r.cleanup_pending)
                .map(|r| {
                    r.cleanup_pending = false;
                    r.candidate.clone()
                })
                .collect()
        };
        for candidate in pending {
            // UnknownModel just means it was already gone.
            let _ = self.router.unregister(&candidate);
        }

        let canaries: Vec<(String, String, f64)> = {
            let rollouts = self.lock_rollouts();
            rollouts
                .values()
                .filter(|r| r.state == RolloutState::Canary)
                .map(|r| {
                    (
                        r.model.clone(),
                        r.candidate.clone(),
                        r.policy.max_error_burn,
                    )
                })
                .collect()
        };
        for (model, candidate, max_burn) in canaries {
            match self.router.resolve(&candidate) {
                Err(_) => self.trip(&model, "candidate pool vanished mid-canary".to_string()),
                Ok(engine) => {
                    if matches!(engine.health(), Health::Unavailable) {
                        self.trip(
                            &model,
                            "candidate unavailable (breaker open or pool dead)".to_string(),
                        );
                    } else if let Some((fast, _)) = engine.slo_burn_rates() {
                        if fast > max_burn {
                            self.trip(
                                &model,
                                format!(
                                    "candidate SLO burn {fast:.2} exceeds policy ceiling \
                                     {max_burn:.2}"
                                ),
                            );
                        }
                    }
                }
            }
        }

        self.router.sweep_retired();
    }
}

fn worker_loop(shared: Arc<Shared>, rx: Receiver<MirrorJob>) {
    let mut last_tick = Instant::now();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match rx.recv_timeout(shared.config.tick) {
            Ok(job) => shared.process_mirror(job),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // A saturated mirror queue must not starve the watch: tick on
        // cadence even when jobs keep arriving.
        if last_tick.elapsed() >= shared.config.tick {
            shared.tick();
            last_tick = Instant::now();
        }
    }
}

/// The shadow gates, shared by `advance` (shadow → canary) and `promote`
/// (canary → live). `Err` carries the human-readable reason for
/// [`LifecycleError::NotEligible`].
fn check_gates(entry: &Rollout, candidate_burn: Option<(f64, f64)>) -> Result<(), String> {
    let policy = &entry.policy;
    if entry.mirrored < policy.min_samples {
        return Err(format!(
            "only {} mirrored samples, policy requires {}",
            entry.mirrored, policy.min_samples
        ));
    }
    let agreement = entry.agreed as f64 / entry.mirrored as f64;
    if agreement < policy.min_agreement {
        return Err(format!(
            "agreement {:.4} below policy minimum {:.4}",
            agreement, policy.min_agreement
        ));
    }
    let live_p99 = entry.live_lat.p99().max(1);
    let cand_p99 = entry.cand_lat.p99();
    if cand_p99 as f64 > live_p99 as f64 * policy.max_p99_regression {
        return Err(format!(
            "candidate p99 {cand_p99}us vs live {live_p99}us exceeds the {:.2}x \
             regression budget",
            policy.max_p99_regression
        ));
    }
    if let Some((fast, _)) = candidate_burn {
        if fast > policy.max_error_burn {
            return Err(format!(
                "candidate SLO burn {fast:.2} exceeds policy ceiling {:.2}",
                policy.max_error_burn
            ));
        }
    }
    if entry.canary_faults >= policy.max_canary_faults {
        return Err(format!(
            "canary fault budget exhausted ({} of {})",
            entry.canary_faults, policy.max_canary_faults
        ));
    }
    Ok(())
}

/// Drives versioned rollouts over a [`ModelRouter`]: shadow mirroring,
/// policy-gated canary promotion, automatic rollback, and a crash-safe
/// journal that lets a restarted controller resume mid-flight rollouts.
pub struct LifecycleController {
    shared: Arc<Shared>,
    tx: SyncSender<MirrorJob>,
    worker: Mutex<Option<JoinHandle<()>>>,
    recovery: RecoveryReport,
}

impl LifecycleController {
    /// The derived registry name a model's candidate serves under while
    /// shadowing and canarying.
    pub fn candidate_name(model: &str) -> String {
        format!("{model}.next")
    }

    /// Starts a controller over `router`. When `config.journal_path` is
    /// set, an existing journal is replayed first: finished rollouts
    /// become queryable history, mid-flight rollouts are resumed — their
    /// candidate pools re-registered from the journaled bundle image and
    /// their state machines picked up where the journal left them
    /// (measurement counters restart from zero; the policy's sample floor
    /// re-accumulates before any further promotion).
    pub fn new(
        router: Arc<ModelRouter>,
        config: LifecycleConfig,
    ) -> Result<LifecycleController, LifecycleError> {
        let (journal, replayed, replay) = match &config.journal_path {
            Some(path) => {
                let (journal, replayed, replay) = LifecycleJournal::open(path)?;
                (Some(journal), replayed, Some(replay))
            }
            None => (None, HashMap::new(), None),
        };
        let mut recovery = RecoveryReport {
            records: replay.as_ref().map_or(0, |r| r.records.len() as u64),
            skipped: replay.as_ref().map_or(0, |r| r.skipped_lines as u64),
            salvaged: replay.as_ref().and_then(|r| r.salvaged),
            rollouts: replayed.len() as u64,
            resumed: 0,
        };
        let next_id = replayed.values().map(|r| r.id).max().unwrap_or(0) + 1;

        let (tx, rx) = std::sync::mpsc::sync_channel(config.mirror_queue.max(1));
        let shared = Arc::new(Shared {
            router,
            config,
            rollouts: Mutex::new(HashMap::new()),
            journal: Mutex::new(journal),
            stop: AtomicBool::new(false),
            active_mirrors: AtomicUsize::new(0),
            active_canaries: AtomicUsize::new(0),
            next_id: AtomicU64::new(next_id),
            mirror_ticket: AtomicU64::new(0),
            canary_ticket: AtomicU64::new(0),
        });

        for (_, rep) in replayed {
            if resume_rollout(&shared, rep)? {
                recovery.resumed += 1;
            }
        }

        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("deepmap-lifecycle".to_string())
                .spawn(move || worker_loop(shared, rx))
                .expect("spawn lifecycle worker")
        };

        Ok(LifecycleController {
            shared,
            tx,
            worker: Mutex::new(Some(worker)),
            recovery,
        })
    }

    /// What reopening the journal recovered — record counts, torn-tail
    /// salvage, and how many mid-flight rollouts were resumed.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Begins a rollout: journals the candidate (bundle image included,
    /// fsynced), registers it under [`candidate_name`] behind the router's
    /// registration probe, and enters shadow mode. Fails without touching
    /// the live pool if the policy is malformed, the model is unknown, a
    /// rollout is already in flight, or the candidate fails its probe.
    ///
    /// [`candidate_name`]: LifecycleController::candidate_name
    pub fn begin(
        &self,
        model: &str,
        bundle: Arc<ModelBundle>,
        policy: PromotionPolicy,
    ) -> Result<(), LifecycleError> {
        let _span = deepmap_obs::span("lifecycle.begin").with_str("model", model);
        self.begin_with(model, bundle, policy, |router, name, bundle, config| {
            router.register(name, bundle, config)
        })
    }

    /// [`begin`](LifecycleController::begin) with a deterministic
    /// [`FaultPlan`] wired into the candidate pool's workers — the chaos
    /// entry point rollback-under-fire suites use. The plan poisons only
    /// the candidate; the live pool is untouched. Skips the registration
    /// probe, exactly like the router's chaos registration.
    #[cfg(feature = "fault-inject")]
    pub fn begin_chaos(
        &self,
        model: &str,
        bundle: Arc<ModelBundle>,
        policy: PromotionPolicy,
        plan: FaultPlan,
    ) -> Result<(), LifecycleError> {
        let _span = deepmap_obs::span("lifecycle.begin_chaos").with_str("model", model);
        self.begin_with(
            model,
            bundle,
            policy,
            move |router, name, bundle, config| router.register_chaos(name, bundle, config, plan),
        )
    }

    fn begin_with(
        &self,
        model: &str,
        bundle: Arc<ModelBundle>,
        policy: PromotionPolicy,
        register: impl FnOnce(
            &ModelRouter,
            &str,
            Arc<ModelBundle>,
            ModelConfig,
        ) -> Result<(), RouterError>,
    ) -> Result<(), LifecycleError> {
        policy.validate()?;
        let shared = &self.shared;
        let live = shared.router.resolve(model)?;
        let previous = Arc::clone(live.bundle());
        drop(live);
        let candidate = LifecycleController::candidate_name(model);
        let id = {
            let mut rollouts = shared.lock_rollouts();
            if let Some(existing) = rollouts.get(model) {
                if !existing.state.is_terminal() {
                    return Err(LifecycleError::RolloutActive(model.to_string()));
                }
            }
            let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
            rollouts.insert(
                model.to_string(),
                Rollout {
                    id,
                    model: model.to_string(),
                    candidate: candidate.clone(),
                    policy,
                    state: RolloutState::Resident,
                    reason: None,
                    previous,
                    bundle: Arc::clone(&bundle),
                    mirrored: 0,
                    agreed: 0,
                    mirror_shed: 0,
                    live_lat: LatencyRing::new(shared.config.latency_window),
                    cand_lat: LatencyRing::new(shared.config.latency_window),
                    canary_routed: 0,
                    canary_ok: 0,
                    canary_faults: 0,
                    cleanup_pending: false,
                },
            );
            id
        };
        shared.journal_begin(id, model, &candidate, &policy, &bundle.to_bytes())?;

        // A candidate pool left over from an earlier crashed rollout would
        // collide; retire it first.
        if shared.router.resolve(&candidate).is_ok() {
            let _ = shared.router.unregister(&candidate);
        }
        if let Err(e) = register(
            &shared.router,
            &candidate,
            bundle,
            shared.config.candidate.clone(),
        ) {
            let reason = e.to_string();
            let _ = shared.journal_transition(
                id,
                model,
                RolloutState::Resident,
                RolloutState::Failed,
                Some(&reason),
            );
            let mut rollouts = shared.lock_rollouts();
            if let Some(entry) = rollouts.get_mut(model) {
                if entry.id == id {
                    entry.state = RolloutState::Failed;
                    entry.reason = Some(reason);
                }
            }
            return Err(e.into());
        }

        shared.journal_transition(
            id,
            model,
            RolloutState::Resident,
            RolloutState::Shadow,
            None,
        )?;
        let mut rollouts = shared.lock_rollouts();
        if let Some(entry) = rollouts.get_mut(model) {
            if entry.id == id && entry.state == RolloutState::Resident {
                entry.state = RolloutState::Shadow;
                shared.note_state_change(RolloutState::Resident, RolloutState::Shadow);
            }
        }
        Ok(())
    }

    /// Shadow → canary, gated by the policy: enough mirrored samples,
    /// agreement at or above the floor, candidate p99 within the
    /// regression budget, and candidate SLO burn under the ceiling.
    /// Returns [`LifecycleError::NotEligible`] naming the failed gate.
    pub fn advance(&self, model: &str) -> Result<(), LifecycleError> {
        let _span = deepmap_obs::span("lifecycle.advance").with_str("model", model);
        let shared = &self.shared;
        let (id, candidate) = {
            let rollouts = shared.lock_rollouts();
            let entry = rollouts
                .get(model)
                .ok_or_else(|| LifecycleError::NoRollout(model.to_string()))?;
            if entry.state != RolloutState::Shadow {
                return Err(LifecycleError::BadState {
                    model: model.to_string(),
                    state: entry.state,
                    wanted: "shadow",
                });
            }
            (entry.id, entry.candidate.clone())
        };
        let burn = shared
            .router
            .resolve(&candidate)
            .ok()
            .and_then(|e| e.slo_burn_rates());
        {
            let rollouts = shared.lock_rollouts();
            let entry = rollouts
                .get(model)
                .ok_or_else(|| LifecycleError::NoRollout(model.to_string()))?;
            check_gates(entry, burn).map_err(|reason| LifecycleError::NotEligible {
                model: model.to_string(),
                reason,
            })?;
        }
        shared.journal_transition(id, model, RolloutState::Shadow, RolloutState::Canary, None)?;
        let mut rollouts = shared.lock_rollouts();
        if let Some(entry) = rollouts.get_mut(model) {
            if entry.id == id && entry.state == RolloutState::Shadow {
                entry.state = RolloutState::Canary;
                shared.note_state_change(RolloutState::Shadow, RolloutState::Canary);
            }
        }
        Ok(())
    }

    /// Canary → live: re-checks every gate, then swaps the candidate into
    /// the live slot via the router's probe-gated atomic reload and
    /// retires the candidate pool. In-flight requests on the old pool
    /// finish on their own clones; nothing is dropped.
    pub fn promote(&self, model: &str) -> Result<(), LifecycleError> {
        let _span = deepmap_obs::span("lifecycle.promote").with_str("model", model);
        let shared = &self.shared;
        let (id, candidate, bundle) = {
            let rollouts = shared.lock_rollouts();
            let entry = rollouts
                .get(model)
                .ok_or_else(|| LifecycleError::NoRollout(model.to_string()))?;
            if entry.state != RolloutState::Canary {
                return Err(LifecycleError::BadState {
                    model: model.to_string(),
                    state: entry.state,
                    wanted: "canary",
                });
            }
            (entry.id, entry.candidate.clone(), Arc::clone(&entry.bundle))
        };
        let burn = shared
            .router
            .resolve(&candidate)
            .ok()
            .and_then(|e| e.slo_burn_rates());
        {
            let rollouts = shared.lock_rollouts();
            let entry = rollouts
                .get(model)
                .ok_or_else(|| LifecycleError::NoRollout(model.to_string()))?;
            check_gates(entry, burn).map_err(|reason| LifecycleError::NotEligible {
                model: model.to_string(),
                reason,
            })?;
        }
        // The probe-gated swap: a candidate that fails its probe here
        // leaves the resident pool untouched and the rollout in canary.
        shared.router.reload(model, bundle)?;
        let _ = shared.router.unregister(&candidate);
        shared.journal_transition(id, model, RolloutState::Canary, RolloutState::Live, None)?;
        let mut rollouts = shared.lock_rollouts();
        if let Some(entry) = rollouts.get_mut(model) {
            if entry.id == id && entry.state == RolloutState::Canary {
                entry.state = RolloutState::Live;
                shared.note_state_change(RolloutState::Canary, RolloutState::Live);
            }
        }
        Ok(())
    }

    /// Operator rollback. From shadow or canary this withdraws the
    /// candidate (the live pool was never touched); from live it swaps the
    /// previous bundle back through the same probe-gated reload that
    /// promoted the candidate.
    pub fn rollback(&self, model: &str, reason: &str) -> Result<(), LifecycleError> {
        let _span = deepmap_obs::span("lifecycle.rollback").with_str("model", model);
        let shared = &self.shared;
        let (id, from, candidate, previous) = {
            let rollouts = shared.lock_rollouts();
            let entry = rollouts
                .get(model)
                .ok_or_else(|| LifecycleError::NoRollout(model.to_string()))?;
            if entry.state.is_terminal() && entry.state != RolloutState::Live {
                return Err(LifecycleError::BadState {
                    model: model.to_string(),
                    state: entry.state,
                    wanted: "an active rollout or live",
                });
            }
            (
                entry.id,
                entry.state,
                entry.candidate.clone(),
                Arc::clone(&entry.previous),
            )
        };
        if from == RolloutState::Live {
            shared.router.reload(model, previous)?;
        }
        let _ = shared.router.unregister(&candidate);
        shared.journal_transition(id, model, from, RolloutState::RolledBack, Some(reason))?;
        let mut rollouts = shared.lock_rollouts();
        if let Some(entry) = rollouts.get_mut(model) {
            if entry.id == id && entry.state == from {
                entry.state = RolloutState::RolledBack;
                entry.reason = Some(reason.to_string());
                shared.note_state_change(from, RolloutState::RolledBack);
            }
        }
        Ok(())
    }

    /// Offers a live request for shadow mirroring. Lock-free no-op when no
    /// rollout is mirroring; otherwise samples by the rollout's mirror
    /// fraction and hands a clone to the scoring worker through a bounded
    /// queue — a full queue sheds the sample and counts it, never blocks.
    /// Always off the reply path: the caller's response is unaffected.
    pub fn mirror_tap(&self, model: &str, graph: &Graph) {
        let shared = &self.shared;
        if shared.active_mirrors.load(Ordering::SeqCst) == 0 {
            return;
        }
        {
            let rollouts = shared.lock_rollouts();
            let Some(entry) = rollouts.get(model) else {
                return;
            };
            if !mirrors(entry.state) {
                return;
            }
            let permille = (entry.policy.mirror_fraction * 1000.0) as u64;
            let ticket = shared.mirror_ticket.fetch_add(1, Ordering::SeqCst);
            if ticket % 1000 >= permille {
                return;
            }
        }
        let job = MirrorJob {
            model: model.to_string(),
            graph: graph.clone(),
        };
        match self.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                let mut rollouts = shared.lock_rollouts();
                if let Some(entry) = rollouts.get_mut(model) {
                    entry.mirror_shed += 1;
                }
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// When the model has a canary in flight and this request falls in the
    /// canary slice, returns the candidate's registry name to route to.
    /// Lock-free `None` when no canary is active.
    pub fn canary_target(&self, model: &str) -> Option<String> {
        let shared = &self.shared;
        if shared.active_canaries.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut rollouts = shared.lock_rollouts();
        let entry = rollouts.get_mut(model)?;
        if entry.state != RolloutState::Canary || entry.cleanup_pending {
            return None;
        }
        let permille = (entry.policy.canary_fraction * 1000.0) as u64;
        let ticket = shared.canary_ticket.fetch_add(1, Ordering::SeqCst);
        if ticket % 1000 >= permille {
            return None;
        }
        entry.canary_routed += 1;
        Some(entry.candidate.clone())
    }

    /// Reports how a canary-routed request went: `None` for success, the
    /// serve error otherwise. Infrastructure faults (panic, breaker,
    /// timeout, shutdown) burn the policy's fault budget and trip an
    /// automatic rollback when it is exhausted; backpressure and admission
    /// rejections are the candidate behaving and burn nothing.
    pub fn report_canary(&self, model: &str, error: Option<&ServeError>) {
        let shared = &self.shared;
        let need_trip = {
            let mut rollouts = shared.lock_rollouts();
            let Some(entry) = rollouts.get_mut(model) else {
                return;
            };
            if entry.state != RolloutState::Canary {
                return;
            }
            match error {
                None => {
                    entry.canary_ok += 1;
                    false
                }
                Some(e) if is_infra_fault(e) => {
                    entry.canary_faults += 1;
                    entry.canary_faults >= entry.policy.max_canary_faults
                }
                Some(_) => false,
            }
        };
        if need_trip {
            shared.trip(
                model,
                "canary fault budget exhausted — automatic rollback".to_string(),
            );
        }
    }

    /// The canary-aware data path: mirrors the request if a rollout is
    /// shadowing, routes it to the candidate if it falls in the canary
    /// slice, and — on any candidate infrastructure fault — reports the
    /// fault and retries on the live pool, so a dying canary never costs a
    /// client its answer.
    pub fn predict(&self, model: &str, graph: Graph) -> Result<ServedPrediction, RouterError> {
        self.mirror_tap(model, &graph);
        if let Some(candidate) = self.canary_target(model) {
            match self.shared.router.predict(&candidate, graph.clone()) {
                Ok(prediction) => {
                    self.report_canary(model, None);
                    return Ok(prediction);
                }
                Err(RouterError::Serve(e)) => {
                    self.report_canary(model, Some(&e));
                    // fall through to the live pool
                }
                Err(_) => {
                    // Candidate unresolvable (already torn down after a
                    // trip) — the live pool answers.
                }
            }
        }
        self.shared.router.predict(model, graph)
    }

    /// The rollout's current status, as the `RolloutStatus` wire frame
    /// reports it.
    pub fn status(&self, model: &str) -> Result<RolloutStatus, LifecycleError> {
        let candidate = {
            let rollouts = self.shared.lock_rollouts();
            rollouts
                .get(model)
                .ok_or_else(|| LifecycleError::NoRollout(model.to_string()))?
                .candidate
                .clone()
        };
        let burn = self
            .shared
            .router
            .resolve(&candidate)
            .ok()
            .and_then(|e| e.slo_burn_rates())
            .unwrap_or((0.0, 0.0));
        let rollouts = self.shared.lock_rollouts();
        let entry = rollouts
            .get(model)
            .ok_or_else(|| LifecycleError::NoRollout(model.to_string()))?;
        Ok(snapshot(entry, burn))
    }

    /// Status of every rollout the controller knows, sorted by model.
    pub fn list(&self) -> Vec<RolloutStatus> {
        let models: Vec<String> = {
            let rollouts = self.shared.lock_rollouts();
            rollouts.keys().cloned().collect()
        };
        let mut statuses: Vec<RolloutStatus> = models
            .iter()
            .filter_map(|model| self.status(model).ok())
            .collect();
        statuses.sort_by(|a, b| a.model.cmp(&b.model));
        statuses
    }

    /// Stops the mirror worker and joins it. Rollout state stays queryable
    /// (and journaled); candidate pools stay registered — a controller
    /// restart resumes them from the journal.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let handle = {
            let mut worker = match self.worker.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            worker.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for LifecycleController {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn snapshot(entry: &Rollout, burn: (f64, f64)) -> RolloutStatus {
    RolloutStatus {
        model: entry.model.clone(),
        candidate: entry.candidate.clone(),
        rollout_id: entry.id,
        state: entry.state,
        reason: entry.reason.clone(),
        mirrored: entry.mirrored,
        agreed: entry.agreed,
        agreement: if entry.mirrored > 0 {
            entry.agreed as f64 / entry.mirrored as f64
        } else {
            0.0
        },
        mirror_shed: entry.mirror_shed,
        live_p99_us: entry.live_lat.p99(),
        candidate_p99_us: entry.cand_lat.p99(),
        canary_routed: entry.canary_routed,
        canary_ok: entry.canary_ok,
        canary_faults: entry.canary_faults,
        candidate_burn_fast: burn.0,
        candidate_burn_slow: burn.1,
    }
}

/// Rebuilds one journaled rollout at controller start. Returns `Ok(true)`
/// when a mid-flight rollout was actually resumed (candidate pool
/// re-registered and the state machine re-armed).
fn resume_rollout(shared: &Arc<Shared>, rep: ReplayedRollout) -> Result<bool, LifecycleError> {
    let bundle = match ModelBundle::from_bytes(&rep.bundle_bytes) {
        Ok(bundle) => Arc::new(bundle),
        Err(e) => {
            if !rep.state.is_terminal() {
                let _ = shared.journal_transition(
                    rep.id,
                    &rep.model,
                    rep.state,
                    RolloutState::Failed,
                    Some(&format!("journaled bundle image undecodable: {e}")),
                );
            }
            // Without a bundle there is nothing to track; the journal
            // records why.
            return Ok(false);
        }
    };

    let live = shared.router.resolve(&rep.model).ok();
    let previous = live
        .as_ref()
        .map(|e| Arc::clone(e.bundle()))
        .unwrap_or_else(|| Arc::clone(&bundle));

    let mut entry = Rollout {
        id: rep.id,
        model: rep.model.clone(),
        candidate: rep.candidate.clone(),
        policy: rep.policy,
        state: rep.state,
        reason: rep.reason.clone(),
        previous,
        bundle: Arc::clone(&bundle),
        mirrored: 0,
        agreed: 0,
        mirror_shed: 0,
        live_lat: LatencyRing::new(shared.config.latency_window),
        cand_lat: LatencyRing::new(shared.config.latency_window),
        canary_routed: 0,
        canary_ok: 0,
        canary_faults: 0,
        cleanup_pending: false,
    };

    if rep.state.is_terminal() {
        // Finished history: queryable, nothing to re-arm.
        shared.lock_rollouts().insert(rep.model, entry);
        return Ok(false);
    }

    if live.is_none() {
        let reason = format!("model '{}' is not resident in the router", rep.model);
        let _ = shared.journal_transition(
            rep.id,
            &rep.model,
            rep.state,
            RolloutState::Failed,
            Some(&reason),
        );
        entry.state = RolloutState::Failed;
        entry.reason = Some(reason);
        shared.lock_rollouts().insert(rep.model, entry);
        return Ok(false);
    }

    // Re-register the candidate from the journaled image. If the pool
    // survived (the router outlived the controller), it is already there.
    let registered = match shared.router.register(
        &rep.candidate,
        Arc::clone(&bundle),
        shared.config.candidate.clone(),
    ) {
        Ok(()) => true,
        Err(RouterError::AlreadyRegistered(_)) => true,
        Err(e) => {
            let reason = format!("candidate re-registration failed on resume: {e}");
            let _ = shared.journal_transition(
                rep.id,
                &rep.model,
                rep.state,
                RolloutState::Failed,
                Some(&reason),
            );
            entry.state = RolloutState::Failed;
            entry.reason = Some(reason);
            false
        }
    };
    if !registered {
        shared.lock_rollouts().insert(rep.model, entry);
        return Ok(false);
    }

    // A rollout journaled as resident crashed between begin and shadow
    // entry; with the candidate now registered, it proceeds to shadow.
    if entry.state == RolloutState::Resident {
        shared.journal_transition(
            rep.id,
            &rep.model,
            RolloutState::Resident,
            RolloutState::Shadow,
            Some("resumed from journal"),
        )?;
        entry.state = RolloutState::Shadow;
    }
    shared.note_state_change(RolloutState::Resident, entry.state);
    shared.lock_rollouts().insert(rep.model, entry);
    Ok(true)
}
