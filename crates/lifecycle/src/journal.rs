//! The crash-safe rollout journal.
//!
//! Every lifecycle decision is a CRC-framed JSONL record
//! ([`Framing::Checked`] from `deepmap-obs`): `begin` carries the full
//! candidate bundle image and policy so a restarted controller can rebuild
//! the rollout from the journal alone; `transition` records are fsynced
//! before the in-memory state machine moves, so the journal never lags
//! reality across a crash; `mirror` records stream the shadow-traffic
//! comparisons (optionally with the request graph itself), which makes the
//! journal double as a training-data feed. A torn final record — the
//! signature of a kill mid-write — is truncated and salvaged on reopen,
//! never fatal.

use crate::error::LifecycleError;
use crate::policy::PromotionPolicy;
use crate::state::RolloutState;
use deepmap_obs::journal::{Framing, Journal, Replay, Salvage};
use deepmap_obs::json::Json;
use std::collections::HashMap;
use std::path::Path;

/// Lowercase hex encoding for bundle/graph images embedded in records.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Parses [`to_hex`] back; `None` on odd length or a non-hex digit.
pub fn from_hex(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// One rollout reconstructed from the journal: everything `begin` wrote
/// plus the last state `transition` reached. Non-terminal entries are what
/// a restarted controller resumes.
#[derive(Debug, Clone)]
pub struct ReplayedRollout {
    /// Monotonic rollout id.
    pub id: u64,
    /// The live model the rollout targets.
    pub model: String,
    /// The candidate's derived registry name.
    pub candidate: String,
    /// The policy the rollout was begun with.
    pub policy: PromotionPolicy,
    /// The candidate bundle image (`ModelBundle::to_bytes`).
    pub bundle_bytes: Vec<u8>,
    /// The last journaled state.
    pub state: RolloutState,
    /// The last journaled transition reason, if any.
    pub reason: Option<String>,
}

/// What reopening the journal recovered — surfaced through
/// [`LifecycleController::recovery`](crate::LifecycleController::recovery)
/// so operators (and the bench self-checks) can see a crash was survived.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Intact records replayed.
    pub records: u64,
    /// Damaged records skipped before the salvage point.
    pub skipped: u64,
    /// Present when a torn/corrupt tail was truncated on reopen.
    pub salvaged: Option<Salvage>,
    /// Rollouts found in the journal (terminal and not).
    pub rollouts: u64,
    /// Rollouts that were mid-flight and are being resumed.
    pub resumed: u64,
}

/// The lifecycle journal: a [`Framing::Checked`] JSONL stream plus the
/// fold that turns it back into rollout state.
pub struct LifecycleJournal {
    inner: Journal,
}

impl LifecycleJournal {
    /// Opens (or creates) the journal at `path`, replaying any existing
    /// records. Returns the journal positioned for append, the per-model
    /// rollout fold, and the raw replay (record count, salvage info).
    pub fn open(
        path: &Path,
    ) -> Result<(LifecycleJournal, HashMap<String, ReplayedRollout>, Replay), LifecycleError> {
        let (inner, replay) = Journal::open(path, Framing::Checked, true)?;
        let mut rollouts: HashMap<String, ReplayedRollout> = HashMap::new();
        for record in &replay.records {
            fold_record(&mut rollouts, record)?;
        }
        Ok((LifecycleJournal { inner }, rollouts, replay))
    }

    /// Journals the start of a rollout — candidate bundle image and policy
    /// included — and fsyncs before returning. After this record lands, a
    /// crashed controller can rebuild the whole rollout from disk.
    pub fn begin(
        &mut self,
        id: u64,
        model: &str,
        candidate: &str,
        policy: &PromotionPolicy,
        bundle_bytes: &[u8],
    ) -> Result<(), LifecycleError> {
        let record = Json::Obj(vec![
            ("kind".to_string(), Json::Str("begin".to_string())),
            ("rollout".to_string(), Json::Num(id as f64)),
            ("model".to_string(), Json::Str(model.to_string())),
            ("candidate".to_string(), Json::Str(candidate.to_string())),
            ("policy".to_string(), policy.to_json()),
            ("bundle_hex".to_string(), Json::Str(to_hex(bundle_bytes))),
        ]);
        self.inner.append_sync(&record)?;
        Ok(())
    }

    /// Journals a state transition and fsyncs. Called *before* the
    /// in-memory state machine moves: on a crash the journal may be one
    /// step ahead of what the controller acted on, never behind.
    pub fn transition(
        &mut self,
        id: u64,
        model: &str,
        from: RolloutState,
        to: RolloutState,
        at_us: u64,
        reason: Option<&str>,
    ) -> Result<(), LifecycleError> {
        let mut fields = vec![
            ("kind".to_string(), Json::Str("transition".to_string())),
            ("rollout".to_string(), Json::Num(id as f64)),
            ("model".to_string(), Json::Str(model.to_string())),
            ("from".to_string(), Json::Str(from.name().to_string())),
            ("to".to_string(), Json::Str(to.name().to_string())),
            ("at_us".to_string(), Json::Num(at_us as f64)),
        ];
        if let Some(reason) = reason {
            fields.push(("reason".to_string(), Json::Str(reason.to_string())));
        }
        self.inner.append_sync(&Json::Obj(fields))?;
        Ok(())
    }

    /// Journals one mirrored comparison (flushed, not fsynced — mirror
    /// records are an observability/training stream, not recovery state;
    /// losing the tail on a crash costs samples, not correctness).
    #[allow(clippy::too_many_arguments)]
    pub fn mirror(
        &mut self,
        id: u64,
        model: &str,
        agree: bool,
        live_class: usize,
        candidate_class: usize,
        live_us: u64,
        candidate_us: u64,
        graph_bytes: Option<&[u8]>,
    ) -> Result<(), LifecycleError> {
        let mut fields = vec![
            ("kind".to_string(), Json::Str("mirror".to_string())),
            ("rollout".to_string(), Json::Num(id as f64)),
            ("model".to_string(), Json::Str(model.to_string())),
            (
                "agree".to_string(),
                Json::Num(if agree { 1.0 } else { 0.0 }),
            ),
            ("live_class".to_string(), Json::Num(live_class as f64)),
            (
                "candidate_class".to_string(),
                Json::Num(candidate_class as f64),
            ),
            ("live_us".to_string(), Json::Num(live_us as f64)),
            ("candidate_us".to_string(), Json::Num(candidate_us as f64)),
        ];
        if let Some(bytes) = graph_bytes {
            fields.push(("graph_hex".to_string(), Json::Str(to_hex(bytes))));
        }
        self.inner.append(&Json::Obj(fields))?;
        Ok(())
    }
}

/// Applies one replayed record to the per-model fold. `mirror` records are
/// ignored here (they feed training, not the state machine). Records that
/// reference a rollout the fold has never seen are tolerated only when the
/// `begin` plausibly sat before a salvage point — anything structurally
/// invalid is [`LifecycleError::Corrupt`].
fn fold_record(
    rollouts: &mut HashMap<String, ReplayedRollout>,
    record: &Json,
) -> Result<(), LifecycleError> {
    let kind = record
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| LifecycleError::Corrupt("record without a 'kind' field".to_string()))?;
    match kind {
        "begin" => {
            let want = |field: &str| -> Result<&Json, LifecycleError> {
                record.get(field).ok_or_else(|| {
                    LifecycleError::Corrupt(format!("begin record missing '{field}'"))
                })
            };
            let model = want("model")?
                .as_str()
                .ok_or_else(|| LifecycleError::Corrupt("begin 'model' not a string".to_string()))?
                .to_string();
            let policy = PromotionPolicy::from_json(want("policy")?).ok_or_else(|| {
                LifecycleError::Corrupt(format!("begin record for '{model}' has a bad policy"))
            })?;
            let bundle_bytes = from_hex(want("bundle_hex")?.as_str().ok_or_else(|| {
                LifecycleError::Corrupt("begin 'bundle_hex' not a string".to_string())
            })?)
            .ok_or_else(|| {
                LifecycleError::Corrupt(format!("begin record for '{model}' has bad bundle hex"))
            })?;
            let entry = ReplayedRollout {
                id: want("rollout")?.as_u64().ok_or_else(|| {
                    LifecycleError::Corrupt("begin 'rollout' not an id".to_string())
                })?,
                candidate: want("candidate")?
                    .as_str()
                    .ok_or_else(|| {
                        LifecycleError::Corrupt("begin 'candidate' not a string".to_string())
                    })?
                    .to_string(),
                model: model.clone(),
                policy,
                bundle_bytes,
                state: RolloutState::Resident,
                reason: None,
            };
            // A later begin for the same model supersedes an earlier
            // (necessarily terminal) rollout — last record wins, exactly
            // like the live controller's map.
            rollouts.insert(model, entry);
        }
        "transition" => {
            let model = record.get("model").and_then(Json::as_str).ok_or_else(|| {
                LifecycleError::Corrupt("transition record without a model".to_string())
            })?;
            let to = record
                .get("to")
                .and_then(Json::as_str)
                .and_then(RolloutState::from_name)
                .ok_or_else(|| {
                    LifecycleError::Corrupt(format!(
                        "transition record for '{model}' has a bad 'to' state"
                    ))
                })?;
            let id = record.get("rollout").and_then(Json::as_u64);
            if let Some(entry) = rollouts.get_mut(model) {
                if id == Some(entry.id) {
                    entry.state = to;
                    entry.reason = record
                        .get("reason")
                        .and_then(Json::as_str)
                        .map(str::to_string);
                }
                // A transition for a different rollout id of this model is
                // stale history (its begin was superseded) — skip it.
            }
            // A transition with no matching begin at all can only happen if
            // the begin sat in a salvaged region; the rollout is
            // unreconstructable either way, so it is dropped, not fatal.
        }
        "mirror" => {}
        other => {
            return Err(LifecycleError::Corrupt(format!(
                "unknown record kind '{other}'"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn begin_and_transitions_fold_back() {
        let dir = std::env::temp_dir().join(format!(
            "deepmap-lifecycle-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rollouts.jsonl");
        let _ = std::fs::remove_file(&path);

        let policy = PromotionPolicy::default();
        {
            let (mut journal, rollouts, replay) = LifecycleJournal::open(&path).unwrap();
            assert!(rollouts.is_empty());
            assert_eq!(replay.records.len(), 0);
            journal
                .begin(1, "live", "live.next", &policy, &[1, 2, 3])
                .unwrap();
            journal
                .transition(
                    1,
                    "live",
                    RolloutState::Resident,
                    RolloutState::Shadow,
                    10,
                    None,
                )
                .unwrap();
            journal
                .mirror(1, "live", true, 0, 0, 120, 130, Some(&[9, 9]))
                .unwrap();
            journal
                .transition(
                    1,
                    "live",
                    RolloutState::Shadow,
                    RolloutState::Canary,
                    20,
                    Some("gates clear"),
                )
                .unwrap();
        }

        let (_journal, rollouts, replay) = LifecycleJournal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 4);
        assert!(replay.salvaged.is_none());
        let entry = rollouts.get("live").unwrap();
        assert_eq!(entry.id, 1);
        assert_eq!(entry.candidate, "live.next");
        assert_eq!(entry.state, RolloutState::Canary);
        assert_eq!(entry.reason.as_deref(), Some("gates clear"));
        assert_eq!(entry.bundle_bytes, vec![1, 2, 3]);
        assert_eq!(entry.policy, policy);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn later_begin_supersedes_and_stale_transitions_are_ignored() {
        let mut rollouts = HashMap::new();
        let policy = PromotionPolicy::default();
        let begin = |id: u64| {
            Json::Obj(vec![
                ("kind".to_string(), Json::Str("begin".to_string())),
                ("rollout".to_string(), Json::Num(id as f64)),
                ("model".to_string(), Json::Str("live".to_string())),
                ("candidate".to_string(), Json::Str("live.next".to_string())),
                ("policy".to_string(), policy.to_json()),
                ("bundle_hex".to_string(), Json::Str("0a0b".to_string())),
            ])
        };
        let transition = |id: u64, to: &str| {
            Json::Obj(vec![
                ("kind".to_string(), Json::Str("transition".to_string())),
                ("rollout".to_string(), Json::Num(id as f64)),
                ("model".to_string(), Json::Str("live".to_string())),
                ("from".to_string(), Json::Str("resident".to_string())),
                ("to".to_string(), Json::Str(to.to_string())),
                ("at_us".to_string(), Json::Num(1.0)),
            ])
        };
        fold_record(&mut rollouts, &begin(1)).unwrap();
        fold_record(&mut rollouts, &transition(1, "shadow")).unwrap();
        fold_record(&mut rollouts, &begin(2)).unwrap();
        // Stale transition from rollout 1 must not touch rollout 2.
        fold_record(&mut rollouts, &transition(1, "canary")).unwrap();
        let entry = rollouts.get("live").unwrap();
        assert_eq!(entry.id, 2);
        assert_eq!(entry.state, RolloutState::Resident);

        // Unknown kinds are corruption, not silence.
        let bogus = Json::Obj(vec![("kind".to_string(), Json::Str("zombie".to_string()))]);
        assert!(matches!(
            fold_record(&mut rollouts, &bogus),
            Err(LifecycleError::Corrupt(_))
        ));
    }
}
