//! Typed lifecycle errors.

use crate::state::RolloutState;
use deepmap_obs::journal::JournalError;
use deepmap_router::RouterError;
use std::fmt;

/// Everything that can go wrong driving a rollout. Wire handlers map each
/// variant to its own error code, so remote operators see the same
/// taxonomy in-process callers do.
#[derive(Debug)]
pub enum LifecycleError {
    /// The model has no rollout (active or finished) to operate on.
    NoRollout(
        /// The model name queried.
        String,
    ),
    /// A rollout for this model is already in flight; finish or roll it
    /// back before beginning another.
    RolloutActive(
        /// The model name with the active rollout.
        String,
    ),
    /// The requested transition is not legal from the rollout's current
    /// state (e.g. `promote` before `advance`).
    BadState {
        /// The model whose rollout refused the transition.
        model: String,
        /// Where the rollout actually is.
        state: RolloutState,
        /// The state the operation needed.
        wanted: &'static str,
    },
    /// The promotion policy is not satisfied yet — the reason spells out
    /// which gate failed and by how much.
    NotEligible {
        /// The model whose rollout was evaluated.
        model: String,
        /// The failed gate, human-readable.
        reason: String,
    },
    /// The policy itself is malformed (fraction outside `[0, 1]`, zero
    /// sample floor, …).
    BadPolicy(
        /// What is wrong with it.
        String,
    ),
    /// The underlying router refused (unknown model, probe failure, …).
    Router(RouterError),
    /// The rollout journal could not be written or opened.
    Journal(JournalError),
    /// The journal replayed, but its record stream is not a valid rollout
    /// history (unknown record kind, undecodable bundle image, …).
    Corrupt(
        /// What the replay choked on.
        String,
    ),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::NoRollout(model) => {
                write!(f, "model '{model}' has no rollout")
            }
            LifecycleError::RolloutActive(model) => {
                write!(f, "model '{model}' already has a rollout in flight")
            }
            LifecycleError::BadState {
                model,
                state,
                wanted,
            } => {
                write!(
                    f,
                    "rollout for '{model}' is {state}, but this operation needs {wanted}"
                )
            }
            LifecycleError::NotEligible { model, reason } => {
                write!(f, "rollout for '{model}' is not eligible: {reason}")
            }
            LifecycleError::BadPolicy(reason) => write!(f, "bad promotion policy: {reason}"),
            LifecycleError::Router(e) => write!(f, "router: {e}"),
            LifecycleError::Journal(e) => write!(f, "rollout journal: {e}"),
            LifecycleError::Corrupt(reason) => {
                write!(f, "rollout journal replay: {reason}")
            }
        }
    }
}

impl std::error::Error for LifecycleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LifecycleError::Router(e) => Some(e),
            LifecycleError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RouterError> for LifecycleError {
    fn from(e: RouterError) -> LifecycleError {
        LifecycleError::Router(e)
    }
}

impl From<JournalError> for LifecycleError {
    fn from(e: JournalError) -> LifecycleError {
        LifecycleError::Journal(e)
    }
}
