//! A small blocking client for the `DMW2` wire protocol.
//!
//! One [`NetClient`] wraps one TCP connection and offers a synchronous
//! request/reply call per frame type. A client speaks one dialect for the
//! life of the connection: [`NetClient::connect`] speaks `DMW2` and can
//! name models ([`NetClient::predict_as`], [`NetClient::health_of`], the
//! admin calls); [`NetClient::connect_v1`] speaks the legacy `DMW1` frames
//! byte-for-byte — it exists so the compatibility tests exercise exactly
//! what a not-yet-upgraded client sends, and it always routes to the
//! server's default model.
//!
//! Replies are validated as strictly on the client as requests are on the
//! server: unexpected frame types, oversized replies, and malformed bodies
//! all surface as typed [`ClientError`]s, never panics. Used by the
//! integration tests, the protocol-torture suite, and the `serve_net` /
//! `router_bench` benches.

use crate::protocol::{
    append_trace_trailer, decode_error_body, decode_model_list, encode_batch_request,
    encode_frame_v, encode_named_body, read_frame, ErrorCode, FrameType, RolloutAction, WireError,
    WireModelInfo, DEFAULT_MAX_FRAME, MAX_MODEL_NAME, WIRE_V1, WIRE_VERSION,
};
use deepmap_graph::Graph;
use deepmap_lifecycle::{PromotionPolicy, RolloutStatus};
use deepmap_obs::json::Json;
use deepmap_serve::codec::{decode_prediction, encode_graph, Reader};
use deepmap_serve::Prediction;
use std::fmt;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A server-side rejection, decoded from an error frame (or a per-item
/// error in a batch reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerReject {
    /// The typed reason.
    pub code: ErrorCode,
    /// The server's human-readable message.
    pub message: String,
}

impl fmt::Display for ServerReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "server rejected request ({}): {}",
            self.code, self.message
        )
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout, server closed).
    Io(std::io::Error),
    /// The server's reply violated the wire protocol.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server(ServerReject),
    /// The server answered with a frame type the request cannot accept.
    UnexpectedReply(
        /// The frame type that arrived.
        FrameType,
    ),
    /// The call is not expressible in this connection's wire dialect
    /// (naming a model, or an admin call, on a `DMW1` connection).
    DialectMismatch(
        /// What was attempted.
        String,
    ),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Wire(e) => write!(f, "protocol violation in reply: {e}"),
            ClientError::Server(r) => write!(f, "{r}"),
            ClientError::UnexpectedReply(t) => write!(f, "unexpected reply frame {t:?}"),
            ClientError::DialectMismatch(what) => {
                write!(
                    f,
                    "{what} requires a DMW2 connection (this one speaks DMW1)"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Server health as reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteHealth {
    /// Breaker closed, all replicas live.
    Ready,
    /// Serving below full strength.
    Degraded {
        /// Workers currently able to take batches.
        live_workers: u32,
    },
    /// Not serving (breaker open, no replicas, or draining).
    Unavailable,
}

/// A blocking `DMW2` (or legacy `DMW1`) client over one TCP connection.
pub struct NetClient {
    stream: TcpStream,
    max_frame: u32,
    wire_version: u8,
}

impl NetClient {
    /// Connects speaking `DMW2`, with a 5-second default for connect,
    /// read, and write timeouts (see [`NetClient::connect_with_timeout`]
    /// to choose).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects speaking the legacy `DMW1` dialect: no model names, every
    /// request routed to the server's default model. Frames go out
    /// byte-identical to what a PR 6 client sends.
    pub fn connect_v1(addr: impl ToSocketAddrs) -> Result<NetClient, ClientError> {
        let mut client = Self::connect_with_timeout(addr, Duration::from_secs(5))?;
        client.wire_version = WIRE_V1;
        Ok(client)
    }

    /// Connects (speaking `DMW2`) and applies `timeout` to reads and
    /// writes. A reply slower than the timeout surfaces as
    /// [`ClientError::Io`].
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<NetClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        Ok(NetClient {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            wire_version: WIRE_VERSION,
        })
    }

    /// The dialect this connection speaks (1 or 2).
    pub fn wire_version(&self) -> u8 {
        self.wire_version
    }

    /// Overrides the read timeout (e.g. to outwait a cold first request).
    pub fn set_read_timeout(&self, timeout: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Builds a request body for this dialect: v2 prefixes the model name,
    /// v1 has no name field (and refuses to name a model at all).
    fn named(&self, what: &str, model: &str, rest: &[u8]) -> Result<Vec<u8>, ClientError> {
        if self.wire_version == WIRE_V1 {
            if model.is_empty() {
                return Ok(rest.to_vec());
            }
            return Err(ClientError::DialectMismatch(what.to_string()));
        }
        if model.len() > MAX_MODEL_NAME {
            return Err(ClientError::Wire(WireError::BadBody(format!(
                "model name of {} bytes exceeds the {MAX_MODEL_NAME} limit",
                model.len()
            ))));
        }
        Ok(encode_named_body(model, rest))
    }

    /// Sends one request frame and reads one reply frame.
    fn round_trip(
        &mut self,
        frame_type: FrameType,
        body: &[u8],
    ) -> Result<(FrameType, Vec<u8>), ClientError> {
        self.stream
            .write_all(&encode_frame_v(self.wire_version, frame_type, body))?;
        let (header, reply) = read_frame(&mut self.stream, self.max_frame)??;
        Ok((header.frame_type, reply))
    }

    /// Maps a reply frame onto the expected type, decoding error frames.
    fn expect(reply: (FrameType, Vec<u8>), want: FrameType) -> Result<Vec<u8>, ClientError> {
        match reply {
            (t, body) if t == want => Ok(body),
            (FrameType::Error, body) => {
                let (code, message) = decode_error_body(&body)?;
                Err(ClientError::Server(ServerReject { code, message }))
            }
            (t, _) => Err(ClientError::UnexpectedReply(t)),
        }
    }

    /// Classifies one graph on the server's default model.
    pub fn predict(&mut self, graph: &Graph) -> Result<Prediction, ClientError> {
        self.predict_as("", graph)
    }

    /// Classifies one graph on the named model (the empty name is the
    /// default model). `DMW2` connections only.
    pub fn predict_as(&mut self, model: &str, graph: &Graph) -> Result<Prediction, ClientError> {
        let body = self.named("predict_as", model, &encode_graph(graph))?;
        let reply = self.round_trip(FrameType::Predict, &body)?;
        let body = Self::expect(reply, FrameType::PredictReply)?;
        decode_prediction(&body).map_err(|e| ClientError::Wire(WireError::BadBody(e.to_string())))
    }

    /// Classifies one graph on the named model, propagating a
    /// caller-chosen trace id in a `TR01` trailer so the server's flight
    /// recorder attributes the request to the caller's distributed trace.
    /// A zero `trace_id` asks the server to mint one. `DMW2` connections
    /// only — the trailer is part of the v2 contract.
    pub fn predict_traced(
        &mut self,
        model: &str,
        graph: &Graph,
        trace_id: u64,
    ) -> Result<Prediction, ClientError> {
        if self.wire_version == WIRE_V1 {
            return Err(ClientError::DialectMismatch("predict_traced".to_string()));
        }
        let mut payload = encode_graph(graph);
        append_trace_trailer(&mut payload, trace_id);
        let body = self.named("predict_traced", model, &payload)?;
        let reply = self.round_trip(FrameType::Predict, &body)?;
        let body = Self::expect(reply, FrameType::PredictReply)?;
        decode_prediction(&body).map_err(|e| ClientError::Wire(WireError::BadBody(e.to_string())))
    }

    /// Classifies a batch in one frame on the default model. Per-item
    /// failures (admission rejections, deadlines) come back per item; a
    /// frame-level failure (bad framing, busy, draining) fails the whole
    /// call.
    pub fn predict_batch(
        &mut self,
        graphs: &[Graph],
    ) -> Result<Vec<Result<Prediction, ServerReject>>, ClientError> {
        self.predict_batch_as("", graphs)
    }

    /// [`predict_batch`](NetClient::predict_batch) on the named model.
    pub fn predict_batch_as(
        &mut self,
        model: &str,
        graphs: &[Graph],
    ) -> Result<Vec<Result<Prediction, ServerReject>>, ClientError> {
        let blobs: Vec<Vec<u8>> = graphs.iter().map(encode_graph).collect();
        let body = self.named("predict_batch_as", model, &encode_batch_request(&blobs))?;
        let reply = self.round_trip(FrameType::PredictBatch, &body)?;
        let body = Self::expect(reply, FrameType::PredictBatchReply)?;
        let mut r = Reader::new(&body);
        let bad = |what: &str| ClientError::Wire(WireError::BadBody(what.to_string()));
        let count = r.u32().map_err(|_| bad("missing item count"))? as usize;
        let mut items = Vec::with_capacity(count.min(body.len()));
        for i in 0..count {
            let tag = r.u8().map_err(|_| bad("missing item tag"))?;
            match tag {
                0 => {
                    let len = r.u32().map_err(|_| bad("missing item length"))? as usize;
                    let blob = r.take(len).map_err(|_| bad("item truncated"))?;
                    let prediction =
                        decode_prediction(blob).map_err(|e| bad(&format!("item {i}: {e}")))?;
                    items.push(Ok(prediction));
                }
                1 => {
                    let code = r.u16().map_err(|_| bad("missing error code"))?;
                    let len = r.u32().map_err(|_| bad("missing error length"))? as usize;
                    let message =
                        String::from_utf8_lossy(r.take(len).map_err(|_| bad("error truncated"))?)
                            .into_owned();
                    items.push(Err(ServerReject {
                        code: ErrorCode::from_u16(code),
                        message,
                    }));
                }
                other => return Err(bad(&format!("unknown item tag {other}"))),
            }
        }
        r.finish()
            .map_err(|_| bad("trailing bytes after batch items"))?;
        Ok(items)
    }

    /// Asks for the default model's health.
    pub fn health(&mut self) -> Result<RemoteHealth, ClientError> {
        self.health_of("")
    }

    /// Asks for the named model's health. `DMW2` connections only.
    pub fn health_of(&mut self, model: &str) -> Result<RemoteHealth, ClientError> {
        let body = self.named("health_of", model, &[])?;
        let reply = self.round_trip(FrameType::Health, &body)?;
        let body = Self::expect(reply, FrameType::HealthReply)?;
        let mut r = Reader::new(&body);
        let bad = |what: &str| ClientError::Wire(WireError::BadBody(what.to_string()));
        let state = r.u8().map_err(|_| bad("missing health state"))?;
        let live_workers = r.u32().map_err(|_| bad("missing live workers"))?;
        r.finish().map_err(|_| bad("oversized health reply"))?;
        match state {
            0 => Ok(RemoteHealth::Ready),
            1 => Ok(RemoteHealth::Degraded { live_workers }),
            2 => Ok(RemoteHealth::Unavailable),
            other => Err(bad(&format!("unknown health state {other}"))),
        }
    }

    /// Fetches the server's metrics in Prometheus text format: the whole
    /// tenancy (edge instruments plus every model labelled) on the empty
    /// name, or one model's labelled registry.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        self.metrics_of("")
    }

    /// [`metrics_text`](NetClient::metrics_text) scoped to one model.
    /// `DMW2` connections only.
    pub fn metrics_of(&mut self, model: &str) -> Result<String, ClientError> {
        let body = self.named("metrics_of", model, &[])?;
        let reply = self.round_trip(FrameType::Metrics, &body)?;
        let body = Self::expect(reply, FrameType::MetricsReply)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Lists every resident model (admin frame; the server must have been
    /// started with `allow_admin`, else [`ErrorCode::AdminDisabled`]).
    pub fn list_models(&mut self) -> Result<Vec<WireModelInfo>, ClientError> {
        if self.wire_version == WIRE_V1 {
            return Err(ClientError::DialectMismatch("list_models".to_string()));
        }
        let reply = self.round_trip(FrameType::ListModels, &[])?;
        let body = Self::expect(reply, FrameType::ListModelsReply)?;
        Ok(decode_model_list(&body)?)
    }

    /// Hot-reloads the named model from a `DMB1` bundle image (admin
    /// frame). Returns the model's new version. The call blocks while the
    /// server builds and probes the replacement pool; other connections
    /// keep being served by the resident pool throughout.
    pub fn reload(&mut self, model: &str, bundle_bytes: &[u8]) -> Result<u64, ClientError> {
        if self.wire_version == WIRE_V1 {
            return Err(ClientError::DialectMismatch("reload".to_string()));
        }
        let body = self.named("reload", model, bundle_bytes)?;
        let reply = self.round_trip(FrameType::Reload, &body)?;
        let body = Self::expect(reply, FrameType::ReloadReply)?;
        let bytes: [u8; 8] = body
            .as_slice()
            .try_into()
            .map_err(|_| ClientError::Wire(WireError::BadBody("reload reply length".into())))?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Pulls the flight recorder of every resident model as JSONL — one
    /// completed or failed request per line, with its trace id, outcome,
    /// cause, and per-stage timestamps (admin frame; the server must have
    /// been started with `allow_admin`, else [`ErrorCode::AdminDisabled`]).
    pub fn trace_dump(&mut self) -> Result<String, ClientError> {
        self.trace_dump_of("")
    }

    /// [`trace_dump`](NetClient::trace_dump) scoped to one model (the
    /// empty name dumps the whole tenancy). `DMW2` connections only.
    pub fn trace_dump_of(&mut self, model: &str) -> Result<String, ClientError> {
        if self.wire_version == WIRE_V1 {
            return Err(ClientError::DialectMismatch("trace_dump".to_string()));
        }
        let body = self.named("trace_dump", model, &[])?;
        let reply = self.round_trip(FrameType::TraceDump, &body)?;
        let body = Self::expect(reply, FrameType::TraceDumpReply)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Starts a rollout of `bundle_bytes` (a `DMB1` bundle image) as the
    /// named model's candidate: the server registers it under
    /// `<model>.next` and enters shadow mode under `policy` (admin frame;
    /// `DMW2` connections only). Returns the rollout's post-begin status.
    pub fn rollout_begin(
        &mut self,
        model: &str,
        policy: &PromotionPolicy,
        bundle_bytes: &[u8],
    ) -> Result<RolloutStatus, ClientError> {
        let mut payload = policy.encode();
        payload.extend_from_slice(bundle_bytes);
        self.rollout_op(model, RolloutAction::Begin, &payload)
    }

    /// Advances the named model's rollout from shadow to canary; the
    /// server refuses ([`ErrorCode::RolloutRefused`]) when a promotion
    /// gate is unmet, naming the gate in the message.
    pub fn rollout_advance(&mut self, model: &str) -> Result<RolloutStatus, ClientError> {
        self.rollout_op(model, RolloutAction::Advance, &[])
    }

    /// Promotes the named model's canary to live through the server's
    /// probe-gated swap.
    pub fn rollout_promote(&mut self, model: &str) -> Result<RolloutStatus, ClientError> {
        self.rollout_op(model, RolloutAction::Promote, &[])
    }

    /// Rolls the named model's rollout back (any active state, or demotes
    /// a live one back to its previous bundle). The reason, when
    /// non-empty, is journaled with the transition.
    pub fn rollout_abort(
        &mut self,
        model: &str,
        reason: &str,
    ) -> Result<RolloutStatus, ClientError> {
        self.rollout_op(model, RolloutAction::Rollback, reason.as_bytes())
    }

    /// Fetches the named model's rollout status (admin frame; `DMW2`
    /// connections only).
    pub fn rollout_status(&mut self, model: &str) -> Result<RolloutStatus, ClientError> {
        if self.wire_version == WIRE_V1 {
            return Err(ClientError::DialectMismatch("rollout_status".to_string()));
        }
        let body = self.named("rollout_status", model, &[])?;
        let reply = self.round_trip(FrameType::RolloutStatus, &body)?;
        let body = Self::expect(reply, FrameType::RolloutStatusReply)?;
        Self::decode_rollout_status(&body)
    }

    fn rollout_op(
        &mut self,
        model: &str,
        action: RolloutAction,
        payload: &[u8],
    ) -> Result<RolloutStatus, ClientError> {
        if self.wire_version == WIRE_V1 {
            return Err(ClientError::DialectMismatch("rollout".to_string()));
        }
        let mut rest = Vec::with_capacity(1 + payload.len());
        rest.push(action as u8);
        rest.extend_from_slice(payload);
        let body = self.named("rollout", model, &rest)?;
        let reply = self.round_trip(FrameType::Rollout, &body)?;
        let body = Self::expect(reply, FrameType::RolloutReply)?;
        Self::decode_rollout_status(&body)
    }

    fn decode_rollout_status(body: &[u8]) -> Result<RolloutStatus, ClientError> {
        let bad = |what: &str| ClientError::Wire(WireError::BadBody(what.to_string()));
        let text = std::str::from_utf8(body).map_err(|_| bad("rollout status is not utf-8"))?;
        let json = Json::parse(text).map_err(|e| bad(&format!("rollout status json: {e}")))?;
        RolloutStatus::from_json(&json).ok_or_else(|| bad("rollout status fields missing"))
    }

    /// Asks the server to drain gracefully. The server acknowledges and
    /// then closes this connection.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        let reply = self.round_trip(FrameType::Drain, &[])?;
        Self::expect(reply, FrameType::DrainReply)?;
        Ok(())
    }

    /// Sends raw bytes as-is — the torture suite's hostile-frame entry
    /// point; production code never needs it.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Reads one raw reply frame — the torture suite's assertion hook.
    pub fn read_reply(&mut self) -> Result<(FrameType, Vec<u8>), ClientError> {
        let (header, body) = read_frame(&mut self.stream, self.max_frame)??;
        Ok((header.frame_type, body))
    }
}
