//! The `DMW2` wire protocol: versioned, length-prefixed binary frames
//! with multi-tenant model routing (`DMW1` still accepted).
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! magic "DMW2" | u8 version (= 2) | u8 frame type | u32 body length (LE) | body
//! ```
//!
//! Version 2 request bodies for [`FrameType::Predict`],
//! [`FrameType::PredictBatch`], [`FrameType::Health`], and
//! [`FrameType::Metrics`] start with a length-prefixed **model name**
//! (`u16 len | utf-8 name`); the empty name routes to the server's default
//! model. Version 1 frames (`magic "DMW1"`, version byte 1) carry no name
//! field and route to the default model, so a `DMW1` client keeps working
//! against a `DMW2` server unchanged. The admin frames
//! ([`FrameType::ListModels`], [`FrameType::Reload`]) are version-2 only
//! and gated server-side by `NetConfig::allow_admin`.
//!
//! Request frames carry graphs ([`FrameType::Predict`],
//! [`FrameType::PredictBatch`]), a name (or nothing) for
//! [`FrameType::Health`] / [`FrameType::Metrics`] / [`FrameType::Drain`],
//! or a name plus a `DMB1` bundle image for [`FrameType::Reload`]; each is
//! answered by exactly one reply frame — the matching `*Reply` type or
//! [`FrameType::Error`] carrying a typed [`ErrorCode`] plus a
//! human-readable message. Graph and prediction bodies use the validated
//! codecs in [`deepmap_serve::codec`], so wire payloads and bundle files
//! share one length-checked reader.
//!
//! Validation is strict and total: a header that fails [`parse_header`]
//! (bad magic, unknown version or frame type, body length over the
//! negotiated maximum) yields a typed [`WireError`], never a panic, and the
//! server answers it with an error frame before closing the connection —
//! after a framing error the byte stream can no longer be trusted to be
//! frame-aligned. A model-name field longer than [`MAX_MODEL_NAME`] is
//! rejected before any allocation or registry lookup.

use deepmap_serve::codec::Reader;
use deepmap_serve::ServeError;
use std::fmt;
use std::io::{Read, Write};

/// The wire magic, first bytes of every version-2 frame.
pub const MAGIC: [u8; 4] = *b"DMW2";
/// The version-1 magic, still accepted for routing to the default model.
pub const MAGIC_V1: [u8; 4] = *b"DMW1";
/// The protocol version this build speaks (and answers v2 requests with).
pub const WIRE_VERSION: u8 = 2;
/// The legacy protocol version, accepted alongside [`WIRE_VERSION`].
pub const WIRE_V1: u8 = 1;
/// Bytes in a frame header: magic + version + type + body length.
pub const HEADER_LEN: usize = 10;
/// Default ceiling on a frame body; [`parse_header`] rejects bigger ones.
pub const DEFAULT_MAX_FRAME: u32 = 8 * 1024 * 1024;
/// Longest model name a version-2 frame may carry, mirroring the router's
/// registration limit. Checked before the name is even sliced out.
pub const MAX_MODEL_NAME: usize = 128;

/// Every frame type the protocol defines. Requests are `0x01..=0x0A`,
/// replies have the high bit set; `0xEE` is the error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Classify one graph (v2 body: `name | encoded graph`).
    Predict = 0x01,
    /// Classify several graphs (v2 body: `name | u32 count | count ×
    /// (u32 len | graph)`).
    PredictBatch = 0x02,
    /// Report one model's health (v2 body: `name`; v1 body empty).
    Health = 0x03,
    /// Report serving metrics (v2 body: `name` — empty name renders the
    /// whole tenancy; v1 body empty).
    Metrics = 0x04,
    /// Begin graceful drain: stop accepting, flush in-flight (empty body).
    Drain = 0x05,
    /// List resident models (empty body; admin-gated, v2 only).
    ListModels = 0x06,
    /// Hot-reload one model (body: `name | DMB1 bundle image`;
    /// admin-gated, v2 only).
    Reload = 0x07,
    /// Pull the flight recorder (v2 body: `name` — empty name dumps the
    /// whole tenancy; admin-gated, v2 only).
    TraceDump = 0x08,
    /// Drive a model rollout (body: `name | u8 action | action payload`;
    /// for [`RolloutAction::Begin`] the payload is a 56-byte promotion
    /// policy followed by a `DMB1`/`DMB2` candidate bundle image, for
    /// [`RolloutAction::Rollback`] an optional utf-8 reason; admin-gated,
    /// v2 only).
    Rollout = 0x09,
    /// Query a model's rollout status (body: `name`; admin-gated, v2 only).
    RolloutStatus = 0x0A,
    /// Reply to [`FrameType::Predict`] (body: encoded prediction).
    PredictReply = 0x81,
    /// Reply to [`FrameType::PredictBatch`] (body: per-item tagged results).
    PredictBatchReply = 0x82,
    /// Reply to [`FrameType::Health`] (body: `u8 state | u32 live_workers`).
    HealthReply = 0x83,
    /// Reply to [`FrameType::Metrics`] (body: Prometheus text, utf-8).
    MetricsReply = 0x84,
    /// Reply to [`FrameType::Drain`] (empty body).
    DrainReply = 0x85,
    /// Reply to [`FrameType::ListModels`] (body: encoded model list).
    ListModelsReply = 0x86,
    /// Reply to [`FrameType::Reload`] (body: `u64 new version`).
    ReloadReply = 0x87,
    /// Reply to [`FrameType::TraceDump`] (body: JSONL request records,
    /// utf-8, one per line).
    TraceDumpReply = 0x88,
    /// Reply to [`FrameType::Rollout`] (body: rollout status JSON, utf-8).
    RolloutReply = 0x89,
    /// Reply to [`FrameType::RolloutStatus`] (body: rollout status JSON,
    /// utf-8).
    RolloutStatusReply = 0x8A,
    /// Error reply to any request (body: `u16 code | utf-8 message`).
    Error = 0xEE,
}

impl FrameType {
    /// Parses a frame-type byte.
    pub fn from_u8(byte: u8) -> Option<FrameType> {
        match byte {
            0x01 => Some(FrameType::Predict),
            0x02 => Some(FrameType::PredictBatch),
            0x03 => Some(FrameType::Health),
            0x04 => Some(FrameType::Metrics),
            0x05 => Some(FrameType::Drain),
            0x06 => Some(FrameType::ListModels),
            0x07 => Some(FrameType::Reload),
            0x08 => Some(FrameType::TraceDump),
            0x09 => Some(FrameType::Rollout),
            0x0A => Some(FrameType::RolloutStatus),
            0x81 => Some(FrameType::PredictReply),
            0x82 => Some(FrameType::PredictBatchReply),
            0x83 => Some(FrameType::HealthReply),
            0x84 => Some(FrameType::MetricsReply),
            0x85 => Some(FrameType::DrainReply),
            0x86 => Some(FrameType::ListModelsReply),
            0x87 => Some(FrameType::ReloadReply),
            0x88 => Some(FrameType::TraceDumpReply),
            0x89 => Some(FrameType::RolloutReply),
            0x8A => Some(FrameType::RolloutStatusReply),
            0xEE => Some(FrameType::Error),
            _ => None,
        }
    }
}

/// Typed error codes carried in [`FrameType::Error`] bodies. Codes `1..=5`
/// are protocol violations; `6..=15` mirror the engine's [`ServeError`]
/// fast-fail taxonomy so a wire client can tell backpressure
/// ([`ErrorCode::Busy`]) from admission ([`ErrorCode::Rejected`]) from the
/// breaker ([`ErrorCode::CircuitOpen`]); `16..` are routing errors new in
/// `DMW2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Frame did not start with the `DMW2` (or `DMW1`) magic.
    BadMagic = 1,
    /// Frame declared a protocol version this build cannot speak.
    UnsupportedVersion = 2,
    /// Frame type byte is not part of the protocol.
    UnknownFrameType = 3,
    /// Declared body length exceeds the server's frame budget.
    FrameTooLarge = 4,
    /// Frame was well-formed but its body failed payload validation.
    BadBody = 5,
    /// In-flight request budget exhausted (backpressure); retry later.
    Busy = 6,
    /// Admission control refused the graph ([`ServeError::Rejected`]).
    Rejected = 7,
    /// The engine's bounded queue is full ([`ServeError::QueueFull`]).
    QueueFull = 8,
    /// The circuit breaker is open ([`ServeError::CircuitOpen`]).
    CircuitOpen = 9,
    /// The request's deadline expired ([`ServeError::DeadlineExceeded`]).
    DeadlineExceeded = 10,
    /// The worker serving the request panicked ([`ServeError::WorkerPanic`]).
    WorkerPanic = 11,
    /// The server is draining or shut down; no new work is accepted.
    Draining = 12,
    /// The server gave up waiting for the engine's reply.
    Timeout = 13,
    /// A reply-direction frame arrived as a request.
    UnexpectedFrame = 14,
    /// Any other serving failure.
    Internal = 15,
    /// The named model is not resident (and the connection lives on — a
    /// routing miss is the requester's problem, not a framing violation).
    UnknownModel = 16,
    /// An admin frame arrived but the server was started without
    /// `allow_admin`.
    AdminDisabled = 17,
    /// The lifecycle controller refused the rollout operation (no rollout,
    /// one already in flight, wrong state, promotion gates unmet, or a
    /// malformed policy) — the message spells out which.
    RolloutRefused = 18,
}

/// The operation byte inside a [`FrameType::Rollout`] request body,
/// following the length-prefixed model name.
///
/// - [`RolloutAction::Begin`]: the rest of the body is the 56-byte
///   [`deepmap_lifecycle::PromotionPolicy`] wire image followed by the
///   candidate bundle image.
/// - [`RolloutAction::Advance`] / [`RolloutAction::Promote`]: no payload.
/// - [`RolloutAction::Rollback`]: the rest of the body is an optional
///   utf-8 reason string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RolloutAction {
    /// Start a rollout: register the candidate and enter shadow mode.
    Begin = 0,
    /// Shadow → canary, gated on the promotion policy.
    Advance = 1,
    /// Canary → live through the router's probe-gated swap.
    Promote = 2,
    /// Abort the rollout (from any active state, or demote a `Live` one).
    Rollback = 3,
}

impl RolloutAction {
    /// Parses an action byte; unknown values are `None`.
    pub fn from_u8(byte: u8) -> Option<RolloutAction> {
        match byte {
            0 => Some(RolloutAction::Begin),
            1 => Some(RolloutAction::Advance),
            2 => Some(RolloutAction::Promote),
            3 => Some(RolloutAction::Rollback),
            _ => None,
        }
    }
}

impl ErrorCode {
    /// Parses an error-code value; unknown codes map to
    /// [`ErrorCode::Internal`] so old clients survive new servers.
    pub fn from_u16(code: u16) -> ErrorCode {
        match code {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownFrameType,
            4 => ErrorCode::FrameTooLarge,
            5 => ErrorCode::BadBody,
            6 => ErrorCode::Busy,
            7 => ErrorCode::Rejected,
            8 => ErrorCode::QueueFull,
            9 => ErrorCode::CircuitOpen,
            10 => ErrorCode::DeadlineExceeded,
            11 => ErrorCode::WorkerPanic,
            12 => ErrorCode::Draining,
            13 => ErrorCode::Timeout,
            14 => ErrorCode::UnexpectedFrame,
            16 => ErrorCode::UnknownModel,
            17 => ErrorCode::AdminDisabled,
            18 => ErrorCode::RolloutRefused,
            _ => ErrorCode::Internal,
        }
    }

    /// The code the server answers a given engine failure with.
    pub fn from_serve_error(e: &ServeError) -> ErrorCode {
        match e {
            ServeError::Busy => ErrorCode::Busy,
            ServeError::Rejected { .. } => ErrorCode::Rejected,
            ServeError::QueueFull => ErrorCode::QueueFull,
            ServeError::CircuitOpen => ErrorCode::CircuitOpen,
            ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            ServeError::WorkerPanic => ErrorCode::WorkerPanic,
            ServeError::Shutdown => ErrorCode::Draining,
            ServeError::WaitTimeout => ErrorCode::Timeout,
            _ => ErrorCode::Internal,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::BadMagic => "bad-magic",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::UnknownFrameType => "unknown-frame-type",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::BadBody => "bad-body",
            ErrorCode::Busy => "busy",
            ErrorCode::Rejected => "rejected",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::CircuitOpen => "circuit-open",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::WorkerPanic => "worker-panic",
            ErrorCode::Draining => "draining",
            ErrorCode::Timeout => "timeout",
            ErrorCode::UnexpectedFrame => "unexpected-frame",
            ErrorCode::Internal => "internal",
            ErrorCode::UnknownModel => "unknown-model",
            ErrorCode::AdminDisabled => "admin-disabled",
            ErrorCode::RolloutRefused => "rollout-refused",
        };
        write!(f, "{name}")
    }
}

/// Typed wire-protocol violations, produced by [`parse_header`] and body
/// decoding — the front end's counterpart of the bundle format's strict
/// validation. Every variant is answered with an error frame; none panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were neither `DMW2` nor `DMW1`.
    BadMagic(
        /// The bytes found instead.
        [u8; 4],
    ),
    /// The version byte is not one this build speaks (or does not match
    /// its magic: `DMW2` frames must declare version 2, `DMW1` version 1).
    UnsupportedVersion(
        /// The declared version.
        u8,
    ),
    /// The frame-type byte is not defined by the protocol.
    UnknownFrameType(
        /// The byte found.
        u8,
    ),
    /// The declared body length exceeds the frame budget.
    Oversized {
        /// Declared body length.
        declared: u32,
        /// The budget it exceeded.
        max: u32,
    },
    /// The stream ended (or a declared length ran out) mid-frame.
    Truncated,
    /// The frame was well-formed but its body failed validation.
    BadBody(
        /// What was wrong with the payload.
        String,
    ),
}

impl WireError {
    /// The error code a server answers this violation with.
    pub fn code(&self) -> ErrorCode {
        match self {
            WireError::BadMagic(_) => ErrorCode::BadMagic,
            WireError::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
            WireError::UnknownFrameType(_) => ErrorCode::UnknownFrameType,
            WireError::Oversized { .. } => ErrorCode::FrameTooLarge,
            WireError::Truncated => ErrorCode::BadBody,
            WireError::BadBody(_) => ErrorCode::BadBody,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(found) => {
                write!(f, "bad magic {found:02x?} (want \"DMW2\" or \"DMW1\")")
            }
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks 1 and 2)"
                )
            }
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            WireError::Oversized { declared, max } => {
                write!(f, "frame body of {declared} bytes exceeds the {max} budget")
            }
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadBody(what) => write!(f, "bad frame body: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The wire version the frame declared (1 or 2). Replies mirror it, so
    /// a `DMW1` client only ever reads `DMW1` frames back.
    pub version: u8,
    /// The frame type.
    pub frame_type: FrameType,
    /// Declared body length in bytes.
    pub body_len: u32,
}

/// Validates a raw header: magic, version, frame type, body budget. The
/// magic and version must agree: `DMW2` frames declare version 2, `DMW1`
/// frames version 1; a `DMW2` magic with any other version byte is an
/// [`WireError::UnsupportedVersion`] (the magic proves the peer speaks
/// *some* DMW dialect, so the version is what is wrong).
pub fn parse_header(buf: &[u8; HEADER_LEN], max_frame: u32) -> Result<FrameHeader, WireError> {
    let magic: [u8; 4] = buf[0..4].try_into().expect("4 bytes");
    if magic != MAGIC && magic != MAGIC_V1 {
        return Err(WireError::BadMagic(magic));
    }
    let version = buf[4];
    let expected = if magic == MAGIC {
        WIRE_VERSION
    } else {
        WIRE_V1
    };
    if version != expected {
        return Err(WireError::UnsupportedVersion(version));
    }
    let frame_type = FrameType::from_u8(buf[5]).ok_or(WireError::UnknownFrameType(buf[5]))?;
    let body_len = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes"));
    if body_len > max_frame {
        return Err(WireError::Oversized {
            declared: body_len,
            max: max_frame,
        });
    }
    Ok(FrameHeader {
        version,
        frame_type,
        body_len,
    })
}

/// Serialises one version-2 frame (header + body).
pub fn encode_frame(frame_type: FrameType, body: &[u8]) -> Vec<u8> {
    encode_frame_v(WIRE_VERSION, frame_type, body)
}

/// Serialises one frame in the given wire dialect (1 or 2); the magic
/// follows the version. The server uses this to answer each request in the
/// dialect it arrived in.
pub fn encode_frame_v(version: u8, frame_type: FrameType, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(if version == WIRE_V1 {
        &MAGIC_V1
    } else {
        &MAGIC
    });
    out.push(if version == WIRE_V1 {
        WIRE_V1
    } else {
        WIRE_VERSION
    });
    out.push(frame_type as u8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Writes one frame to `w` (a single `write_all`, so a frame is never
/// interleaved with another writer's bytes on the same stream).
pub fn write_frame(w: &mut impl Write, frame_type: FrameType, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame_type, body))
}

/// Reads one frame from `r`, validating the header against `max_frame`.
///
/// `Ok(Err(_))` is a protocol violation (the caller should answer with an
/// error frame and drop the connection); `Err(_)` is a transport failure
/// (timeout, reset, clean close).
pub fn read_frame(
    r: &mut impl Read,
    max_frame: u32,
) -> std::io::Result<Result<(FrameHeader, Vec<u8>), WireError>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let parsed = match parse_header(&header, max_frame) {
        Ok(parsed) => parsed,
        Err(e) => return Ok(Err(e)),
    };
    let mut body = vec![0u8; parsed.body_len as usize];
    r.read_exact(&mut body)?;
    Ok(Ok((parsed, body)))
}

/// Prefixes `rest` with a length-prefixed model name — the version-2
/// request-body layout for the routable frame types.
pub fn encode_named_body(model: &str, rest: &[u8]) -> Vec<u8> {
    debug_assert!(model.len() <= MAX_MODEL_NAME);
    let mut out = Vec::with_capacity(2 + model.len() + rest.len());
    out.extend_from_slice(&(model.len() as u16).to_le_bytes());
    out.extend_from_slice(model.as_bytes());
    out.extend_from_slice(rest);
    out
}

/// Splits a version-2 request body into its model name and payload. The
/// declared name length is checked against [`MAX_MODEL_NAME`] *before* the
/// name is sliced out, so a hostile 64 KiB name field is refused without
/// allocating or copying anything.
pub fn split_named_body(body: &[u8]) -> Result<(&str, &[u8]), WireError> {
    if body.len() < 2 {
        return Err(WireError::Truncated);
    }
    let name_len = u16::from_le_bytes(body[0..2].try_into().expect("2 bytes")) as usize;
    if name_len > MAX_MODEL_NAME {
        return Err(WireError::BadBody(format!(
            "model name of {name_len} bytes exceeds the {MAX_MODEL_NAME} limit"
        )));
    }
    if body.len() < 2 + name_len {
        return Err(WireError::Truncated);
    }
    let name = std::str::from_utf8(&body[2..2 + name_len])
        .map_err(|_| WireError::BadBody("model name is not valid utf-8".to_string()))?;
    Ok((name, &body[2 + name_len..]))
}

/// Magic closing a trace trailer: the last four payload bytes when a
/// client attached a trace id to a predict payload.
pub const TRACE_TRAILER_MAGIC: [u8; 4] = *b"TR01";

/// Total trailer length: 8-byte little-endian trace id + 4-byte magic.
pub const TRACE_TRAILER_LEN: usize = 12;

/// Appends a trace trailer to a version-2 predict payload, letting the
/// client choose the request's trace id (correlating server-side records
/// with its own). Backward compatible by construction: the graph codec
/// rejects trailing bytes, so the server tries a plain decode first and
/// only strips a trailer (and retries) when the decode failed *and* the
/// tail carries [`TRACE_TRAILER_MAGIC`] — payloads from trailer-unaware
/// clients are processed byte-for-byte as before.
pub fn append_trace_trailer(payload: &mut Vec<u8>, trace_id: u64) {
    payload.extend_from_slice(&trace_id.to_le_bytes());
    payload.extend_from_slice(&TRACE_TRAILER_MAGIC);
}

/// Splits a trace trailer off a payload, if one is present: returns the
/// inner payload and the client's trace id.
pub fn split_trace_trailer(payload: &[u8]) -> Option<(&[u8], u64)> {
    if payload.len() < TRACE_TRAILER_LEN || payload[payload.len() - 4..] != TRACE_TRAILER_MAGIC {
        return None;
    }
    let split = payload.len() - TRACE_TRAILER_LEN;
    let id_bytes = payload[split..split + 8].try_into().expect("8 bytes");
    Some((&payload[..split], u64::from_le_bytes(id_bytes)))
}

/// One model's row in a [`FrameType::ListModelsReply`] body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireModelInfo {
    /// Registered name.
    pub name: String,
    /// Bumps on every successful reload; starts at 1.
    pub version: u64,
    /// Whether the empty wire name routes here.
    pub is_default: bool,
    /// Health state byte: 0 ready, 1 degraded, 2 unavailable.
    pub health_state: u8,
    /// Live workers when degraded (0 otherwise).
    pub live_workers: u32,
    /// Classes the model predicts over.
    pub n_classes: u32,
}

/// Encodes a [`FrameType::ListModelsReply`] body: `u32 count | count ×
/// (u16 name_len | name | u64 version | u8 is_default | u8 health |
/// u32 live_workers | u32 n_classes)`.
pub fn encode_model_list(models: &[WireModelInfo]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(models.len() as u32).to_le_bytes());
    for m in models {
        out.extend_from_slice(&(m.name.len() as u16).to_le_bytes());
        out.extend_from_slice(m.name.as_bytes());
        out.extend_from_slice(&m.version.to_le_bytes());
        out.push(u8::from(m.is_default));
        out.push(m.health_state);
        out.extend_from_slice(&m.live_workers.to_le_bytes());
        out.extend_from_slice(&m.n_classes.to_le_bytes());
    }
    out
}

/// Decodes a [`FrameType::ListModelsReply`] body.
pub fn decode_model_list(body: &[u8]) -> Result<Vec<WireModelInfo>, WireError> {
    let mut r = Reader::new(body);
    let count = r.u32().map_err(|_| WireError::Truncated)? as usize;
    let mut models = Vec::with_capacity(count.min(r.remaining() / 16 + 1));
    for _ in 0..count {
        let name_len = r.u16().map_err(|_| WireError::Truncated)? as usize;
        if name_len > MAX_MODEL_NAME {
            return Err(WireError::BadBody(format!(
                "model name of {name_len} bytes exceeds the {MAX_MODEL_NAME} limit"
            )));
        }
        let name = String::from_utf8(r.take(name_len).map_err(|_| WireError::Truncated)?.to_vec())
            .map_err(|_| WireError::BadBody("model name is not valid utf-8".to_string()))?;
        let version = r.u64().map_err(|_| WireError::Truncated)?;
        let is_default = r.u8().map_err(|_| WireError::Truncated)? != 0;
        let health_state = r.u8().map_err(|_| WireError::Truncated)?;
        let live_workers = r.u32().map_err(|_| WireError::Truncated)?;
        let n_classes = r.u32().map_err(|_| WireError::Truncated)?;
        models.push(WireModelInfo {
            name,
            version,
            is_default,
            health_state,
            live_workers,
            n_classes,
        });
    }
    if r.remaining() != 0 {
        return Err(WireError::BadBody(format!(
            "{} trailing bytes after {count} model rows",
            r.remaining()
        )));
    }
    Ok(models)
}

/// Encodes an error-frame body: `u16 code | utf-8 message`.
pub fn encode_error_body(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + message.len());
    out.extend_from_slice(&(code as u16).to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes an error-frame body.
pub fn decode_error_body(body: &[u8]) -> Result<(ErrorCode, String), WireError> {
    let mut r = Reader::new(body);
    let code = r.u16().map_err(|_| WireError::Truncated)?;
    let message = String::from_utf8_lossy(r.take(r.remaining()).expect("remaining")).into_owned();
    Ok((ErrorCode::from_u16(code), message))
}

/// Encodes a predict-batch request body: `u32 count | count × (u32 len |
/// encoded graph)`. (In version 2 the name prefix goes in front of this;
/// see [`encode_named_body`].)
pub fn encode_batch_request(graph_blobs: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = graph_blobs.iter().map(|b| 4 + b.len()).sum();
    let mut out = Vec::with_capacity(4 + total);
    out.extend_from_slice(&(graph_blobs.len() as u32).to_le_bytes());
    for blob in graph_blobs {
        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        out.extend_from_slice(blob);
    }
    out
}

/// Splits a predict-batch request body into its per-graph blobs (not yet
/// graph-decoded; each blob still goes through the graph codec).
pub fn decode_batch_request(body: &[u8]) -> Result<Vec<&[u8]>, WireError> {
    let mut r = Reader::new(body);
    let count = r.u32().map_err(|_| WireError::Truncated)? as usize;
    let mut blobs = Vec::with_capacity(count.min(r.remaining() / 4 + 1));
    for _ in 0..count {
        let len = r.u32().map_err(|_| WireError::Truncated)? as usize;
        blobs.push(r.take(len).map_err(|_| WireError::Truncated)?);
    }
    if r.remaining() != 0 {
        return Err(WireError::BadBody(format!(
            "{} trailing bytes after {count} batch items",
            r.remaining()
        )));
    }
    Ok(blobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let bytes = encode_frame(FrameType::Predict, b"payload");
        let mut cursor = &bytes[..];
        let (header, body) = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(header.frame_type, FrameType::Predict);
        assert_eq!(header.version, WIRE_VERSION);
        assert_eq!(body, b"payload");
    }

    #[test]
    fn v1_frame_still_parses() {
        let bytes = encode_frame_v(WIRE_V1, FrameType::Health, &[]);
        assert_eq!(&bytes[0..4], b"DMW1");
        let mut cursor = &bytes[..];
        let (header, body) = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(header.version, WIRE_V1);
        assert_eq!(header.frame_type, FrameType::Health);
        assert!(body.is_empty());
    }

    #[test]
    fn magic_and_version_must_agree() {
        // DMW2 magic with version 1 (and vice versa) is a version error,
        // not silently accepted: the frame lies about its own dialect.
        let mut bytes = encode_frame(FrameType::Health, &[]);
        bytes[4] = WIRE_V1;
        let header: [u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
        assert_eq!(
            parse_header(&header, DEFAULT_MAX_FRAME),
            Err(WireError::UnsupportedVersion(1))
        );
        let mut bytes = encode_frame_v(WIRE_V1, FrameType::Health, &[]);
        bytes[4] = WIRE_VERSION;
        let header: [u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
        assert_eq!(
            parse_header(&header, DEFAULT_MAX_FRAME),
            Err(WireError::UnsupportedVersion(2))
        );
    }

    #[test]
    fn header_rejects_each_violation() {
        let good = encode_frame(FrameType::Health, &[]);
        let header: [u8; HEADER_LEN] = good[..HEADER_LEN].try_into().unwrap();

        let mut bad = header;
        bad[0] = b'X';
        assert!(matches!(
            parse_header(&bad, DEFAULT_MAX_FRAME),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = header;
        bad[4] = 9;
        assert_eq!(
            parse_header(&bad, DEFAULT_MAX_FRAME),
            Err(WireError::UnsupportedVersion(9))
        );

        let mut bad = header;
        bad[5] = 0x42;
        assert_eq!(
            parse_header(&bad, DEFAULT_MAX_FRAME),
            Err(WireError::UnknownFrameType(0x42))
        );

        let mut bad = header;
        bad[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            parse_header(&bad, 1024),
            Err(WireError::Oversized {
                declared: u32::MAX,
                max: 1024
            })
        );
    }

    #[test]
    fn every_frame_type_byte_parses_back() {
        for t in [
            FrameType::Predict,
            FrameType::PredictBatch,
            FrameType::Health,
            FrameType::Metrics,
            FrameType::Drain,
            FrameType::ListModels,
            FrameType::Reload,
            FrameType::TraceDump,
            FrameType::Rollout,
            FrameType::RolloutStatus,
            FrameType::PredictReply,
            FrameType::PredictBatchReply,
            FrameType::HealthReply,
            FrameType::MetricsReply,
            FrameType::DrainReply,
            FrameType::ListModelsReply,
            FrameType::ReloadReply,
            FrameType::TraceDumpReply,
            FrameType::RolloutReply,
            FrameType::RolloutStatusReply,
            FrameType::Error,
        ] {
            assert_eq!(FrameType::from_u8(t as u8), Some(t));
        }
        assert_eq!(FrameType::from_u8(0x66), None, "poison pill stays unknown");
    }

    #[test]
    fn trace_trailer_round_trips_and_rejects_short_or_unmagiced() {
        let mut payload = b"graph bytes".to_vec();
        append_trace_trailer(&mut payload, 0x0123_4567_89AB_CDEF);
        let (inner, id) = split_trace_trailer(&payload).expect("trailer present");
        assert_eq!(inner, b"graph bytes");
        assert_eq!(id, 0x0123_4567_89AB_CDEF);
        // No magic: not a trailer.
        assert!(split_trace_trailer(b"graph bytes").is_none());
        // Magic but too short to hold an id: not a trailer.
        assert!(split_trace_trailer(b"TR01").is_none());
    }

    #[test]
    fn named_body_round_trips() {
        let body = encode_named_body("mutag", b"graph bytes");
        let (name, rest) = split_named_body(&body).unwrap();
        assert_eq!(name, "mutag");
        assert_eq!(rest, b"graph bytes");

        let empty = encode_named_body("", b"x");
        assert_eq!(split_named_body(&empty).unwrap(), ("", &b"x"[..]));
    }

    #[test]
    fn named_body_rejects_overlong_and_garbage_names() {
        // A hostile 64 KiB name-length field is refused before the name is
        // even sliced — the body here is only 2 bytes long.
        let hostile = u16::MAX.to_le_bytes();
        let err = split_named_body(&hostile).unwrap_err();
        assert!(
            matches!(&err, WireError::BadBody(what) if what.contains("exceeds")),
            "want the limit violation, got {err:?}"
        );

        // Length one past the limit, with the bytes actually present.
        let mut long = Vec::new();
        long.extend_from_slice(&((MAX_MODEL_NAME + 1) as u16).to_le_bytes());
        long.extend_from_slice(&[b'a'; MAX_MODEL_NAME + 1]);
        assert!(matches!(
            split_named_body(&long),
            Err(WireError::BadBody(_))
        ));

        // Exactly at the limit is fine.
        let mut max = Vec::new();
        max.extend_from_slice(&(MAX_MODEL_NAME as u16).to_le_bytes());
        max.extend_from_slice(&[b'a'; MAX_MODEL_NAME]);
        assert!(split_named_body(&max).is_ok());

        // Truncated: name length says 5, body has 3.
        let truncated = [5u8, 0, b'a', b'b', b'c'];
        assert_eq!(split_named_body(&truncated), Err(WireError::Truncated));

        // Invalid utf-8 in the name.
        let bad_utf8 = [2u8, 0, 0xFF, 0xFE];
        assert!(matches!(
            split_named_body(&bad_utf8),
            Err(WireError::BadBody(_))
        ));
    }

    #[test]
    fn model_list_round_trips() {
        let models = vec![
            WireModelInfo {
                name: "mutag".to_string(),
                version: 3,
                is_default: true,
                health_state: 0,
                live_workers: 0,
                n_classes: 2,
            },
            WireModelInfo {
                name: "ptc".to_string(),
                version: 1,
                is_default: false,
                health_state: 1,
                live_workers: 1,
                n_classes: 2,
            },
        ];
        let body = encode_model_list(&models);
        assert_eq!(decode_model_list(&body).unwrap(), models);

        let mut trailing = body.clone();
        trailing.push(0);
        assert!(matches!(
            decode_model_list(&trailing),
            Err(WireError::BadBody(_))
        ));
        assert_eq!(
            decode_model_list(&body[..body.len() - 1]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn error_body_round_trips_and_tolerates_unknown_codes() {
        let body = encode_error_body(ErrorCode::Busy, "try later");
        assert_eq!(
            decode_error_body(&body).unwrap(),
            (ErrorCode::Busy, "try later".to_string())
        );
        let mut forged = body.clone();
        forged[0..2].copy_from_slice(&999u16.to_le_bytes());
        assert_eq!(decode_error_body(&forged).unwrap().0, ErrorCode::Internal);
        assert_eq!(decode_error_body(&[1]), Err(WireError::Truncated));
        // The DMW2 routing codes survive their own round trip.
        for code in [
            ErrorCode::UnknownModel,
            ErrorCode::AdminDisabled,
            ErrorCode::RolloutRefused,
        ] {
            let body = encode_error_body(code, "");
            assert_eq!(decode_error_body(&body).unwrap().0, code);
        }
    }

    #[test]
    fn batch_request_round_trips_and_rejects_garbage() {
        let blobs = vec![vec![1u8, 2], vec![], vec![9u8; 5]];
        let body = encode_batch_request(&blobs);
        let split = decode_batch_request(&body).unwrap();
        assert_eq!(split.len(), 3);
        assert_eq!(split[0], &[1, 2]);
        assert_eq!(split[2], &[9; 5]);

        let mut trailing = body.clone();
        trailing.push(0);
        assert!(matches!(
            decode_batch_request(&trailing),
            Err(WireError::BadBody(_))
        ));
        assert!(matches!(
            decode_batch_request(&body[..body.len() - 1]),
            Err(WireError::Truncated)
        ));
        // A count far beyond the payload cannot over-allocate.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_batch_request(&huge).is_err());
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let bytes = encode_frame(FrameType::Predict, b"full body");
        for cut in 0..bytes.len() {
            let mut cursor = &bytes[..cut];
            assert!(
                read_frame(&mut cursor, DEFAULT_MAX_FRAME).is_err(),
                "cut at {cut} must surface as a transport error"
            );
        }
    }
}
