//! `deepmap-net`: a hardened, zero-dependency TCP front end for the
//! DeepMap inference server.
//!
//! PR 5 made the in-process engine resilient (admission control,
//! deadlines, supervision, a circuit breaker); this crate extends that
//! posture one layer out, to where malformed input, slow clients, and
//! connection churn actually arrive:
//!
//! - [`protocol`] — the versioned, length-prefixed `DMW1` wire format
//!   (magic + version + frame type + u32 body length) with strict typed
//!   validation ([`WireError`]): bad magic, unknown versions and frame
//!   types, oversized and truncated frames are all answered with error
//!   frames, never panics or silent drops. Graph and prediction payloads
//!   ride the shared [`deepmap_serve::codec`] readers, so the wire and
//!   bundle formats validate bytes one way.
//! - [`server`] — the blocking-threads [`NetServer`]: per-connection
//!   read/write deadlines and idle timeouts (slow-loris shedding),
//!   bounded connection and in-flight budgets that reject with
//!   [`ErrorCode::Busy`] (backpressure), per-connection panic isolation,
//!   graceful drain with a bounded shutdown deadline, and `serve.conn_*`
//!   instruments on the engine's metrics registry.
//! - [`client`] — a small blocking [`NetClient`] used by the integration
//!   tests, the protocol-torture suite, and the `serve_net` bench.
//!
//! The engine's fast-fail taxonomy crosses the wire intact: admission
//! rejections, queue-full, breaker-open, deadline, and worker-panic
//! failures each map to their own [`ErrorCode`], so a remote client can
//! react exactly as an in-process caller would.

#![deny(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, NetClient, RemoteHealth, ServerReject};
pub use protocol::{ErrorCode, FrameType, WireError, DEFAULT_MAX_FRAME, WIRE_VERSION};
pub use server::{NetConfig, NetMetricsSnapshot, NetServer, NetStats};
