//! `deepmap-net`: a hardened TCP front end for the DeepMap model router.
//!
//! PR 5 made the in-process engine resilient (admission control,
//! deadlines, supervision, a circuit breaker); PR 6 extended that posture
//! one layer out, to where malformed input, slow clients, and connection
//! churn actually arrive; PR 7 put a multi-tenant
//! [`ModelRouter`](deepmap_router::ModelRouter) behind the same port:
//!
//! - [`protocol`] — the versioned, length-prefixed `DMW2` wire format
//!   (magic + version + frame type + u32 body length, request bodies
//!   carrying a length-prefixed model name) with strict typed validation
//!   ([`WireError`]): bad magic, unknown versions and frame types,
//!   oversized and truncated frames, and over-long model names are all
//!   answered with error frames, never panics or silent drops. Legacy
//!   `DMW1` frames are still accepted and routed to the default model.
//!   Graph and prediction payloads ride the shared
//!   [`deepmap_serve::codec`] readers, so the wire and bundle formats
//!   validate bytes one way.
//! - [`server`] — the blocking-threads [`NetServer`]: many named models
//!   behind one port ([`NetServer::start_router`]), per-connection
//!   read/write deadlines and idle timeouts (slow-loris shedding),
//!   bounded connection and in-flight budgets that reject with
//!   [`ErrorCode::Busy`] (backpressure), per-connection panic isolation,
//!   graceful drain with a bounded shutdown deadline, admin frames gated
//!   by [`NetConfig::allow_admin`], and `serve.conn_*` instruments on the
//!   router's metrics registry.
//! - [`client`] — a small blocking [`NetClient`] (with a byte-faithful
//!   `DMW1` mode, [`NetClient::connect_v1`]) used by the integration
//!   tests, the protocol-torture suite, and the benches.
//!
//! PR 8 threads request tracing through the edge: predict payloads may
//! carry an optional `TR01` trace trailer
//! ([`protocol::append_trace_trailer`]) adopting a caller-chosen trace
//! id, every request is stamped `accepted` at frame parse and
//! `reply_written` after the reply write, and the admin-gated
//! [`FrameType::TraceDump`] frame ([`NetClient::trace_dump`]) pulls each
//! model's flight recorder as JSONL over the wire. Clients that never
//! append a trailer send byte-identical frames and hit the exact same
//! decode path as before.
//!
//! PR 10 attaches the model lifecycle controller to the edge
//! ([`NetServer::start_lifecycle`]): predict frames feed the controller's
//! shadow mirror and canary slice — with automatic live-pool retry when a
//! canary faults, so no client request is ever lost to a dying candidate
//! — and the admin-gated [`FrameType::Rollout`] /
//! [`FrameType::RolloutStatus`] frames drive shadow → canary → live
//! promotions (and rollbacks) over the wire
//! ([`NetClient::rollout_begin`] and friends).
//!
//! The engine's fast-fail taxonomy crosses the wire intact: admission
//! rejections, queue-full, breaker-open, deadline, and worker-panic
//! failures each map to their own [`ErrorCode`], so a remote client can
//! react exactly as an in-process caller would — and a routing miss has
//! its own [`ErrorCode::UnknownModel`], answered without dropping the
//! connection.

#![deny(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, NetClient, RemoteHealth, ServerReject};
pub use protocol::{
    append_trace_trailer, split_trace_trailer, ErrorCode, FrameType, RolloutAction, WireError,
    WireModelInfo, DEFAULT_MAX_FRAME, MAX_MODEL_NAME, TRACE_TRAILER_LEN, TRACE_TRAILER_MAGIC,
    WIRE_V1, WIRE_VERSION,
};
pub use server::{NetConfig, NetMetricsSnapshot, NetServer, NetStats, DEFAULT_MODEL_NAME};
