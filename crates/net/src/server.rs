//! The blocking-threads TCP front end.
//!
//! ```text
//! TcpListener → acceptor thread → per-connection handler threads
//!             → frame loop → ModelRouter::resolve → InferenceServer::submit
//!             → reply frames
//! ```
//!
//! The acceptor polls a non-blocking listener so it can observe the drain
//! flag; every accepted socket gets its own handler thread. Since PR 7 the
//! front end serves a whole [`ModelRouter`] rather than a single engine:
//! version-2 frames carry a model name and are routed to that model's
//! replica pool, version-1 frames (and v2 frames with the empty name) go
//! to the router's default model, and admin frames
//! ([`FrameType::ListModels`], [`FrameType::Reload`],
//! [`FrameType::TraceDump`]) manage the registry and pull the flight
//! recorder over the wire when [`NetConfig::allow_admin`] is set. Replies
//! mirror the request's wire dialect, so a `DMW1` client only ever reads
//! `DMW1` frames back.
//!
//! Since PR 8 the edge also participates in request tracing: every
//! predict frame is stamped `accepted` the moment its header is parsed,
//! a client-supplied `TR01` trace trailer (see
//! [`crate::protocol::append_trace_trailer`]) is adopted as the request's
//! trace id, and the reply write stamps `reply_written` into the engine's
//! flight recorder, closing the end-to-end latency ledger.
//!
//! The edge is hardened the same way PR 5 hardened the engine:
//!
//! - **strict protocol validation** — every frame is parsed with the typed
//!   [`WireError`] taxonomy and answered (error frame or reply), never
//!   silently dropped; a framing violation closes the connection because
//!   the stream can no longer be trusted to be frame-aligned, while a
//!   well-formed frame with a bad payload — including an over-long or
//!   unknown model name — is answered and the connection lives on;
//! - **deadlines everywhere** — waiting for a new frame is bounded by
//!   [`NetConfig::idle_timeout`], reading the rest of a started frame by
//!   [`NetConfig::read_timeout`] (slow-loris shedding), writes by
//!   [`NetConfig::write_timeout`], and waiting on the engine by
//!   [`NetConfig::reply_deadline`] — no connection thread can block
//!   forever;
//! - **bounded budgets** — at most [`NetConfig::max_connections`] handler
//!   threads (excess connections are accepted, answered with a
//!   [`ErrorCode::Busy`] error frame, and closed) and at most
//!   [`NetConfig::max_in_flight`] requests inside the engines at once
//!   (excess requests are answered with `Busy` — backpressure, counted in
//!   `serve.rejected_busy`);
//! - **panic isolation** — each handler runs under
//!   [`std::panic::catch_unwind`]; a poisoned connection is closed and
//!   counted (`serve.conn_panics`) without touching the acceptor or any
//!   other connection;
//! - **graceful drain** — [`NetServer::drain`] (or a [`FrameType::Drain`]
//!   frame) stops the acceptor and asks handlers to finish their current
//!   frame; [`NetServer::shutdown`] bounds the drain with
//!   [`NetConfig::drain_deadline`], force-closes stragglers' sockets,
//!   joins every thread, and then shuts the router down (joining every
//!   replica pool) — zero leaked threads by construction.
//!
//! The edge instruments live on the router's always-live registry, so one
//! Prometheus rendering covers the edge unlabelled plus every resident
//! model's `serve.*` instruments labelled `model="<name>"`.

use crate::protocol::{
    encode_error_body, encode_model_list, parse_header, split_named_body, split_trace_trailer,
    ErrorCode, FrameHeader, FrameType, RolloutAction, WireError, WireModelInfo, DEFAULT_MAX_FRAME,
    HEADER_LEN, WIRE_V1, WIRE_VERSION,
};
use deepmap_graph::Graph;
use deepmap_lifecycle::{LifecycleController, LifecycleError, PromotionPolicy, POLICY_WIRE_LEN};
use deepmap_obs::{now_micros, Counter, Gauge};
use deepmap_router::{ModelConfig, ModelRouter, RouterConfig, RouterError, RouterStats};
use deepmap_serve::codec::{decode_graph, encode_prediction};
use deepmap_serve::{
    Health, InferenceServer, ModelBundle, Prediction, RequestCtx, ServeError, Stage,
};
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The name [`NetServer::start`] registers a bare engine under when it
/// wraps it into a single-model router.
pub const DEFAULT_MODEL_NAME: &str = "default";

/// Tuning knobs for the TCP front end.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Handler-thread budget; further connections are answered with a
    /// `Busy` error frame and closed.
    pub max_connections: usize,
    /// Server-wide ceiling on requests inside the engines at once; further
    /// requests are answered with `Busy` (backpressure at the edge).
    pub max_in_flight: usize,
    /// Largest accepted frame body; bigger declared lengths are refused
    /// before any allocation.
    pub max_frame_bytes: u32,
    /// How long a connection may sit between frames before it is closed.
    pub idle_timeout: Duration,
    /// How long a started frame may take to finish arriving (slow-loris
    /// shedding).
    pub read_timeout: Duration,
    /// How long a reply write may block.
    pub write_timeout: Duration,
    /// How long the server waits for an engine to answer one request.
    pub reply_deadline: Duration,
    /// How long [`NetServer::shutdown`] waits for handlers to drain before
    /// force-closing their sockets.
    pub drain_deadline: Duration,
    /// Whether the admin frames ([`FrameType::ListModels`],
    /// [`FrameType::Reload`]) are served. Off by default: a predict-only
    /// deployment must not let any peer swap its models.
    pub allow_admin: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            max_in_flight: 256,
            max_frame_bytes: DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            reply_deadline: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            allow_admin: false,
        }
    }
}

/// Point-in-time snapshot of the `serve.conn_*` edge instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetMetricsSnapshot {
    /// Connections accepted (including ones rejected right after accept).
    pub conn_accepted: u64,
    /// Connections fully closed.
    pub conn_closed: u64,
    /// Connections answered with `Busy` because the handler budget was
    /// exhausted.
    pub conn_rejected_capacity: u64,
    /// Connections closed because they sat idle past the idle timeout.
    pub conn_idle_closed: u64,
    /// Connections closed because a started frame (or a reply write)
    /// timed out — the slow-loris counter.
    pub conn_timeouts: u64,
    /// Handler panics caught; each closed exactly one connection.
    pub conn_panics: u64,
    /// Well-formed frames received.
    pub conn_frames_in: u64,
    /// Frames written (replies and error frames).
    pub conn_frames_out: u64,
    /// Protocol violations answered with an error frame.
    pub conn_frame_errors: u64,
    /// Bytes read off accepted sockets.
    pub conn_bytes_in: u64,
    /// Bytes written to accepted sockets.
    pub conn_bytes_out: u64,
    /// Requests refused at the edge because the in-flight budget was
    /// exhausted.
    pub rejected_busy: u64,
    /// Currently open connections.
    pub conn_active: usize,
    /// High-water mark of open connections.
    pub peak_conn_active: usize,
}

/// The `serve.conn_*` instruments, registered on the router's registry.
struct NetMetrics {
    accepted: Arc<Counter>,
    closed: Arc<Counter>,
    rejected_capacity: Arc<Counter>,
    idle_closed: Arc<Counter>,
    timeouts: Arc<Counter>,
    panics: Arc<Counter>,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    frame_errors: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    rejected_busy: Arc<Counter>,
    active: Arc<Gauge>,
}

impl NetMetrics {
    fn new(router: &ModelRouter) -> NetMetrics {
        let registry = router.metrics_registry();
        NetMetrics {
            accepted: registry.counter("serve.conn_accepted"),
            closed: registry.counter("serve.conn_closed"),
            rejected_capacity: registry.counter("serve.conn_rejected_capacity"),
            idle_closed: registry.counter("serve.conn_idle_closed"),
            timeouts: registry.counter("serve.conn_timeouts"),
            panics: registry.counter("serve.conn_panics"),
            // Ingress and egress instruments carry the trace-stage name of
            // the boundary they observe, so one Prometheus query can join
            // the edge counters with the engine's stage histograms.
            frames_in: registry.counter_labeled("serve.conn_frames_in", &[("stage", "accepted")]),
            frames_out: registry
                .counter_labeled("serve.conn_frames_out", &[("stage", "reply_written")]),
            frame_errors: registry.counter("serve.conn_frame_errors"),
            bytes_in: registry.counter_labeled("serve.conn_bytes_in", &[("stage", "accepted")]),
            bytes_out: registry
                .counter_labeled("serve.conn_bytes_out", &[("stage", "reply_written")]),
            // The edge's slice of the backpressure counter; each engine
            // also counts its own admission-layer rejections.
            rejected_busy: registry.counter("serve.rejected_busy"),
            active: registry.gauge("serve.conn_active"),
        }
    }
}

/// State shared between the acceptor, every handler thread, and the
/// [`NetServer`] handle.
struct Shared {
    router: Arc<ModelRouter>,
    /// The rollout controller, when this edge serves lifecycle-managed
    /// models: predict frames pass through its shadow mirror and canary
    /// slice, and the `Rollout`/`RolloutStatus` admin frames drive it.
    lifecycle: Option<Arc<LifecycleController>>,
    config: NetConfig,
    draining: AtomicBool,
    in_flight: AtomicUsize,
    active_conns: AtomicUsize,
    next_conn_id: AtomicU64,
    /// One cloned stream per live connection, so shutdown can force
    /// stragglers off their blocking reads.
    conn_streams: Mutex<HashMap<u64, TcpStream>>,
    metrics: NetMetrics,
}

/// Final accounting returned by [`NetServer::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub conns_accepted: u64,
    /// Connections closed (must equal accepted after shutdown).
    pub conns_closed: u64,
    /// Handler panics caught and isolated.
    pub conn_panics: u64,
    /// Handler threads joined by shutdown (acceptor not included).
    pub threads_joined: usize,
    /// Sockets force-closed because the drain deadline passed (0 for a
    /// fully graceful drain).
    pub forced_closes: usize,
    /// The router's final accounting: pools retired, joined, and leaked.
    pub router: RouterStats,
}

/// Handle on the running TCP front end. Owns the router: dropping the
/// server (or calling [`NetServer::shutdown`]) drains the edge first, then
/// retires every model's replica pool.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    forced_closes: usize,
    threads_joined: usize,
    router_stats: Option<RouterStats>,
    shut_down: bool,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves `engine`
    /// as the single model [`DEFAULT_MODEL_NAME`] — the PR 6 entry point,
    /// now sugar over a one-model router.
    pub fn start(
        engine: InferenceServer,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> Result<NetServer, ServeError> {
        let router = Arc::new(ModelRouter::new(RouterConfig::default()));
        router
            .register_engine(DEFAULT_MODEL_NAME, engine, ModelConfig::default())
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Self::start_router(router, addr, config)
    }

    /// Binds `addr` and serves every model resident in (or later added to)
    /// `router`. The router's registry gains the `serve.conn_*` edge
    /// instruments; [`NetServer::shutdown`] retires every model.
    pub fn start_router(
        router: Arc<ModelRouter>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> Result<NetServer, ServeError> {
        Self::start_with_lifecycle(router, None, addr, config)
    }

    /// [`start_router`](NetServer::start_router) with a rollout controller
    /// attached: predict frames feed the controller's shadow mirror and
    /// canary slice (with automatic live-pool retry on candidate faults),
    /// and the `Rollout` / `RolloutStatus` admin frames drive and observe
    /// rollouts over the wire. The controller must wrap the same router.
    pub fn start_lifecycle(
        router: Arc<ModelRouter>,
        lifecycle: Arc<LifecycleController>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> Result<NetServer, ServeError> {
        Self::start_with_lifecycle(router, Some(lifecycle), addr, config)
    }

    fn start_with_lifecycle(
        router: Arc<ModelRouter>,
        lifecycle: Option<Arc<LifecycleController>>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> Result<NetServer, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let metrics = NetMetrics::new(&router);
        let shared = Arc::new(Shared {
            router,
            lifecycle,
            config,
            draining: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            active_conns: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(0),
            conn_streams: Mutex::new(HashMap::new()),
            metrics,
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("net-acceptor".to_string())
                .spawn(move || run_acceptor(listener, shared, handlers))
                .map_err(|e| ServeError::Io(e.to_string()))?
        };
        Ok(NetServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            handlers,
            forced_closes: 0,
            threads_joined: 0,
            router_stats: None,
            shut_down: false,
        })
    }

    /// The bound address (with the resolved port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `true` once a drain has started (locally or via a `Drain` frame).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Starts a graceful drain: the acceptor stops accepting and handler
    /// threads close after finishing the frame they are on. Idempotent.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// The default model's health, as the unnamed wire `Health` frame
    /// reports it. `Unavailable` while draining or with no default model.
    pub fn health(&self) -> Health {
        if self.is_draining() {
            return Health::Unavailable;
        }
        match self.shared.router.resolve("") {
            Ok(engine) => engine.health(),
            Err(_) => Health::Unavailable,
        }
    }

    /// Snapshot of the edge instruments.
    pub fn metrics(&self) -> NetMetricsSnapshot {
        let m = &self.shared.metrics;
        NetMetricsSnapshot {
            conn_accepted: m.accepted.get(),
            conn_closed: m.closed.get(),
            conn_rejected_capacity: m.rejected_capacity.get(),
            conn_idle_closed: m.idle_closed.get(),
            conn_timeouts: m.timeouts.get(),
            conn_panics: m.panics.get(),
            conn_frames_in: m.frames_in.get(),
            conn_frames_out: m.frames_out.get(),
            conn_frame_errors: m.frame_errors.get(),
            conn_bytes_in: m.bytes_in.get(),
            conn_bytes_out: m.bytes_out.get(),
            rejected_busy: m.rejected_busy.get(),
            conn_active: m.active.get().max(0) as usize,
            peak_conn_active: m.active.max().max(0) as usize,
        }
    }

    /// The router behind the front end (register or reload models on it
    /// while the server runs; new requests route to the new pools).
    pub fn router(&self) -> &Arc<ModelRouter> {
        &self.shared.router
    }

    /// The attached rollout controller, when the server was started with
    /// [`NetServer::start_lifecycle`].
    pub fn lifecycle(&self) -> Option<&Arc<LifecycleController>> {
        self.shared.lifecycle.as_ref()
    }

    /// The default model's replica pool, if a default is set (for its
    /// metrics snapshot or health in tests).
    pub fn default_engine(&self) -> Option<Arc<InferenceServer>> {
        self.shared.router.resolve("").ok()
    }

    /// Drains, bounds the drain with [`NetConfig::drain_deadline`],
    /// force-closes straggler sockets past it, joins every thread (acceptor
    /// and handlers), and shuts the router down — every model's pool is
    /// retired and joined. Returns the final accounting; after it, no
    /// thread started by this server is alive.
    pub fn shutdown(mut self) -> NetStats {
        self.shutdown_in_place();
        NetStats {
            conns_accepted: self.shared.metrics.accepted.get(),
            conns_closed: self.shared.metrics.closed.get(),
            conn_panics: self.shared.metrics.panics.get(),
            threads_joined: self.threads_joined,
            forced_closes: self.forced_closes,
            router: self
                .router_stats
                .unwrap_or_else(|| self.shared.router.shutdown()),
        }
    }

    fn shutdown_in_place(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        self.drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Bounded graceful phase: wait for handlers to notice the drain.
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        while self.shared.active_conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Force phase: kick stragglers off their blocking reads.
        {
            let streams = self.shared.conn_streams.lock().expect("conn streams");
            self.forced_closes = streams.len();
            for stream in streams.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        let handlers: Vec<JoinHandle<()>> = {
            let mut guard = self.handlers.lock().expect("handler list");
            guard.drain(..).collect()
        };
        self.threads_joined = handlers.len();
        for handle in handlers {
            let _ = handle.join();
        }
        // Edge fully quiet: no handler holds an engine Arc any more, so
        // the router can retire and join every pool.
        self.router_stats = Some(self.shared.router.shutdown());
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn run_acceptor(
    listener: TcpListener,
    shared: Arc<Shared>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.accepted.inc();
                // The listener is non-blocking and the accepted socket
                // inherits that on some platforms; handlers need blocking
                // reads with timeouts.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                if shared.draining.load(Ordering::Acquire) {
                    reject_connection(&shared, stream, ErrorCode::Draining, "server is draining");
                    continue;
                }
                if shared.active_conns.load(Ordering::Acquire) >= shared.config.max_connections {
                    shared.metrics.rejected_capacity.inc();
                    reject_connection(
                        &shared,
                        stream,
                        ErrorCode::Busy,
                        "connection budget exhausted, retry later",
                    );
                    continue;
                }
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared
                        .conn_streams
                        .lock()
                        .expect("conn streams")
                        .insert(conn_id, clone);
                }
                shared.active_conns.fetch_add(1, Ordering::AcqRel);
                shared.metrics.active.add(1);
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("net-conn-{conn_id}"))
                    .spawn(move || {
                        // Panic isolation: a poisoned connection never takes
                        // down the acceptor or its sibling connections.
                        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            run_connection(&conn_shared, &stream)
                        }));
                        if result.is_err() {
                            conn_shared.metrics.panics.inc();
                            let _ = stream.shutdown(Shutdown::Both);
                        }
                        conn_shared
                            .conn_streams
                            .lock()
                            .expect("conn streams")
                            .remove(&conn_id);
                        conn_shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                        conn_shared.metrics.active.add(-1);
                        conn_shared.metrics.closed.inc();
                    });
                match spawned {
                    Ok(handle) => handlers.lock().expect("handler list").push(handle),
                    Err(_) => {
                        // Thread spawn failed (resource exhaustion): undo
                        // the bookkeeping; the stream drops closed.
                        shared
                            .conn_streams
                            .lock()
                            .expect("conn streams")
                            .remove(&conn_id);
                        shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                        shared.metrics.active.add(-1);
                        shared.metrics.closed.inc();
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE); back off briefly
                // rather than spinning or dying.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Answers a connection the server will not serve (over budget or
/// draining) with one best-effort error frame, then closes it. The socket
/// was accepted first, so the client gets a typed reason instead of a
/// silent RST. The peer's dialect is unknown before its first frame, so
/// the rejection goes out as `DMW2`.
fn reject_connection(shared: &Shared, mut stream: TcpStream, code: ErrorCode, message: &str) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = write_counted(
        shared,
        &mut stream,
        WIRE_VERSION,
        FrameType::Error,
        &encode_error_body(code, message),
    );
    shared.metrics.closed.inc();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Writes one frame in the given wire dialect and maintains the
/// frames/bytes-out instruments.
fn write_counted(
    shared: &Shared,
    stream: &mut TcpStream,
    version: u8,
    frame_type: FrameType,
    body: &[u8],
) -> std::io::Result<()> {
    use std::io::Write;
    // Counted before the write: a client that has read this reply must see
    // the counters already bumped, so "observe reply, then scrape metrics"
    // can never race. A failed write_all overcounts by one frame on a
    // connection that is being torn down anyway.
    shared.metrics.frames_out.inc();
    shared
        .metrics
        .bytes_out
        .add((HEADER_LEN + body.len()) as u64);
    stream.write_all(&crate::protocol::encode_frame_v(version, frame_type, body))?;
    Ok(())
}

/// Why the per-connection frame loop stopped.
enum ConnExit {
    /// Peer closed, went idle, or the drain flag asked us to stop.
    Clean,
    /// A started frame or a reply write timed out (slow client).
    TimedOut,
    /// A framing violation was answered; the stream is desynchronised.
    Protocol,
}

fn run_connection(shared: &Shared, stream: &TcpStream) {
    let mut stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let exit = connection_loop(shared, &mut stream);
    match exit {
        ConnExit::Clean => {}
        ConnExit::TimedOut => shared.metrics.timeouts.inc(),
        ConnExit::Protocol => {}
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn connection_loop(shared: &Shared, stream: &mut TcpStream) -> ConnExit {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            return ConnExit::Clean;
        }
        // Waiting for a new frame is bounded by the idle timeout…
        let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
        let mut header = [0u8; HEADER_LEN];
        match stream.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if is_timeout(&e) => {
                shared.metrics.idle_closed.inc();
                return ConnExit::Clean;
            }
            Err(_) => return ConnExit::Clean, // EOF or reset: peer is gone.
        }
        #[cfg(feature = "fault-inject")]
        maybe_poison(&header);
        let parsed = match parse_header(&header, shared.config.max_frame_bytes) {
            Ok(parsed) => parsed,
            Err(wire_err) => {
                // Answer the violation, then close: after a bad header the
                // stream is no longer frame-aligned.
                shared.metrics.frame_errors.inc();
                let _ = write_counted(
                    shared,
                    stream,
                    WIRE_VERSION,
                    FrameType::Error,
                    &encode_error_body(wire_err.code(), &wire_err.to_string()),
                );
                return ConnExit::Protocol;
            }
        };
        // …but once a frame has started, the body must arrive promptly.
        let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
        let mut body = vec![0u8; parsed.body_len as usize];
        match stream.read_exact(&mut body) {
            Ok(()) => {}
            Err(e) if is_timeout(&e) => return ConnExit::TimedOut,
            Err(_) => return ConnExit::Clean,
        }
        shared.metrics.frames_in.inc();
        shared
            .metrics
            .bytes_in
            .add((HEADER_LEN + body.len()) as u64);
        match serve_frame(shared, stream, parsed, &body) {
            Ok(keep_going) => {
                if !keep_going {
                    return ConnExit::Clean;
                }
            }
            Err(e) if is_timeout(&e) => return ConnExit::TimedOut,
            Err(_) => return ConnExit::Clean,
        }
    }
}

#[cfg(feature = "fault-inject")]
fn maybe_poison(header: &[u8; HEADER_LEN]) {
    // 0x66 is reserved-unknown in the protocol; with fault injection
    // compiled in it detonates the handler to prove panic isolation.
    if header[0..4] == crate::protocol::MAGIC
        && header[4] == crate::protocol::WIRE_VERSION
        && header[5] == 0x66
    {
        panic!("fault-inject: poison-pill frame");
    }
}

/// Splits a request body into its model name and payload according to the
/// frame's dialect: version 1 has no name field and routes to the default
/// model, version 2 starts with the length-prefixed name.
fn named_payload(header: FrameHeader, body: &[u8]) -> Result<(&str, &[u8]), WireError> {
    if header.version == WIRE_V1 {
        Ok(("", body))
    } else {
        split_named_body(body)
    }
}

/// Serves one well-formed frame. Returns `Ok(false)` when the connection
/// should close after the reply (drain), `Err` on a write failure.
fn serve_frame(
    shared: &Shared,
    stream: &mut TcpStream,
    header: FrameHeader,
    body: &[u8],
) -> std::io::Result<bool> {
    let v = header.version;
    // The accepted-stage timestamp for any predict work in this frame:
    // taken once, before decode or routing, so queueing ahead of admission
    // is attributed to the edge and not hidden.
    let accepted_us = now_micros();
    // A well-formed frame with a bad payload — over-long name, garbage
    // utf-8, truncated body — is answered and the connection lives on; the
    // stream is still frame-aligned.
    let answer_wire_err = |shared: &Shared, stream: &mut TcpStream, e: &WireError| {
        shared.metrics.frame_errors.inc();
        write_counted(
            shared,
            stream,
            v,
            FrameType::Error,
            &encode_error_body(e.code(), &e.to_string()),
        )
    };
    match header.frame_type {
        FrameType::Predict => {
            let (model, payload) = match named_payload(header, body) {
                Ok(split) => split,
                Err(e) => {
                    answer_wire_err(shared, stream, &e)?;
                    return Ok(true);
                }
            };
            let reply = predict_one(shared, model, payload, accepted_us);
            match reply {
                Ok((prediction, trace)) => {
                    write_counted(
                        shared,
                        stream,
                        v,
                        FrameType::PredictReply,
                        &encode_prediction(&prediction),
                    )?;
                    // Stamped after the write returns so the recorder's
                    // last stage covers serialization and the socket.
                    if let Some((engine, trace_id)) = trace {
                        let _ = engine
                            .flight_recorder()
                            .stamp_reply_written(trace_id, now_micros());
                    }
                }
                Err((code, message)) => {
                    // A bad payload is a protocol violation; engine-side
                    // failures (busy, rejected, breaker) are not.
                    if code == ErrorCode::BadBody {
                        shared.metrics.frame_errors.inc();
                    }
                    write_counted(
                        shared,
                        stream,
                        v,
                        FrameType::Error,
                        &encode_error_body(code, &message),
                    )?
                }
            }
            Ok(true)
        }
        FrameType::PredictBatch => {
            let (model, payload) = match named_payload(header, body) {
                Ok(split) => split,
                Err(e) => {
                    answer_wire_err(shared, stream, &e)?;
                    return Ok(true);
                }
            };
            let reply = predict_batch(shared, model, payload, accepted_us);
            match reply {
                Ok((items, trace)) => {
                    write_counted(shared, stream, v, FrameType::PredictBatchReply, &items)?;
                    if let Some((engine, trace_ids)) = trace {
                        let done_us = now_micros();
                        for trace_id in trace_ids {
                            let _ = engine
                                .flight_recorder()
                                .stamp_reply_written(trace_id, done_us);
                        }
                    }
                }
                Err((code, message)) => {
                    if code == ErrorCode::BadBody {
                        shared.metrics.frame_errors.inc();
                    }
                    write_counted(
                        shared,
                        stream,
                        v,
                        FrameType::Error,
                        &encode_error_body(code, &message),
                    )?
                }
            }
            Ok(true)
        }
        FrameType::Health => {
            let (model, _) = match named_payload(header, body) {
                Ok(split) => split,
                Err(e) => {
                    answer_wire_err(shared, stream, &e)?;
                    return Ok(true);
                }
            };
            if shared.draining.load(Ordering::Acquire) {
                write_counted(shared, stream, v, FrameType::HealthReply, &[2, 0, 0, 0, 0])?;
                return Ok(true);
            }
            let health = match shared.router.resolve(model) {
                Ok(engine) => engine.health(),
                Err(e) => {
                    let (code, message) = router_error_reply(&e);
                    write_counted(
                        shared,
                        stream,
                        v,
                        FrameType::Error,
                        &encode_error_body(code, &message),
                    )?;
                    return Ok(true);
                }
            };
            let (state, live) = match health {
                Health::Ready => (0u8, 0u32),
                Health::Degraded { live_workers } => (1, live_workers as u32),
                Health::Unavailable => (2, 0),
            };
            let mut reply = Vec::with_capacity(5);
            reply.push(state);
            reply.extend_from_slice(&live.to_le_bytes());
            write_counted(shared, stream, v, FrameType::HealthReply, &reply)?;
            Ok(true)
        }
        FrameType::Metrics => {
            let (model, _) = match named_payload(header, body) {
                Ok(split) => split,
                Err(e) => {
                    answer_wire_err(shared, stream, &e)?;
                    return Ok(true);
                }
            };
            // The empty name renders the whole tenancy (router instruments
            // plus every model labelled); a named request scopes to one
            // model's labelled registry.
            if model.is_empty() {
                let text = shared.router.render_metrics();
                write_counted(shared, stream, v, FrameType::MetricsReply, text.as_bytes())?;
            } else {
                match shared.router.resolve(model) {
                    Ok(engine) => {
                        let text = engine
                            .metrics_registry()
                            .render_prometheus_labeled(&[("model", model)]);
                        write_counted(shared, stream, v, FrameType::MetricsReply, text.as_bytes())?;
                    }
                    Err(e) => {
                        let (code, message) = router_error_reply(&e);
                        write_counted(
                            shared,
                            stream,
                            v,
                            FrameType::Error,
                            &encode_error_body(code, &message),
                        )?;
                    }
                }
            }
            Ok(true)
        }
        FrameType::Drain => {
            shared.draining.store(true, Ordering::Release);
            write_counted(shared, stream, v, FrameType::DrainReply, &[])?;
            Ok(false)
        }
        FrameType::ListModels
        | FrameType::Reload
        | FrameType::TraceDump
        | FrameType::Rollout
        | FrameType::RolloutStatus
            if v == WIRE_V1 =>
        {
            write_counted(
                shared,
                stream,
                v,
                FrameType::Error,
                &encode_error_body(
                    ErrorCode::UnsupportedVersion,
                    "admin frames require the DMW2 dialect",
                ),
            )?;
            Ok(true)
        }
        FrameType::ListModels
        | FrameType::Reload
        | FrameType::TraceDump
        | FrameType::Rollout
        | FrameType::RolloutStatus
            if !shared.config.allow_admin =>
        {
            write_counted(
                shared,
                stream,
                v,
                FrameType::Error,
                &encode_error_body(
                    ErrorCode::AdminDisabled,
                    "this server was started without allow_admin",
                ),
            )?;
            Ok(true)
        }
        FrameType::ListModels => {
            let models: Vec<WireModelInfo> = shared
                .router
                .list_models()
                .into_iter()
                .map(|m| {
                    let (health_state, live_workers) = match m.health {
                        Health::Ready => (0u8, 0u32),
                        Health::Degraded { live_workers } => (1, live_workers as u32),
                        Health::Unavailable => (2, 0),
                    };
                    WireModelInfo {
                        name: m.name,
                        version: m.version,
                        is_default: m.is_default,
                        health_state,
                        live_workers,
                        n_classes: m.n_classes as u32,
                    }
                })
                .collect();
            write_counted(
                shared,
                stream,
                v,
                FrameType::ListModelsReply,
                &encode_model_list(&models),
            )?;
            Ok(true)
        }
        FrameType::Reload => {
            let (model, bundle_bytes) = match split_named_body(body) {
                Ok(split) => split,
                Err(e) => {
                    answer_wire_err(shared, stream, &e)?;
                    return Ok(true);
                }
            };
            let bundle = match ModelBundle::from_bytes(bundle_bytes) {
                Ok(bundle) => bundle,
                Err(e) => {
                    let body = encode_error_body(ErrorCode::BadBody, &format!("bundle image: {e}"));
                    shared.metrics.frame_errors.inc();
                    write_counted(shared, stream, v, FrameType::Error, &body)?;
                    return Ok(true);
                }
            };
            // The build + probe runs on this connection's thread; sibling
            // connections keep serving the resident pool throughout.
            match shared.router.reload(model, Arc::new(bundle)) {
                Ok(version) => write_counted(
                    shared,
                    stream,
                    v,
                    FrameType::ReloadReply,
                    &version.to_le_bytes(),
                )?,
                Err(e) => {
                    let (code, message) = router_error_reply(&e);
                    write_counted(
                        shared,
                        stream,
                        v,
                        FrameType::Error,
                        &encode_error_body(code, &message),
                    )?;
                }
            }
            Ok(true)
        }
        FrameType::Rollout => {
            let (model, rest) = match split_named_body(body) {
                Ok(split) => split,
                Err(e) => {
                    answer_wire_err(shared, stream, &e)?;
                    return Ok(true);
                }
            };
            match serve_rollout(shared, model, rest) {
                Ok(status_json) => write_counted(
                    shared,
                    stream,
                    v,
                    FrameType::RolloutReply,
                    status_json.as_bytes(),
                )?,
                Err((code, message)) => {
                    if code == ErrorCode::BadBody {
                        shared.metrics.frame_errors.inc();
                    }
                    write_counted(
                        shared,
                        stream,
                        v,
                        FrameType::Error,
                        &encode_error_body(code, &message),
                    )?;
                }
            }
            Ok(true)
        }
        FrameType::RolloutStatus => {
            let (model, _) = match split_named_body(body) {
                Ok(split) => split,
                Err(e) => {
                    answer_wire_err(shared, stream, &e)?;
                    return Ok(true);
                }
            };
            let status = match &shared.lifecycle {
                None => Err((
                    ErrorCode::RolloutRefused,
                    "this server runs without a lifecycle controller".to_string(),
                )),
                Some(lc) => lc
                    .status(model)
                    .map(|s| s.to_json().to_json())
                    .map_err(|e| lifecycle_error_reply(&e)),
            };
            match status {
                Ok(json) => write_counted(
                    shared,
                    stream,
                    v,
                    FrameType::RolloutStatusReply,
                    json.as_bytes(),
                )?,
                Err((code, message)) => {
                    write_counted(
                        shared,
                        stream,
                        v,
                        FrameType::Error,
                        &encode_error_body(code, &message),
                    )?;
                }
            }
            Ok(true)
        }
        FrameType::TraceDump => {
            let (model, _) = match split_named_body(body) {
                Ok(split) => split,
                Err(e) => {
                    answer_wire_err(shared, stream, &e)?;
                    return Ok(true);
                }
            };
            // The empty name dumps every resident model's recorder; a
            // named request scopes to one model.
            let dump = if model.is_empty() {
                Ok(shared.router.trace_dump())
            } else {
                shared.router.trace_dump_of(model)
            };
            match dump {
                Ok(text) => write_counted(
                    shared,
                    stream,
                    v,
                    FrameType::TraceDumpReply,
                    text.as_bytes(),
                )?,
                Err(e) => {
                    let (code, message) = router_error_reply(&e);
                    write_counted(
                        shared,
                        stream,
                        v,
                        FrameType::Error,
                        &encode_error_body(code, &message),
                    )?;
                }
            }
            Ok(true)
        }
        FrameType::PredictReply
        | FrameType::PredictBatchReply
        | FrameType::HealthReply
        | FrameType::MetricsReply
        | FrameType::DrainReply
        | FrameType::ListModelsReply
        | FrameType::ReloadReply
        | FrameType::TraceDumpReply
        | FrameType::RolloutReply
        | FrameType::RolloutStatusReply
        | FrameType::Error => {
            // Reply-direction frames are never valid requests; answer and
            // keep the (still frame-aligned) connection.
            shared.metrics.frame_errors.inc();
            write_counted(
                shared,
                stream,
                v,
                FrameType::Error,
                &encode_error_body(
                    ErrorCode::UnexpectedFrame,
                    &format!("{:?} is a reply frame, not a request", header.frame_type),
                ),
            )?;
            Ok(true)
        }
    }
}

/// RAII slice of the in-flight budget; dropping releases it.
struct InFlight<'a> {
    shared: &'a Shared,
    n: usize,
}

impl<'a> InFlight<'a> {
    /// Reserves `n` slots, or fails with [`ServeError::Busy`] when the
    /// budget cannot cover them.
    fn reserve(shared: &'a Shared, n: usize) -> Result<InFlight<'a>, ServeError> {
        let reserved = shared
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                if cur + n <= shared.config.max_in_flight {
                    Some(cur + n)
                } else {
                    None
                }
            });
        match reserved {
            Ok(_) => Ok(InFlight { shared, n }),
            Err(_) => {
                shared.metrics.rejected_busy.add(n as u64);
                Err(ServeError::Busy)
            }
        }
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.shared.in_flight.fetch_sub(self.n, Ordering::AcqRel);
    }
}

fn serve_error_reply(e: &ServeError) -> (ErrorCode, String) {
    (ErrorCode::from_serve_error(e), e.to_string())
}

/// The error frame a lifecycle failure is answered with. State-machine
/// refusals (no rollout, one already active, wrong state, gates unmet,
/// malformed policy) map to [`ErrorCode::RolloutRefused`] with the reason
/// in the message; router failures reuse the router mapping; journal and
/// corruption failures are internal.
fn lifecycle_error_reply(e: &LifecycleError) -> (ErrorCode, String) {
    match e {
        LifecycleError::NoRollout(_)
        | LifecycleError::RolloutActive(_)
        | LifecycleError::BadState { .. }
        | LifecycleError::NotEligible { .. }
        | LifecycleError::BadPolicy(_) => (ErrorCode::RolloutRefused, e.to_string()),
        LifecycleError::Router(re) => router_error_reply(re),
        LifecycleError::Journal(_) | LifecycleError::Corrupt(_) => {
            (ErrorCode::Internal, e.to_string())
        }
    }
}

/// Serves one `Rollout` admin frame: parses the action byte and its
/// payload, drives the controller, and returns the post-action status
/// JSON for the reply body.
fn serve_rollout(shared: &Shared, model: &str, rest: &[u8]) -> Result<String, (ErrorCode, String)> {
    let Some(lc) = &shared.lifecycle else {
        return Err((
            ErrorCode::RolloutRefused,
            "this server runs without a lifecycle controller".to_string(),
        ));
    };
    let Some((&action_byte, payload)) = rest.split_first() else {
        return Err((
            ErrorCode::BadBody,
            "rollout body is missing its action byte".to_string(),
        ));
    };
    let Some(action) = RolloutAction::from_u8(action_byte) else {
        return Err((
            ErrorCode::BadBody,
            format!("unknown rollout action 0x{action_byte:02x}"),
        ));
    };
    let outcome = match action {
        RolloutAction::Begin => {
            if payload.len() < POLICY_WIRE_LEN {
                return Err((
                    ErrorCode::BadBody,
                    format!(
                        "rollout-begin payload is {} bytes, needs at least the \
                         {POLICY_WIRE_LEN}-byte policy",
                        payload.len()
                    ),
                ));
            }
            let Some(policy) = PromotionPolicy::decode(&payload[..POLICY_WIRE_LEN]) else {
                return Err((
                    ErrorCode::BadBody,
                    "malformed promotion policy image".to_string(),
                ));
            };
            let bundle = ModelBundle::from_bytes(&payload[POLICY_WIRE_LEN..])
                .map_err(|e| (ErrorCode::BadBody, format!("candidate bundle image: {e}")))?;
            lc.begin(model, Arc::new(bundle), policy)
        }
        RolloutAction::Advance => lc.advance(model),
        RolloutAction::Promote => lc.promote(model),
        RolloutAction::Rollback => {
            let reason = std::str::from_utf8(payload).map_err(|_| {
                (
                    ErrorCode::BadBody,
                    "rollback reason is not utf-8".to_string(),
                )
            })?;
            let reason = if reason.is_empty() {
                "operator rollback over the wire"
            } else {
                reason
            };
            lc.rollback(model, reason)
        }
    };
    outcome.map_err(|e| lifecycle_error_reply(&e))?;
    lc.status(model)
        .map(|s| s.to_json().to_json())
        .map_err(|e| lifecycle_error_reply(&e))
}

/// The error frame a routing failure is answered with. A routing miss
/// ([`ErrorCode::UnknownModel`]) is not a framing violation: the stream is
/// intact and the connection stays open.
fn router_error_reply(e: &RouterError) -> (ErrorCode, String) {
    match e {
        RouterError::UnknownModel(_) | RouterError::NoDefaultModel => {
            (ErrorCode::UnknownModel, e.to_string())
        }
        RouterError::InvalidName(_) => (ErrorCode::BadBody, e.to_string()),
        RouterError::ShutDown => (ErrorCode::Draining, e.to_string()),
        RouterError::Serve(serve) => serve_error_reply(serve),
        RouterError::AlreadyRegistered(_) | RouterError::ProbeFailed { .. } => {
            (ErrorCode::Internal, e.to_string())
        }
    }
}

/// Decodes a graph payload that may carry a `TR01` trace trailer.
///
/// The graph codec rejects trailing bytes, so a plain decode succeeding
/// proves there is no trailer — legacy payloads never pay the second
/// parse and stay byte-for-byte on their original path. Only when the
/// plain decode fails *and* the tail carries the trailer magic is the
/// trailer stripped and the inner payload retried.
fn decode_traced_graph(payload: &[u8]) -> Result<(Graph, Option<u64>), ServeError> {
    match decode_graph(payload) {
        Ok(graph) => Ok((graph, None)),
        Err(first_err) => match split_trace_trailer(payload) {
            Some((inner, trace_id)) => Ok((decode_graph(inner)?, Some(trace_id))),
            None => Err(first_err),
        },
    }
}

/// Builds the request context for a predict item: adopt the wire-supplied
/// trace id when a trailer carried one, mint otherwise, and stamp the
/// edge's accepted time. The engine downgrades the context to disabled
/// when tracing is off, so the edge never needs to check.
fn edge_ctx(wire_trace: Option<u64>, accepted_us: u64) -> RequestCtx {
    let mut ctx = match wire_trace {
        Some(id) => RequestCtx::adopt(id),
        None => RequestCtx::mint(),
    };
    ctx.stamp_at(Stage::Accepted, accepted_us);
    ctx
}

/// Handle for stamping `reply_written` once the reply bytes hit the
/// socket: the engine whose recorder holds the record(s), plus the trace
/// id(s) to stamp. Absent when the engine runs untraced.
type ReplyStamp = (Arc<InferenceServer>, u64);
/// Batch-frame variant of [`ReplyStamp`]: all traced ids in the batch.
type BatchReplyStamp = (Arc<InferenceServer>, Vec<u64>);

fn predict_one(
    shared: &Shared,
    model: &str,
    payload: &[u8],
    accepted_us: u64,
) -> Result<(Prediction, Option<ReplyStamp>), (ErrorCode, String)> {
    let (graph, wire_trace) =
        decode_traced_graph(payload).map_err(|e| (ErrorCode::BadBody, e.to_string()))?;
    if let Some(lc) = &shared.lifecycle {
        // Off the reply path: a full mirror queue sheds the sample.
        lc.mirror_tap(model, &graph);
        if let Some(candidate) = lc.canary_target(model) {
            if let Some(reply) = canary_attempt(
                shared,
                lc,
                model,
                &candidate,
                &graph,
                wire_trace,
                accepted_us,
            ) {
                return Ok(reply);
            }
            // Candidate failed or vanished: the fault is reported to the
            // controller and the live pool answers below — the client
            // never loses its request to a dying canary.
        }
    }
    // Resolve before submit: the Arc clone keeps this model's pool alive
    // for the whole request even if a reload swaps the registry entry.
    let engine = shared
        .router
        .resolve(model)
        .map_err(|e| router_error_reply(&e))?;
    let _slot = InFlight::reserve(shared, 1).map_err(|e| serve_error_reply(&e))?;
    let handle = engine
        .submit_traced(graph, None, edge_ctx(wire_trace, accepted_us))
        .map_err(|e| serve_error_reply(&e))?;
    // 0 means the engine runs with tracing disabled: nothing to stamp.
    let trace_id = handle.trace_id();
    let served = handle
        .wait_timeout(shared.config.reply_deadline)
        .map_err(|e| serve_error_reply(&e))?;
    Ok((
        Prediction {
            class: served.class,
            scores: served.scores,
        },
        (trace_id != 0).then_some((engine, trace_id)),
    ))
}

/// Tries to answer one predict request from the canary slice. `None`
/// means "answer from the live pool instead" — every candidate failure is
/// reported to the controller (burning its fault budget when it is an
/// infrastructure fault) and then retried on the live pool by the caller,
/// so a panicking or timing-out canary never costs a client its answer.
fn canary_attempt(
    shared: &Shared,
    lc: &LifecycleController,
    model: &str,
    candidate: &str,
    graph: &Graph,
    wire_trace: Option<u64>,
    accepted_us: u64,
) -> Option<(Prediction, Option<ReplyStamp>)> {
    // Unresolvable candidate: the pool was already torn down after a trip;
    // nothing to report, the live pool answers.
    let engine = shared.router.resolve(candidate).ok()?;
    // Edge backpressure is not a candidate fault; fall through without
    // burning the budget (the live attempt will reserve its own slot and
    // answer Busy if the edge really is full).
    let _slot = InFlight::reserve(shared, 1).ok()?;
    let handle = match engine.submit_traced(graph.clone(), None, edge_ctx(wire_trace, accepted_us))
    {
        Ok(handle) => handle,
        Err(e) => {
            lc.report_canary(model, Some(&e));
            return None;
        }
    };
    let trace_id = handle.trace_id();
    match handle.wait_timeout(shared.config.reply_deadline) {
        Ok(served) => {
            lc.report_canary(model, None);
            Some((
                Prediction {
                    class: served.class,
                    scores: served.scores,
                },
                (trace_id != 0).then_some((engine, trace_id)),
            ))
        }
        Err(e) => {
            lc.report_canary(model, Some(&e));
            None
        }
    }
}

/// Serves a batch frame: decodes every graph first (one bad graph fails
/// the whole frame with `BadBody` — the sender's framing is broken), then
/// submits all to the named model under one in-flight reservation and
/// answers per item, so one rejected graph does not fail its batch-mates.
fn predict_batch(
    shared: &Shared,
    model: &str,
    payload: &[u8],
    accepted_us: u64,
) -> Result<(Vec<u8>, Option<BatchReplyStamp>), (ErrorCode, String)> {
    let blobs = crate::protocol::decode_batch_request(payload)
        .map_err(|e| (ErrorCode::BadBody, e.to_string()))?;
    let mut graphs = Vec::with_capacity(blobs.len());
    for (i, blob) in blobs.iter().enumerate() {
        // Each item may carry its own trace trailer; untraced items mint.
        graphs.push(
            decode_traced_graph(blob)
                .map_err(|e| (ErrorCode::BadBody, format!("batch item {i}: {e}")))?,
        );
    }
    if let Some(lc) = &shared.lifecycle {
        // Batch frames feed the shadow mirror but are not canary-routed:
        // the canary slice is measured per request, and splitting a batch
        // across pools would blur its latency attribution.
        for (graph, _) in &graphs {
            lc.mirror_tap(model, graph);
        }
    }
    let engine = shared
        .router
        .resolve(model)
        .map_err(|e| router_error_reply(&e))?;
    let _slots = InFlight::reserve(shared, graphs.len()).map_err(|e| serve_error_reply(&e))?;
    let mut trace_ids = Vec::new();
    let outcomes: Vec<Result<_, ServeError>> = graphs
        .into_iter()
        .map(|(graph, wire_trace)| {
            let submitted = engine.submit_traced(graph, None, edge_ctx(wire_trace, accepted_us));
            if let Ok(handle) = &submitted {
                if handle.trace_id() != 0 {
                    trace_ids.push(handle.trace_id());
                }
            }
            submitted
        })
        .collect();
    let mut reply = Vec::new();
    reply.extend_from_slice(&(outcomes.len() as u32).to_le_bytes());
    for outcome in outcomes {
        let item = outcome.and_then(|handle| handle.wait_timeout(shared.config.reply_deadline));
        match item {
            Ok(served) => {
                let blob = encode_prediction(&Prediction {
                    class: served.class,
                    scores: served.scores,
                });
                reply.push(0);
                reply.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                reply.extend_from_slice(&blob);
            }
            Err(e) => {
                let (code, message) = serve_error_reply(&e);
                reply.push(1);
                reply.extend_from_slice(&(code as u16).to_le_bytes());
                reply.extend_from_slice(&(message.len() as u32).to_le_bytes());
                reply.extend_from_slice(message.as_bytes());
            }
        }
    }
    Ok((
        reply,
        (!trace_ids.is_empty()).then_some((engine, trace_ids)),
    ))
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}
