//! End-to-end client/server integration over real TCP sockets: wire
//! predictions match the direct predictor, health/metrics/drain round-trip,
//! and both budgets (connections, in-flight) reject with a typed `Busy`.

mod common;

use common::{engine, request_graphs, trained_bundle};
use deepmap_net::protocol::{decode_error_body, encode_frame};
use deepmap_net::{
    ClientError, ErrorCode, FrameType, NetClient, NetConfig, NetServer, RemoteHealth,
};
use deepmap_serve::Health;
use std::time::Duration;

/// The first request pays predictor warm-up; give replies plenty of room.
const PATIENT: Duration = Duration::from_secs(30);

#[test]
fn tcp_predictions_match_direct_predictor() {
    let bundle = trained_bundle();
    let mut direct = bundle.predictor().unwrap();
    let server = NetServer::start(engine(&bundle), "127.0.0.1:0", NetConfig::default()).unwrap();

    let graphs = request_graphs(12);
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(PATIENT).unwrap();

    for graph in &graphs {
        let got = client.predict(graph).unwrap();
        let want = direct.predict(graph);
        assert_eq!(got.class, want.class);
        assert_eq!(got.scores, want.scores, "wire == direct, bit-identical");
    }

    let batch = client.predict_batch(&graphs).unwrap();
    assert_eq!(batch.len(), graphs.len());
    for (item, graph) in batch.iter().zip(&graphs) {
        let got = item.as_ref().expect("healthy batch item");
        let want = direct.predict(graph);
        assert_eq!(got.class, want.class);
        assert_eq!(got.scores, want.scores);
    }

    assert_eq!(client.health().unwrap(), RemoteHealth::Ready);
    let text = client.metrics_text().unwrap();
    assert!(text.contains("deepmap_serve_conn_frames_in"), "{text}");
    assert!(text.contains("deepmap_serve_requests_completed"), "{text}");

    let m = server.metrics();
    assert_eq!(m.conn_frame_errors, 0);
    assert_eq!(m.conn_panics, 0);
    // 12 predicts + 1 batch + health + metrics, each answered once.
    assert_eq!(m.conn_frames_in, 15);
    assert_eq!(m.conn_frames_out, 15);
    assert_eq!(m.conn_active, 1);
    assert!(m.conn_bytes_in > 0 && m.conn_bytes_out > 0);

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.conns_accepted, 1);
    assert_eq!(stats.conns_closed, 1);
    assert_eq!(stats.conn_panics, 0);
    assert_eq!(stats.forced_closes, 0, "drained gracefully");
}

#[test]
fn drain_frame_quiesces_the_server() {
    let bundle = trained_bundle();
    let server = NetServer::start(engine(&bundle), "127.0.0.1:0", NetConfig::default()).unwrap();
    assert_eq!(server.health(), Health::Ready);
    assert!(!server.is_draining());

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(PATIENT).unwrap();
    client.drain().unwrap();
    assert!(server.is_draining());
    assert_eq!(
        server.health(),
        Health::Unavailable,
        "draining reports unavailable"
    );

    // The server closes the drained connection after acknowledging.
    assert!(
        client.read_reply().is_err(),
        "connection closed after drain ack"
    );

    // New work is refused: the acceptor has stopped, so a fresh connection
    // either fails outright or never gets an answer.
    match NetClient::connect(server.local_addr()) {
        Err(_) => {}
        Ok(mut late) => assert!(late.health().is_err(), "no service while draining"),
    }

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.forced_closes, 0);
    assert_eq!(stats.conn_panics, 0);
}

#[test]
fn in_flight_budget_rejects_with_busy() {
    let bundle = trained_bundle();
    let config = NetConfig {
        max_in_flight: 0, // every request overflows the budget
        ..NetConfig::default()
    };
    let server = NetServer::start(engine(&bundle), "127.0.0.1:0", config).unwrap();
    let graphs = request_graphs(3);
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(PATIENT).unwrap();

    match client.predict(&graphs[0]) {
        Err(ClientError::Server(reject)) => assert_eq!(reject.code, ErrorCode::Busy),
        other => panic!("expected a Busy rejection, got {other:?}"),
    }
    // A batch reserves all its slots up front, so it fails at frame level.
    match client.predict_batch(&graphs) {
        Err(ClientError::Server(reject)) => assert_eq!(reject.code, ErrorCode::Busy),
        other => panic!("expected a Busy rejection, got {other:?}"),
    }
    // Control-plane frames are exempt from the in-flight budget.
    assert_eq!(client.health().unwrap(), RemoteHealth::Ready);

    let m = server.metrics();
    assert_eq!(m.rejected_busy, 4, "1 predict + 3 batch items");
    // The edge rejections also show in the whole-tenancy rendering.
    let text = server.router().render_metrics();
    assert!(text.contains("deepmap_serve_rejected_busy 4"), "{text}");

    drop(client);
    server.shutdown();
}

#[test]
fn connection_budget_rejects_with_busy() {
    let bundle = trained_bundle();
    let config = NetConfig {
        max_connections: 0, // every connection is over budget
        ..NetConfig::default()
    };
    let server = NetServer::start(engine(&bundle), "127.0.0.1:0", config).unwrap();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(PATIENT).unwrap();
    // The server answers with one unsolicited Busy error frame, then closes.
    let (frame_type, body) = client.read_reply().unwrap();
    assert_eq!(frame_type, FrameType::Error);
    let (code, message) = decode_error_body(&body).unwrap();
    assert_eq!(code, ErrorCode::Busy);
    assert!(message.contains("budget"), "{message}");
    assert!(
        client.read_reply().is_err(),
        "rejected connection is closed"
    );

    let m = server.metrics();
    assert_eq!(m.conn_rejected_capacity, 1);
    assert_eq!(m.conn_accepted, 1);

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.conns_accepted, stats.conns_closed);
}

#[test]
fn oversized_frame_is_refused_before_allocation() {
    let bundle = trained_bundle();
    let config = NetConfig {
        max_frame_bytes: 64,
        ..NetConfig::default()
    };
    let server = NetServer::start(engine(&bundle), "127.0.0.1:0", config).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(PATIENT).unwrap();

    // A header declaring a body far over budget — and no body at all. The
    // server must answer from the header alone.
    let mut header = encode_frame(FrameType::Predict, &[]);
    header[6..10].copy_from_slice(&(1u32 << 20).to_le_bytes());
    client.send_raw(&header).unwrap();
    let (frame_type, body) = client.read_reply().unwrap();
    assert_eq!(frame_type, FrameType::Error);
    let (code, _) = decode_error_body(&body).unwrap();
    assert_eq!(code, ErrorCode::FrameTooLarge);
    // A framing violation desynchronises the stream: connection closed.
    assert!(client.read_reply().is_err());
    assert_eq!(server.metrics().conn_frame_errors, 1);

    drop(client);
    server.shutdown();
}

#[test]
fn reply_frame_as_request_is_answered_and_connection_survives() {
    let bundle = trained_bundle();
    let server = NetServer::start(engine(&bundle), "127.0.0.1:0", NetConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(PATIENT).unwrap();

    client
        .send_raw(&encode_frame(FrameType::HealthReply, &[0, 0, 0, 0, 0]))
        .unwrap();
    let (frame_type, body) = client.read_reply().unwrap();
    assert_eq!(frame_type, FrameType::Error);
    let (code, _) = decode_error_body(&body).unwrap();
    assert_eq!(code, ErrorCode::UnexpectedFrame);
    // The frame itself was well-formed, so the stream is still aligned and
    // the connection keeps serving.
    assert_eq!(client.health().unwrap(), RemoteHealth::Ready);

    drop(client);
    server.shutdown();
}
