//! Deterministic protocol-torture suite: seeded hostile byte streams —
//! corrupted headers, oversized and truncated frames, garbage bodies,
//! mid-frame disconnects, pipelined bursts, and slow-loris writers — are
//! thrown at a live server. Every well-formed frame must be answered, every
//! hostile one must be refused with a typed error frame (or a clean close),
//! and the server must come out healthy with zero panics and zero forced
//! closes.
//!
//! All randomness flows from one fixed-seed SplitMix64, so every run
//! replays the same byte streams.

mod common;

use common::{engine, request_graphs, trained_bundle};
use deepmap_net::protocol::{
    decode_error_body, encode_frame, encode_named_body, HEADER_LEN, MAGIC,
};
use deepmap_net::{
    ErrorCode, FrameType, NetClient, NetConfig, NetServer, RemoteHealth, WIRE_VERSION,
};
use deepmap_serve::codec::encode_graph;
use std::time::Duration;

const PATIENT: Duration = Duration::from_secs(30);
const SEED: u64 = 0xD33_94A9_0001;
const ROUNDS: usize = 3;

/// Fixed-increment SplitMix64 — deterministic, dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

/// A syntactically valid header for `frame_type` with `body_len` declared.
fn raw_header(frame_type_byte: u8, body_len: u32) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(&MAGIC);
    h.push(WIRE_VERSION);
    h.push(frame_type_byte);
    h.extend_from_slice(&body_len.to_le_bytes());
    h
}

fn connect(server: &NetServer) -> NetClient {
    let client = NetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(PATIENT).expect("read timeout");
    client
}

/// Expects one typed error frame carrying `want` as the next reply.
fn expect_error(client: &mut NetClient, want: ErrorCode, scenario: &str) {
    let (frame_type, body) = client
        .read_reply()
        .unwrap_or_else(|e| panic!("{scenario}: no reply frame: {e}"));
    assert_eq!(frame_type, FrameType::Error, "{scenario}");
    let (code, message) = decode_error_body(&body).unwrap();
    assert_eq!(code, want, "{scenario}: {message}");
}

#[test]
fn hostile_streams_never_take_the_server_down() {
    let bundle = trained_bundle();
    let mut direct = bundle.predictor().unwrap();
    let config = NetConfig {
        read_timeout: Duration::from_millis(250),
        ..NetConfig::default()
    };
    let server = NetServer::start(engine(&bundle), "127.0.0.1:0", config).unwrap();
    let graphs = request_graphs(4);
    let mut rng = SplitMix64::new(SEED);
    let mut hostile_frames = 0u64;
    let mut slow_loris = 0u64;

    // Warm the predictor so interleaved health checks stay snappy.
    let mut warm = connect(&server);
    warm.predict(&graphs[0]).unwrap();
    drop(warm);

    for round in 0..ROUNDS {
        // 1. Bad magic: one corrupted magic byte at a random position.
        let mut client = connect(&server);
        let mut header = raw_header(FrameType::Health as u8, 0);
        let pos = rng.below(4) as usize;
        header[pos] ^= 1 + rng.below(255) as u8;
        client.send_raw(&header).unwrap();
        expect_error(&mut client, ErrorCode::BadMagic, "bad magic");
        assert!(client.read_reply().is_err(), "bad header closes the stream");
        hostile_frames += 1;

        // 2. Unsupported version (3..=252 — both 1 and 2 are spoken now).
        let mut client = connect(&server);
        let mut header = raw_header(FrameType::Health as u8, 0);
        header[4] = 3 + rng.below(250) as u8;
        client.send_raw(&header).unwrap();
        expect_error(&mut client, ErrorCode::UnsupportedVersion, "bad version");
        hostile_frames += 1;

        // 3. Unknown frame type (avoiding every assigned byte).
        let mut client = connect(&server);
        let mut byte = rng.next_u64() as u8;
        while FrameType::from_u8(byte).is_some() {
            byte = byte.wrapping_add(1);
        }
        client.send_raw(&raw_header(byte, 0)).unwrap();
        expect_error(&mut client, ErrorCode::UnknownFrameType, "unknown type");
        hostile_frames += 1;

        // 4. Oversized declared body, no body sent: refused from the header
        // alone, before any allocation.
        let mut client = connect(&server);
        let declared = deepmap_net::DEFAULT_MAX_FRAME + 1 + rng.next_u64() as u32 % 1024;
        client
            .send_raw(&raw_header(FrameType::Predict as u8, declared))
            .unwrap();
        expect_error(&mut client, ErrorCode::FrameTooLarge, "oversized");
        hostile_frames += 1;

        // 5. Truncated body, then disconnect mid-frame: no reply owed; the
        // server must simply survive the EOF.
        let declared = 32 + rng.below(64) as u32;
        let sent = rng.below(declared as u64) as usize;
        let mut client = connect(&server);
        client
            .send_raw(&raw_header(FrameType::Predict as u8, declared))
            .unwrap();
        client.send_raw(&rng.bytes(sent)).unwrap();
        drop(client);

        // 6. Well-formed frame, garbage body: answered with BadBody and the
        // connection lives on — the very next frame is served normally.
        let mut client = connect(&server);
        let garbage_len = 8 + rng.below(40) as usize;
        let garbage = rng.bytes(garbage_len);
        client
            .send_raw(&encode_frame(
                FrameType::Predict,
                &encode_named_body("", &garbage),
            ))
            .unwrap();
        expect_error(&mut client, ErrorCode::BadBody, "garbage body");
        let graph = &graphs[round % graphs.len()];
        let got = client.predict(graph).unwrap();
        assert_eq!(got.class, direct.predict(graph).class, "served after error");
        hostile_frames += 1;
        drop(client);

        // 7. Pipelined burst: several frames in one write; replies must come
        // back one per frame, in order, still frame-aligned.
        let mut client = connect(&server);
        let mut burst = Vec::new();
        burst.extend_from_slice(&encode_frame(
            FrameType::Health,
            &encode_named_body("", &[]),
        ));
        burst.extend_from_slice(&encode_frame(
            FrameType::Predict,
            &encode_named_body("", &encode_graph(&graphs[0])),
        ));
        burst.extend_from_slice(&encode_frame(
            FrameType::Health,
            &encode_named_body("", &[]),
        ));
        client.send_raw(&burst).unwrap();
        let (t1, _) = client.read_reply().unwrap();
        let (t2, _) = client.read_reply().unwrap();
        let (t3, _) = client.read_reply().unwrap();
        assert_eq!(
            (t1, t2, t3),
            (
                FrameType::HealthReply,
                FrameType::PredictReply,
                FrameType::HealthReply
            ),
            "pipelined replies arrive in order"
        );
        drop(client);

        // 8. Slow loris: start a frame, stall past the read deadline, then
        // try to finish it. The server must have shed the connection.
        let mut client = connect(&server);
        let body = encode_graph(&graphs[1]);
        client
            .send_raw(&raw_header(FrameType::Predict as u8, body.len() as u32))
            .unwrap();
        std::thread::sleep(Duration::from_millis(450));
        let write = client.send_raw(&body);
        let read = client.read_reply();
        assert!(
            write.is_err() || read.is_err(),
            "stalled mid-frame connection must be shed"
        );
        slow_loris += 1;
        drop(client);

        // Interleaved liveness probe after every hostile round.
        let mut probe = connect(&server);
        assert_eq!(
            probe.health().unwrap(),
            RemoteHealth::Ready,
            "round {round}"
        );
        drop(probe);
    }

    // The server survived everything, still serves correctly…
    let mut client = connect(&server);
    for graph in &graphs {
        let got = client.predict(graph).unwrap();
        let want = direct.predict(graph);
        assert_eq!(got.class, want.class);
        assert_eq!(got.scores, want.scores);
    }
    drop(client);

    // …its books balance…
    let m = server.metrics();
    assert_eq!(m.conn_panics, 0, "no handler ever panicked");
    assert_eq!(
        m.conn_frame_errors, hostile_frames,
        "every hostile frame was answered with a typed error"
    );
    assert!(
        m.conn_timeouts >= slow_loris,
        "each slow-loris connection was shed: {} < {slow_loris}",
        m.conn_timeouts
    );
    assert!(m.conn_frames_in > 0 && m.conn_frames_out > 0);

    // …and it still shuts down fully gracefully.
    let stats = server.shutdown();
    assert_eq!(stats.conn_panics, 0);
    assert_eq!(
        stats.forced_closes, 0,
        "graceful drain, no force-closed sockets"
    );
    assert_eq!(
        stats.conns_accepted, stats.conns_closed,
        "every accepted connection was closed"
    );
}
