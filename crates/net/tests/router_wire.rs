//! Multi-tenancy over the wire: several named models behind one port,
//! `DMW1` clients riding the compatibility path, routing misses answered
//! without dropping the connection, hostile model names refused before
//! allocation, and the admin plane (list/reload) gated by configuration.

mod common;

use common::{request_graphs, trained_bundle_seeded};
use deepmap_net::protocol::{encode_frame, encode_named_body, MAX_MODEL_NAME};
use deepmap_net::{
    ClientError, ErrorCode, FrameType, NetClient, NetConfig, NetServer, RemoteHealth,
};
use deepmap_router::{ModelConfig, ModelRouter, RouterConfig};
use std::sync::Arc;
use std::time::Duration;

const PATIENT: Duration = Duration::from_secs(30);

fn two_model_server(config: NetConfig) -> NetServer {
    let router = Arc::new(ModelRouter::new(RouterConfig::default()));
    router
        .register("alpha", trained_bundle_seeded(11), ModelConfig::default())
        .unwrap();
    router
        .register("beta", trained_bundle_seeded(1234), ModelConfig::default())
        .unwrap();
    NetServer::start_router(router, "127.0.0.1:0", config).unwrap()
}

fn connect(server: &NetServer) -> NetClient {
    let client = NetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(PATIENT).unwrap();
    client
}

#[test]
fn two_models_one_port_route_by_name() {
    let server = two_model_server(NetConfig::default());
    let mut direct_alpha = trained_bundle_seeded(11).predictor().unwrap();
    let mut direct_beta = trained_bundle_seeded(1234).predictor().unwrap();
    let graphs = request_graphs(6);
    let mut client = connect(&server);

    for graph in &graphs {
        let a = client.predict_as("alpha", graph).unwrap();
        let b = client.predict_as("beta", graph).unwrap();
        assert_eq!(a.scores, direct_alpha.predict(graph).scores);
        assert_eq!(b.scores, direct_beta.predict(graph).scores);
        // The empty name rides to the default (first registered).
        let d = client.predict(graph).unwrap();
        assert_eq!(d.scores, a.scores, "default routes to alpha");
    }

    // Batches route by name too.
    let batch = client.predict_batch_as("beta", &graphs).unwrap();
    for (item, graph) in batch.iter().zip(&graphs) {
        let got = item.as_ref().expect("healthy batch item");
        assert_eq!(got.scores, direct_beta.predict(graph).scores);
    }

    // Per-model health and metrics scope to the named pool.
    assert_eq!(client.health_of("beta").unwrap(), RemoteHealth::Ready);
    let scoped = client.metrics_of("beta").unwrap();
    assert!(scoped.contains("model=\"beta\""), "{scoped}");
    assert!(!scoped.contains("model=\"alpha\""), "{scoped}");
    // The unscoped rendering enumerates every resident model.
    let all = client.metrics_text().unwrap();
    assert!(all.contains("model=\"alpha\""), "{all}");
    assert!(all.contains("model=\"beta\""), "{all}");
    assert!(all.contains("deepmap_router_requests_routed"), "{all}");

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.conn_panics, 0);
    assert_eq!(
        stats.router.pools_leaked, 0,
        "every pool joined on the way out"
    );
}

#[test]
fn dmw1_client_rides_the_compatibility_path() {
    let server = two_model_server(NetConfig::default());
    let mut direct_alpha = trained_bundle_seeded(11).predictor().unwrap();
    let graphs = request_graphs(4);

    let mut legacy = NetClient::connect_v1(server.local_addr()).unwrap();
    legacy.set_read_timeout(PATIENT).unwrap();
    assert_eq!(legacy.wire_version(), 1);

    // Nameless v1 requests land on the default model, byte-identically.
    for graph in &graphs {
        let got = legacy.predict(graph).unwrap();
        assert_eq!(got.scores, direct_alpha.predict(graph).scores);
    }
    assert_eq!(legacy.health().unwrap(), RemoteHealth::Ready);
    assert!(legacy.metrics_text().unwrap().contains("deepmap_router_"));

    // Naming a model is not expressible in the v1 dialect: the client
    // refuses locally rather than emit bytes v1 peers would misparse.
    match legacy.predict_as("beta", &graphs[0]) {
        Err(ClientError::DialectMismatch(_)) => {}
        other => panic!("expected DialectMismatch, got {other:?}"),
    }
    match legacy.list_models() {
        Err(ClientError::DialectMismatch(_)) => {}
        other => panic!("expected DialectMismatch, got {other:?}"),
    }

    // A hand-rolled v1 admin frame is refused by the server, typed.
    legacy
        .send_raw(&deepmap_net::protocol::encode_frame_v(
            1,
            FrameType::ListModels,
            &[],
        ))
        .unwrap();
    let (frame_type, body) = legacy.read_reply().unwrap();
    assert_eq!(frame_type, FrameType::Error);
    let (code, message) = deepmap_net::protocol::decode_error_body(&body).unwrap();
    assert_eq!(code, ErrorCode::UnsupportedVersion);
    assert!(message.contains("DMW2"), "{message}");
    // …and the connection still serves.
    assert_eq!(legacy.health().unwrap(), RemoteHealth::Ready);

    drop(legacy);
    server.shutdown();
}

#[test]
fn unknown_model_is_answered_without_closing_the_connection() {
    let server = two_model_server(NetConfig::default());
    let graphs = request_graphs(2);
    let mut client = connect(&server);

    match client.predict_as("nosuch", &graphs[0]) {
        Err(ClientError::Server(reject)) => {
            assert_eq!(reject.code, ErrorCode::UnknownModel);
            assert!(reject.message.contains("nosuch"), "{}", reject.message);
        }
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    match client.health_of("nosuch") {
        Err(ClientError::Server(reject)) => assert_eq!(reject.code, ErrorCode::UnknownModel),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    // A routing miss is the client's mistake, not a framing violation: the
    // stream stays aligned and the very next request is served.
    let got = client.predict_as("alpha", &graphs[1]).unwrap();
    assert_eq!(got.scores.len(), 2);
    assert_eq!(
        server.metrics().conn_frame_errors,
        0,
        "routing misses are not frame errors"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn overlong_model_name_is_refused_before_allocation() {
    let server = two_model_server(NetConfig::default());
    let mut client = connect(&server);

    // A hostile name-length field far beyond the limit, with no name bytes
    // at all: refused from the length alone.
    let mut body = Vec::new();
    body.extend_from_slice(&u16::MAX.to_le_bytes());
    client
        .send_raw(&encode_frame(FrameType::Predict, &body))
        .unwrap();
    let (frame_type, reply) = client.read_reply().unwrap();
    assert_eq!(frame_type, FrameType::Error);
    let (code, message) = deepmap_net::protocol::decode_error_body(&reply).unwrap();
    assert_eq!(code, ErrorCode::BadBody);
    assert!(message.contains("exceeds"), "{message}");
    // The frame was well-formed, so the connection lives on.
    assert_eq!(client.health().unwrap(), RemoteHealth::Ready);

    // The client refuses to build such a frame in the first place.
    let long = "x".repeat(MAX_MODEL_NAME + 1);
    match client.health_of(&long) {
        Err(ClientError::Wire(_)) => {}
        other => panic!("expected a client-side refusal, got {other:?}"),
    }

    drop(client);
    server.shutdown();
}

#[test]
fn admin_frames_are_gated_by_config() {
    // Default: admin disabled.
    let server = two_model_server(NetConfig::default());
    let mut client = connect(&server);
    match client.list_models() {
        Err(ClientError::Server(reject)) => assert_eq!(reject.code, ErrorCode::AdminDisabled),
        other => panic!("expected AdminDisabled, got {other:?}"),
    }
    match client.reload("alpha", b"DMB1 whatever") {
        Err(ClientError::Server(reject)) => assert_eq!(reject.code, ErrorCode::AdminDisabled),
        other => panic!("expected AdminDisabled, got {other:?}"),
    }
    // The refusal is not a framing violation; the connection still serves.
    assert_eq!(client.health().unwrap(), RemoteHealth::Ready);
    drop(client);
    server.shutdown();
}

#[test]
fn trace_dump_pulls_the_flight_recorder_over_the_wire() {
    let config = NetConfig {
        allow_admin: true,
        ..NetConfig::default()
    };
    let server = two_model_server(config);
    let graphs = request_graphs(4);
    let mut client = connect(&server);

    // A caller-chosen trace id rides the TR01 trailer and is adopted
    // verbatim; the other requests mint server-side ids.
    let chosen = 0xDEAD_BEEF_CAFE_F00D_u64;
    client.predict_traced("alpha", &graphs[0], chosen).unwrap();
    for graph in &graphs[1..] {
        client.predict_as("beta", graph).unwrap();
    }

    let dump = client.trace_dump().unwrap();
    let chosen_hex = format!("{chosen:016x}");
    assert!(dump.contains(&chosen_hex), "{dump}");
    // The registration probes also leave records; only wire-served
    // requests carry the edge's reply_written stamp.
    let mut wire_served = 0;
    for line in dump.lines() {
        let record = deepmap_obs::json::Json::parse(line).expect("every line parses");
        let model = record.get("model").and_then(|m| m.as_str()).unwrap();
        assert!(model == "alpha" || model == "beta", "{line}");
        assert_eq!(
            record.get("outcome").and_then(|o| o.as_str()),
            Some("completed"),
            "{line}"
        );
        let stages = record.get("stages").unwrap();
        if stages.get("reply_written").is_none() {
            continue; // a registration probe, not a wire request
        }
        wire_served += 1;
        // Stage stamps are monotone in taxonomy order, and the edge
        // stamped both ends of the request's life.
        let mut last = 0;
        for stage in ["accepted", "enqueued", "infer_end", "reply_written"] {
            let at = stages
                .get(stage)
                .and_then(|s| s.as_u64())
                .unwrap_or_else(|| panic!("missing stage {stage} in {line}"));
            assert!(at >= last, "stage {stage} went backwards in {line}");
            last = at;
        }
    }
    assert_eq!(wire_served, graphs.len(), "one record per request:\n{dump}");

    // The scoped dump carries only the named model's recorder.
    let scoped = client.trace_dump_of("beta").unwrap();
    assert!(!scoped.contains(&chosen_hex), "{scoped}");
    for line in scoped.lines() {
        let record = deepmap_obs::json::Json::parse(line).unwrap();
        assert_eq!(record.get("model").and_then(|m| m.as_str()), Some("beta"));
    }

    drop(client);
    server.shutdown();
}

#[test]
fn trace_dump_is_admin_gated_and_v2_only() {
    // Admin off: the frame is refused, typed, without dropping the
    // connection.
    let server = two_model_server(NetConfig::default());
    let mut client = connect(&server);
    match client.trace_dump() {
        Err(ClientError::Server(reject)) => assert_eq!(reject.code, ErrorCode::AdminDisabled),
        other => panic!("expected AdminDisabled, got {other:?}"),
    }
    assert_eq!(client.health().unwrap(), RemoteHealth::Ready);

    // The v1 dialect cannot express the call; the client refuses locally
    // and a hand-rolled v1 frame is refused by the server.
    let mut legacy = NetClient::connect_v1(server.local_addr()).unwrap();
    legacy.set_read_timeout(PATIENT).unwrap();
    match legacy.trace_dump() {
        Err(ClientError::DialectMismatch(_)) => {}
        other => panic!("expected DialectMismatch, got {other:?}"),
    }
    legacy
        .send_raw(&deepmap_net::protocol::encode_frame_v(
            1,
            FrameType::TraceDump,
            &[],
        ))
        .unwrap();
    let (frame_type, body) = legacy.read_reply().unwrap();
    assert_eq!(frame_type, FrameType::Error);
    let (code, _) = deepmap_net::protocol::decode_error_body(&body).unwrap();
    assert_eq!(code, ErrorCode::UnsupportedVersion);

    drop(client);
    drop(legacy);
    server.shutdown();
}

#[test]
fn hot_reload_over_the_wire_swaps_the_model() {
    let config = NetConfig {
        allow_admin: true,
        ..NetConfig::default()
    };
    let server = two_model_server(config);
    let graphs = request_graphs(4);
    let mut admin = connect(&server);
    let mut observer = connect(&server);

    // The starting roster: two models, alpha the default, both at v1.
    let models = admin.list_models().unwrap();
    assert_eq!(models.len(), 2);
    assert_eq!(models[0].name, "alpha");
    assert!(models[0].is_default);
    assert_eq!(models[0].version, 1);
    assert_eq!(models[1].name, "beta");
    assert_eq!(models[1].n_classes, 2);

    // Swap alpha's weights for the beta bundle's, over the wire.
    let replacement = trained_bundle_seeded(1234);
    let mut direct_replacement = replacement.predictor().unwrap();
    let version = admin.reload("alpha", &replacement.to_bytes()).unwrap();
    assert_eq!(version, 2);

    // A sibling connection sees the new weights under the old name…
    for graph in &graphs {
        let got = observer.predict_as("alpha", graph).unwrap();
        assert_eq!(got.scores, direct_replacement.predict(graph).scores);
    }
    // …and the roster records the bump.
    let models = admin.list_models().unwrap();
    assert_eq!(models[0].version, 2);
    assert_eq!(models[1].version, 1, "beta untouched");

    // A corrupt bundle image is a typed refusal, resident pool untouched.
    match admin.reload("alpha", b"not a bundle") {
        Err(ClientError::Server(reject)) => {
            assert_eq!(reject.code, ErrorCode::BadBody);
            assert!(reject.message.contains("bundle"), "{}", reject.message);
        }
        other => panic!("expected BadBody, got {other:?}"),
    }
    // A reload of an absent model is a routing miss, connection kept.
    match admin.reload("ghost", &replacement.to_bytes()) {
        Err(ClientError::Server(reject)) => assert_eq!(reject.code, ErrorCode::UnknownModel),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    assert!(observer.predict_as("alpha", &graphs[0]).is_ok());

    drop(admin);
    drop(observer);
    let stats = server.shutdown();
    assert_eq!(stats.router.reloads, 1);
    assert_eq!(stats.router.pools_joined, stats.router.pools_retired);
    assert_eq!(stats.router.pools_leaked, 0);
}

#[test]
fn reload_racing_a_drain_completes_atomically_or_fails_typed() {
    // A hot reload in flight while the server drains must resolve one of
    // three ways — a completed swap (Ok with the bumped version), a typed
    // refusal frame, or a closed connection — and in every case the
    // registry must come out whole: no half-built pool resident, none
    // leaked. Run the race a few times to let either side win.
    for round in 0..3u64 {
        let config = NetConfig {
            allow_admin: true,
            drain_deadline: Duration::from_secs(10),
            ..NetConfig::default()
        };
        let server = two_model_server(config);
        let addr = server.local_addr();
        let image = trained_bundle_seeded(77 + round).to_bytes();

        let barrier = Arc::new(std::sync::Barrier::new(3));
        let mut workers = Vec::new();
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let image = image.clone();
            workers.push(std::thread::spawn(move || {
                let admin = NetClient::connect(addr);
                let mut admin = match admin {
                    Ok(admin) => admin,
                    Err(e) => return Err(e),
                };
                admin.set_read_timeout(PATIENT).unwrap();
                barrier.wait();
                admin.reload("alpha", &image)
            }));
        }
        barrier.wait();
        // Vary who wins the race: drain immediately, or after the reloads
        // have had a moment to reach the router.
        if round > 0 {
            std::thread::sleep(Duration::from_millis(2 * round));
        }
        server.drain();

        let mut completed = 0usize;
        for worker in workers {
            match worker.join().unwrap() {
                Ok(version) => {
                    assert!(version >= 2, "a completed reload bumps the version");
                    completed += 1;
                }
                Err(ClientError::Server(reject)) => {
                    // Typed refusal: the edge turned the request away.
                    assert!(
                        matches!(reject.code, ErrorCode::Draining | ErrorCode::Busy),
                        "unexpected refusal {:?}: {}",
                        reject.code,
                        reject.message
                    );
                }
                // The drain closed the connection under the request (or
                // before it connected) — the reload never half-applied.
                Err(ClientError::Io(_)) => {}
                other => panic!("unexpected reload outcome {other:?}"),
            }
        }

        // The registry is whole regardless of who won: alpha resolves and
        // answers in-process (the edge is draining, the router is not).
        let graph = request_graphs(1).remove(0);
        server
            .router()
            .predict("alpha", graph)
            .expect("alpha serves after the race");

        let stats = server.shutdown();
        assert!(
            stats.router.reloads as usize >= completed,
            "every client-visible Ok was a real swap ({} reloads, {completed} acks)",
            stats.router.reloads
        );
        assert_eq!(stats.router.pools_joined, stats.router.pools_retired);
        assert_eq!(
            stats.router.pools_leaked, 0,
            "round {round}: no half-built pool leaked"
        );
    }
}

#[test]
fn overlong_name_body_with_padding_never_reaches_the_router() {
    // Variant of the hostile-length case: the body actually carries the
    // declared bytes, so a naive server would allocate and route a 64 KiB
    // name. The limit check must fire on the declared length first.
    let server = two_model_server(NetConfig::default());
    let mut client = connect(&server);
    let body = encode_named_body("", &[]);
    assert_eq!(body, vec![0, 0], "empty name encodes as a zero length");

    let mut hostile = Vec::new();
    hostile.extend_from_slice(&((MAX_MODEL_NAME + 1) as u16).to_le_bytes());
    hostile.extend(std::iter::repeat_n(b'x', MAX_MODEL_NAME + 1));
    client
        .send_raw(&encode_frame(FrameType::Health, &hostile))
        .unwrap();
    let (frame_type, reply) = client.read_reply().unwrap();
    assert_eq!(frame_type, FrameType::Error);
    let (code, _) = deepmap_net::protocol::decode_error_body(&reply).unwrap();
    assert_eq!(code, ErrorCode::BadBody);
    assert_eq!(
        server.router().list_models().len(),
        2,
        "the hostile name never perturbed the registry"
    );

    drop(client);
    server.shutdown();
}
