//! Panic isolation under fault injection: a poison-pill frame (reserved
//! type byte 0x66, armed only with `--features fault-inject`) detonates its
//! connection handler. Exactly one connection dies; the acceptor, every
//! other connection, and the engine keep serving, and shutdown still joins
//! every thread.

#![cfg(feature = "fault-inject")]

mod common;

use common::{engine, request_graphs, trained_bundle};
use deepmap_net::protocol::MAGIC;
use deepmap_net::{NetClient, NetConfig, NetServer, RemoteHealth, WIRE_VERSION};
use std::time::{Duration, Instant};

/// Silences the planned handler panics so test output stays readable;
/// anything not marked `fault-inject:` still prints.
fn muffle_planned_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let planned = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("fault-inject:"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("fault-inject:"))
            })
            .unwrap_or(false);
        if !planned {
            default_hook(info);
        }
    }));
}

#[test]
fn poison_pill_takes_one_connection_not_the_server() {
    muffle_planned_panics();
    let bundle = trained_bundle();
    let mut direct = bundle.predictor().unwrap();
    let server = NetServer::start(engine(&bundle), "127.0.0.1:0", NetConfig::default()).unwrap();
    let graphs = request_graphs(2);

    // A healthy bystander connection, open across the detonation.
    let mut bystander = NetClient::connect(server.local_addr()).unwrap();
    bystander.set_read_timeout(Duration::from_secs(30)).unwrap();
    bystander.predict(&graphs[0]).unwrap();

    // The victim sends the poison pill: a well-formed header whose type
    // byte is the reserved 0x66.
    let mut victim = NetClient::connect(server.local_addr()).unwrap();
    victim.set_read_timeout(Duration::from_secs(5)).unwrap();
    let mut pill = Vec::new();
    pill.extend_from_slice(&MAGIC);
    pill.push(WIRE_VERSION);
    pill.push(0x66);
    pill.extend_from_slice(&0u32.to_le_bytes());
    victim.send_raw(&pill).unwrap();
    assert!(
        victim.read_reply().is_err(),
        "the poisoned handler dies without replying"
    );

    // The panic is caught, counted, and scoped to that one connection.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().conn_panics == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.metrics().conn_panics, 1);

    // The bystander never noticed…
    let got = bystander.predict(&graphs[1]).unwrap();
    assert_eq!(got.class, direct.predict(&graphs[1]).class);
    // …and the acceptor still takes fresh connections.
    let mut fresh = NetClient::connect(server.local_addr()).unwrap();
    fresh.set_read_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(fresh.health().unwrap(), RemoteHealth::Ready);
    let got = fresh.predict(&graphs[0]).unwrap();
    assert_eq!(got.class, direct.predict(&graphs[0]).class);

    drop(bystander);
    drop(victim);
    drop(fresh);
    let stats = server.shutdown();
    assert_eq!(stats.conn_panics, 1, "exactly the planned panic");
    assert_eq!(
        stats.conns_accepted, stats.conns_closed,
        "the poisoned connection was still accounted and closed"
    );
    assert_eq!(stats.forced_closes, 0);
}
