//! Dataset generation: one simulator per Table-1 benchmark.

use crate::spec::{spec_by_name, DatasetSpec, Family, SPECS};
use deepmap_graph::generators::{
    caveman_graph, complete_graph, ego_network, erdos_renyi, planted_partition,
    random_tree_with_extra_edges, rewire, GeneratorConfig,
};
use deepmap_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// A generated classification dataset.
#[derive(Debug, Clone)]
pub struct GraphDataset {
    /// Benchmark name (Table 1).
    pub name: String,
    /// The graphs.
    pub graphs: Vec<Graph>,
    /// Class index per graph (`0..n_classes`).
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl GraphDataset {
    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` when no graphs were generated.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Class-balanced subsample of at most `max_graphs` graphs (round-robin
    /// over classes in generation order, so it is deterministic). Returns
    /// `self` unchanged when already small enough.
    pub fn subsample(&self, max_graphs: usize) -> GraphDataset {
        if self.len() <= max_graphs {
            return self.clone();
        }
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            per_class[l].push(i);
        }
        let mut chosen = Vec::with_capacity(max_graphs);
        let mut round = 0;
        while chosen.len() < max_graphs {
            let mut added = false;
            for class in &per_class {
                if let Some(&idx) = class.get(round) {
                    if chosen.len() < max_graphs {
                        chosen.push(idx);
                        added = true;
                    }
                }
            }
            if !added {
                break;
            }
            round += 1;
        }
        chosen.sort_unstable();
        GraphDataset {
            name: self.name.clone(),
            graphs: chosen.iter().map(|&i| self.graphs[i].clone()).collect(),
            labels: chosen.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }
}

/// All benchmark names in Table-1 order.
pub fn all_dataset_names() -> Vec<&'static str> {
    SPECS.iter().map(|s| s.name).collect()
}

/// Generates the named benchmark at `scale` (fraction of the paper's size;
/// at least one graph per class is always produced). Returns `None` for
/// unknown names.
pub fn generate(name: &str, scale: f64, seed: u64) -> Option<GraphDataset> {
    spec_by_name(name).map(|spec| generate_spec(spec, scale, seed))
}

/// Generates a dataset from an explicit spec.
pub fn generate_spec(spec: &DatasetSpec, scale: f64, seed: u64) -> GraphDataset {
    let mut rng = StdRng::seed_from_u64(seed ^ fx_name_hash(spec.name));
    let total = ((spec.size as f64 * scale).round() as usize).max(spec.n_classes);
    let per_class = total.div_ceil(spec.n_classes);

    // SYNTHIE's seeds are shared across classes (paper §5.2: generated from
    // two Erdős–Rényi graphs).
    let synthie_seeds = if spec.family == Family::SynthieLike {
        let n = spec.avg_nodes.round() as usize;
        let p = edge_probability(n, spec.avg_edges);
        Some((
            erdos_renyi(&GeneratorConfig::new(n).edge_probability(p), &mut rng),
            erdos_renyi(&GeneratorConfig::new(n).edge_probability(p), &mut rng),
        ))
    } else {
        None
    };

    let mut graphs = Vec::with_capacity(per_class * spec.n_classes);
    let mut labels = Vec::with_capacity(per_class * spec.n_classes);
    for class in 0..spec.n_classes {
        for _ in 0..per_class {
            let g = generate_one(spec, class, synthie_seeds.as_ref(), &mut rng);
            graphs.push(finalize_labels(g, spec, class, &mut rng));
            labels.push(class);
        }
    }
    GraphDataset {
        name: spec.name.to_string(),
        graphs,
        labels,
        n_classes: spec.n_classes,
    }
}

/// Deterministic per-name salt so different benchmarks generated with the
/// same seed do not share randomness.
fn fx_name_hash(name: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = deepmap_graph::hash::FxHasher::default();
    name.hash(&mut h);
    h.finish()
}

/// Draws a vertex count around the spec average (±40%).
fn draw_size(avg: f64, rng: &mut StdRng) -> usize {
    let lo = (avg * 0.6).max(3.0);
    let hi = (avg * 1.4).max(lo + 1.0);
    rng.gen_range(lo..hi).round() as usize
}

/// Edge probability hitting the target edge count on an `n`-vertex graph.
fn edge_probability(n: usize, target_edges: f64) -> f64 {
    let pairs = (n * n.saturating_sub(1)) as f64 / 2.0;
    if pairs <= 0.0 {
        0.0
    } else {
        (target_edges / pairs).clamp(0.005, 0.95)
    }
}

fn generate_one(
    spec: &DatasetSpec,
    class: usize,
    synthie_seeds: Option<&(Graph, Graph)>,
    rng: &mut StdRng,
) -> Graph {
    match spec.family {
        Family::SynthieLike => {
            let (seed_a, seed_b) = synthie_seeds.expect("seeds prepared for SYNTHIE");
            // Classes {0,1} perturb seed A, {2,3} seed B; odd classes rewire
            // harder, which is the class signal.
            let base = if class < 2 { seed_a } else { seed_b };
            let intensity = if class.is_multiple_of(2) { 0.05 } else { 0.30 };
            rewire(base, intensity, rng)
        }
        Family::Community => {
            let n = draw_size(spec.avg_nodes, rng);
            let blocks = 2 + class; // class changes the community count
            let p = edge_probability(n, spec.avg_edges);
            // Split density: most mass inside blocks.
            let p_in = (p * blocks as f64 * 1.6).clamp(0.05, 0.95);
            let p_out = (p * 0.35).clamp(0.002, 0.5);
            planted_partition(n, blocks, p_in, p_out, spec.n_labels, rng)
        }
        Family::DenseMolecular => {
            // Near-complete graphs (the `_MD` datasets are complete graphs
            // over atoms). The class signal is *where* contacts are missing,
            // not how many: both classes delete the same number of edges,
            // but class 0 deletes uniformly at random while higher classes
            // concentrate deletions inside a small vertex subset (a "hole").
            // Global statistics (density, degree means) match across
            // classes; only substructure-aware methods see the hole.
            let n = draw_size(spec.avg_nodes, rng).max(4);
            let pairs = n * (n - 1) / 2;
            let target = spec.avg_edges.min(pairs as f64);
            let to_delete = (pairs as f64 - target).round().max(0.0) as usize;
            let full = complete_graph(n, spec.n_labels, rng);
            let mut edges: Vec<(u32, u32)> = full.edges().collect();
            if class == 0 || to_delete == 0 {
                // Uniform deletions.
                for _ in 0..to_delete.min(edges.len()) {
                    let i = rng.gen_range(0..edges.len());
                    edges.swap_remove(i);
                }
            } else {
                // Hole deletions: prefer edges inside a random subset S
                // sized so that S's internal pairs roughly cover the budget.
                let hole = (((2 * to_delete) as f64).sqrt().ceil() as usize + 1).min(n);
                let mut members: Vec<u32> = (0..n as u32).collect();
                members.shuffle(rng);
                members.truncate(hole);
                let in_hole = |v: u32| members.contains(&v);
                let mut deleted = 0;
                edges.retain(|&(u, v)| {
                    if deleted < to_delete && in_hole(u) && in_hole(v) {
                        deleted += 1;
                        false
                    } else {
                        true
                    }
                });
                // Top up with uniform deletions if the hole was too small.
                while deleted < to_delete && !edges.is_empty() {
                    let i = rng.gen_range(0..edges.len());
                    edges.swap_remove(i);
                    deleted += 1;
                }
            }
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge_unchecked(u, v);
            }
            b.set_labels(full.labels()).expect("same size");
            b.build().expect("valid")
        }
        Family::SparseMolecular => {
            // Tree skeleton plus ring closures. Both classes close the same
            // expected number of rings (so edge counts and degree statistics
            // match); the class signal is the *ring geometry* — class 0
            // closes triangles (bond to a vertex two hops away), class 1
            // closes larger rings (three-to-four hops). Only methods that
            // see local substructure (subtrees, paths, graphlets) separate
            // them; a fraction of closures is swapped as label noise.
            let n = draw_size(spec.avg_nodes, rng).max(4);
            let extra = (spec.avg_edges - (n as f64 - 1.0)).max(1.0).round() as usize;
            let tree = random_tree_with_extra_edges(n, 0, spec.n_labels, rng);
            let mut b = GraphBuilder::new(n);
            for (u, v) in tree.edges() {
                b.add_edge_unchecked(u, v);
            }
            for _ in 0..extra {
                // 20% label noise: use the other class's ring length.
                let effective_class = if rng.gen_bool(0.2) {
                    1 - class.min(1)
                } else {
                    class.min(1)
                };
                let hops = if effective_class == 0 {
                    2
                } else {
                    3 + rng.gen_range(0..2)
                };
                // Non-backtracking walk of `hops` steps from a random start;
                // connecting the endpoints closes a ring of length hops + 1.
                let start = rng.gen_range(0..n) as u32;
                let mut current = start;
                let mut previous = u32::MAX;
                for _ in 0..hops {
                    let neigh = tree.neighbors(current);
                    if neigh.is_empty() {
                        break;
                    }
                    let forward: Vec<u32> =
                        neigh.iter().copied().filter(|&w| w != previous).collect();
                    let pool: &[u32] = if forward.is_empty() { neigh } else { &forward };
                    previous = current;
                    current = pool[rng.gen_range(0..pool.len())];
                }
                if current != start {
                    b.add_edge_unchecked(start, current);
                }
            }
            b.set_labels(tree.labels()).expect("same size");
            b.build().expect("valid")
        }
        Family::ProteinLike => {
            // Blobs of secondary structure: caveman cliques whose size is
            // the class signal.
            let clique = (3 + class).min(8);
            let n = draw_size(spec.avg_nodes, rng).max(clique * 2);
            let cliques = (n / clique).max(2);
            caveman_graph(cliques, clique, spec.n_labels, rng)
        }
        Family::EgoNetwork => {
            let n = draw_size(spec.avg_nodes, rng).max(3);
            let pairs = ((n - 1) * n.saturating_sub(2)) as f64 / 2.0;
            let base = if pairs > 0.0 {
                ((spec.avg_edges - (n as f64 - 1.0)) / pairs).clamp(0.02, 0.95)
            } else {
                0.2
            };
            // Class signal: alter-alter density.
            let p_alter = (base * (0.5 + 0.5 * class as f64)).clamp(0.02, 0.95);
            ego_network(n, p_alter, spec.n_labels, rng)
        }
    }
}

/// Applies the paper's labeling conventions: unlabeled datasets use vertex
/// degrees as labels (§5.2); labeled datasets draw labels from a shared
/// structural rule (degree bucket + noise) so the label *marginal* is
/// class-independent — any class-conditional label skew would be a linear
/// hop-0 signal that trivialises every method, which real chemical data
/// does not have. Class information therefore lives only in the structure.
fn finalize_labels(g: Graph, spec: &DatasetSpec, _class: usize, rng: &mut StdRng) -> Graph {
    if spec.n_labels == 0 {
        let labels: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        return g.with_labels(labels).expect("same count");
    }
    // Structure-correlated labels: the label is the degree bucket most of
    // the time (as atom types correlate with valence), otherwise uniform.
    let alphabet = spec.n_labels;
    let labels: Vec<u32> = g
        .vertices()
        .map(|v| {
            if rng.gen_bool(0.7) {
                (g.degree(v) as u32 % alphabet) + 1
            } else {
                rng.gen_range(0..alphabet) + 1
            }
        })
        .collect();
    g.with_labels(labels).expect("same count")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_generate() {
        for name in all_dataset_names() {
            let ds = generate(name, 0.02, 1).expect("known name");
            assert!(!ds.is_empty(), "{name} empty");
            assert_eq!(ds.graphs.len(), ds.labels.len());
            let max_label = ds.labels.iter().copied().max().unwrap();
            assert_eq!(max_label + 1, ds.n_classes, "{name} class coverage");
        }
    }

    #[test]
    fn subsample_is_balanced_and_deterministic() {
        let ds = generate("ENZYMES", 0.2, 1).unwrap();
        let sub = ds.subsample(30);
        assert_eq!(sub.len(), 30);
        for class in 0..6 {
            let count = sub.labels.iter().filter(|&&l| l == class).count();
            assert_eq!(count, 5, "class {class}");
        }
        assert_eq!(ds.subsample(30).graphs, sub.graphs);
        // No-op when small enough.
        assert_eq!(ds.subsample(10_000).len(), ds.len());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(generate("NOT_A_DATASET", 1.0, 1).is_none());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate("PTC_MR", 0.1, 42).unwrap();
        let b = generate("PTC_MR", 0.1, 42).unwrap();
        assert_eq!(a.graphs, b.graphs);
        let c = generate("PTC_MR", 0.1, 43).unwrap();
        assert!(a.graphs != c.graphs);
    }

    #[test]
    fn scale_controls_size() {
        let small = generate("NCI1", 0.01, 1).unwrap();
        let bigger = generate("NCI1", 0.05, 1).unwrap();
        assert!(bigger.len() > small.len());
        // At least one graph per class even at tiny scales.
        let tiny = generate("ENZYMES", 0.0001, 1).unwrap();
        assert!(tiny.len() >= 6);
    }

    #[test]
    fn unlabeled_datasets_get_degree_labels() {
        let ds = generate("IMDB-BINARY", 0.02, 3).unwrap();
        for g in &ds.graphs {
            for v in g.vertices() {
                assert_eq!(g.label(v), g.degree(v) as u32);
            }
        }
    }

    #[test]
    fn labeled_datasets_respect_alphabet() {
        let ds = generate("DHFR", 0.05, 3).unwrap();
        for g in &ds.graphs {
            assert!(g.labels().iter().all(|&l| (1..=9).contains(&l)));
        }
    }

    #[test]
    fn synthie_graph_sizes_match_seeds() {
        let ds = generate("SYNTHIE", 0.05, 5).unwrap();
        // All SYNTHIE graphs share the seed size.
        let n0 = ds.graphs[0].n_vertices();
        assert!(ds.graphs.iter().all(|g| g.n_vertices() == n0));
        assert_eq!(ds.n_classes, 4);
    }

    #[test]
    fn avg_nodes_roughly_match_spec() {
        for name in ["PTC_MR", "PROTEINS", "IMDB-MULTI"] {
            let spec = spec_by_name(name).unwrap();
            let ds = generate(name, 0.2, 7).unwrap();
            let avg: f64 =
                ds.graphs.iter().map(|g| g.n_vertices() as f64).sum::<f64>() / ds.len() as f64;
            assert!(
                (avg - spec.avg_nodes).abs() < spec.avg_nodes * 0.4,
                "{name}: avg {avg} vs spec {}",
                spec.avg_nodes
            );
        }
    }

    #[test]
    fn classes_are_structurally_different() {
        // Ego networks: higher class → denser alters.
        let ds = generate("IMDB-BINARY", 0.1, 9).unwrap();
        let mean_edges = |class: usize| {
            let (sum, count) = ds
                .graphs
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| l == class)
                .fold((0usize, 0usize), |(s, c), (g, _)| (s + g.n_edges(), c + 1));
            sum as f64 / count as f64
        };
        assert!(mean_edges(1) > mean_edges(0));
    }
}
