//! Generator specifications for the simulated benchmarks.

/// The structural family a simulated dataset's classes are drawn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// SYNTHIE's own recipe (paper §5.2): classes derive from two
    /// Erdős–Rényi seed graphs with edge probability 0.2; each class applies
    /// a different rewiring intensity to one of the seeds.
    SynthieLike,
    /// Brain-network style: planted-partition community graphs whose
    /// intra/inter densities differ per class (KKI).
    Community,
    /// Dense chemical `_MD` style: near-complete graphs whose class signal
    /// is the density of a planted sparse sub-pattern (BZR_MD, COX2_MD).
    DenseMolecular,
    /// Sparse molecule style: random trees plus class-dependent ring counts
    /// (DHFR, NCI1, PTC_*).
    SparseMolecular,
    /// Protein style: caveman-like secondary-structure blobs with
    /// class-dependent block sizes (ENZYMES, PROTEINS).
    ProteinLike,
    /// Social ego-network style: ego networks with class-dependent alter
    /// density (IMDB-*, COLLAB).
    EgoNetwork,
}

/// Everything needed to synthesise one benchmark.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Paper name (Table 1).
    pub name: &'static str,
    /// Number of graphs at scale 1.0.
    pub size: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Target average vertex count.
    pub avg_nodes: f64,
    /// Target average edge count (drives the family's density knobs).
    pub avg_edges: f64,
    /// Vertex-label alphabet size; 0 = unlabeled (degrees are used as
    /// labels downstream, as in the paper §5.2).
    pub n_labels: u32,
    /// Structural family.
    pub family: Family,
}

/// Table 1, transcribed. `avg_nodes`/`avg_edges`/`n_labels` come straight
/// from the paper; the family assignment encodes what kind of data each
/// benchmark is (paper §5.2 descriptions).
pub const SPECS: &[DatasetSpec] = &[
    DatasetSpec {
        name: "SYNTHIE",
        size: 400,
        n_classes: 4,
        avg_nodes: 95.0,
        avg_edges: 172.93,
        n_labels: 0,
        family: Family::SynthieLike,
    },
    DatasetSpec {
        name: "KKI",
        size: 83,
        n_classes: 2,
        avg_nodes: 26.96,
        avg_edges: 48.42,
        n_labels: 190,
        family: Family::Community,
    },
    DatasetSpec {
        name: "BZR_MD",
        size: 306,
        n_classes: 2,
        avg_nodes: 21.30,
        avg_edges: 225.06,
        n_labels: 8,
        family: Family::DenseMolecular,
    },
    DatasetSpec {
        name: "COX2_MD",
        size: 303,
        n_classes: 2,
        avg_nodes: 26.28,
        avg_edges: 335.12,
        n_labels: 7,
        family: Family::DenseMolecular,
    },
    DatasetSpec {
        name: "DHFR",
        size: 467,
        n_classes: 2,
        avg_nodes: 42.43,
        avg_edges: 44.54,
        n_labels: 9,
        family: Family::SparseMolecular,
    },
    DatasetSpec {
        name: "NCI1",
        size: 4110,
        n_classes: 2,
        avg_nodes: 17.93,
        avg_edges: 19.79,
        n_labels: 37,
        family: Family::SparseMolecular,
    },
    DatasetSpec {
        name: "PTC_MM",
        size: 336,
        n_classes: 2,
        avg_nodes: 13.97,
        avg_edges: 14.32,
        n_labels: 20,
        family: Family::SparseMolecular,
    },
    DatasetSpec {
        name: "PTC_MR",
        size: 344,
        n_classes: 2,
        avg_nodes: 14.29,
        avg_edges: 14.69,
        n_labels: 18,
        family: Family::SparseMolecular,
    },
    DatasetSpec {
        name: "PTC_FM",
        size: 349,
        n_classes: 2,
        avg_nodes: 14.11,
        avg_edges: 14.48,
        n_labels: 18,
        family: Family::SparseMolecular,
    },
    DatasetSpec {
        name: "PTC_FR",
        size: 351,
        n_classes: 2,
        avg_nodes: 14.56,
        avg_edges: 15.00,
        n_labels: 19,
        family: Family::SparseMolecular,
    },
    DatasetSpec {
        name: "ENZYMES",
        size: 600,
        n_classes: 6,
        avg_nodes: 32.63,
        avg_edges: 62.14,
        n_labels: 3,
        family: Family::ProteinLike,
    },
    DatasetSpec {
        name: "PROTEINS",
        size: 1113,
        n_classes: 2,
        avg_nodes: 39.06,
        avg_edges: 72.82,
        n_labels: 3,
        family: Family::ProteinLike,
    },
    DatasetSpec {
        name: "IMDB-BINARY",
        size: 1000,
        n_classes: 2,
        avg_nodes: 19.77,
        avg_edges: 96.53,
        n_labels: 0,
        family: Family::EgoNetwork,
    },
    DatasetSpec {
        name: "IMDB-MULTI",
        size: 1500,
        n_classes: 3,
        avg_nodes: 13.00,
        avg_edges: 65.94,
        n_labels: 0,
        family: Family::EgoNetwork,
    },
    DatasetSpec {
        name: "COLLAB",
        size: 5000,
        n_classes: 3,
        avg_nodes: 74.49,
        avg_edges: 2457.78,
        n_labels: 0,
        family: Family::EgoNetwork,
    },
];

/// Looks a spec up by (case-insensitive) name.
pub fn spec_by_name(name: &str) -> Option<&'static DatasetSpec> {
    SPECS.iter().find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_benchmarks() {
        assert_eq!(SPECS.len(), 15);
    }

    #[test]
    fn lookup_case_insensitive() {
        assert!(spec_by_name("synthie").is_some());
        assert!(spec_by_name("IMDB-binary").is_some());
        assert!(spec_by_name("nope").is_none());
    }

    #[test]
    fn table1_spot_checks() {
        let nci1 = spec_by_name("NCI1").unwrap();
        assert_eq!(nci1.size, 4110);
        assert_eq!(nci1.n_labels, 37);
        let collab = spec_by_name("COLLAB").unwrap();
        assert_eq!(collab.n_classes, 3);
        assert!((collab.avg_edges - 2457.78).abs() < 1e-9);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = SPECS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }
}
