//! Dataset statistics (reproduces the paper's Table 1 columns).

use crate::registry::GraphDataset;
use deepmap_graph::FxHashSet;

/// Statistics of one generated dataset, matching Table 1's columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Benchmark name.
    pub name: String,
    /// Number of graphs.
    pub size: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Average vertex count.
    pub avg_nodes: f64,
    /// Average edge count.
    pub avg_edges: f64,
    /// Number of distinct vertex labels across the dataset.
    pub n_labels: usize,
    /// Largest vertex count (the paper's `w`).
    pub max_nodes: usize,
}

/// Computes Table-1 statistics for a generated dataset.
pub fn compute(dataset: &GraphDataset) -> DatasetStats {
    let size = dataset.len();
    let (mut node_sum, mut edge_sum, mut max_nodes) = (0usize, 0usize, 0usize);
    let mut labels: FxHashSet<u32> = FxHashSet::default();
    for g in &dataset.graphs {
        node_sum += g.n_vertices();
        edge_sum += g.n_edges();
        max_nodes = max_nodes.max(g.n_vertices());
        labels.extend(g.labels().iter().copied());
    }
    let denom = size.max(1) as f64;
    DatasetStats {
        name: dataset.name.clone(),
        size,
        n_classes: dataset.n_classes,
        avg_nodes: node_sum as f64 / denom,
        avg_edges: edge_sum as f64 / denom,
        n_labels: labels.len(),
        max_nodes,
    }
}

impl DatasetStats {
    /// One row of a Table-1-style report.
    pub fn table_row(&self) -> String {
        format!(
            "| {:<12} | {:>5} | {:>2} | {:>7.2} | {:>8.2} | {:>4} |",
            self.name, self.size, self.n_classes, self.avg_nodes, self.avg_edges, self.n_labels
        )
    }

    /// Table-1-style header.
    pub fn table_header() -> String {
        format!(
            "| {:<12} | {:>5} | {:>2} | {:>7} | {:>8} | {:>4} |\n|{}|",
            "Dataset",
            "Size",
            "C#",
            "AvgN",
            "AvgE",
            "L#",
            "-".repeat(54)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::generate;

    #[test]
    fn stats_computed_on_generated_data() {
        let ds = generate("PTC_FM", 0.1, 1).unwrap();
        let stats = compute(&ds);
        assert_eq!(stats.size, ds.len());
        assert_eq!(stats.n_classes, 2);
        assert!(stats.avg_nodes > 3.0);
        assert!(stats.max_nodes >= stats.avg_nodes as usize);
        assert!(stats.n_labels >= 1);
    }

    #[test]
    fn table_row_formats() {
        let ds = generate("KKI", 0.2, 1).unwrap();
        let stats = compute(&ds);
        let row = stats.table_row();
        assert!(row.contains("KKI"));
        assert!(row.starts_with('|') && row.ends_with('|'));
        assert!(!DatasetStats::table_header().is_empty());
    }

    #[test]
    fn empty_dataset_safe() {
        let ds = GraphDataset {
            name: "EMPTY".into(),
            graphs: vec![],
            labels: vec![],
            n_classes: 0,
        };
        let stats = compute(&ds);
        assert_eq!(stats.size, 0);
        assert_eq!(stats.avg_nodes, 0.0);
    }
}
