//! Synthetic benchmark dataset simulators for the DeepMap reproduction.
//!
//! The paper evaluates on 15 TU-repository benchmarks (Table 1). Those
//! datasets cannot be downloaded in this offline environment, so every
//! benchmark is *simulated*: a class-structured random-graph generator is
//! configured per dataset so that graph count, class count, average
//! vertex/edge counts, and label-alphabet size match Table 1, while class
//! separability comes from class-conditional structural motifs (edge
//! density, community structure, hub patterns, ring counts). See DESIGN.md
//! §1 for why this substitution preserves the experiments' comparative
//! shape.
//!
//! [`registry`] exposes every benchmark by its paper name; [`spec`] holds
//! the generator configurations; [`stats`] reproduces Table 1 from the
//! generated data; [`tu_format`] reads and writes the TU repository's
//! plain-text dataset format, so the *real* benchmarks can be loaded when
//! available and the simulations can be exported for other tools.

#![deny(missing_docs)]

pub mod registry;
pub mod spec;
pub mod stats;
pub mod tu_format;

pub use registry::{all_dataset_names, generate, generate_spec, GraphDataset};
pub use spec::DatasetSpec;
pub use stats::DatasetStats;
