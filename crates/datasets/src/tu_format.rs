//! TU-repository text format I/O.
//!
//! The paper's benchmarks are distributed in the TU Dortmund collection's
//! plain-text format: a dataset `DS` is a directory of aligned files
//!
//! - `DS_A.txt` — one `u, v` edge per line, vertices numbered 1..N over the
//!   *whole* dataset (all graphs concatenated);
//! - `DS_graph_indicator.txt` — line `i`: which graph vertex `i` belongs to
//!   (1-based);
//! - `DS_graph_labels.txt` — one class label per graph;
//! - `DS_node_labels.txt` — one vertex label per vertex (optional).
//!
//! This module reads and writes that format, so the simulated benchmarks
//! can be exported for other tools and the *real* TU datasets can be
//! loaded into this library when they are available.

use crate::registry::GraphDataset;
use deepmap_graph::{GraphBuilder, GraphError};
use std::fmt;
use std::path::Path;

/// Errors from TU-format parsing.
#[derive(Debug)]
pub enum TuError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// File stem that failed (e.g. `DS_A.txt`).
        file: String,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Cross-file inconsistency (counts disagree, dangling ids…).
    Inconsistent(
        /// Description of the inconsistency.
        String,
    ),
    /// Graph construction failed.
    Graph(GraphError),
}

impl fmt::Display for TuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuError::Io(e) => write!(f, "io error: {e}"),
            TuError::Parse {
                file,
                line,
                message,
            } => {
                write!(f, "{file}:{line}: {message}")
            }
            TuError::Inconsistent(msg) => write!(f, "inconsistent dataset: {msg}"),
            TuError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for TuError {}

impl From<std::io::Error> for TuError {
    fn from(e: std::io::Error) -> Self {
        TuError::Io(e)
    }
}

impl From<GraphError> for TuError {
    fn from(e: GraphError) -> Self {
        TuError::Graph(e)
    }
}

fn parse_numbers<T: std::str::FromStr>(content: &str, file: &str) -> Result<Vec<Vec<T>>, TuError> {
    let mut rows = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let row: Result<Vec<T>, _> = trimmed
            .split(',')
            .map(|tok| tok.trim().parse::<T>())
            .collect();
        match row {
            Ok(values) => rows.push(values),
            Err(_) => {
                return Err(TuError::Parse {
                    file: file.to_string(),
                    line: i + 1,
                    message: format!("cannot parse {trimmed:?}"),
                })
            }
        }
    }
    Ok(rows)
}

/// Loads a TU-format dataset from `dir` with dataset stem `name`
/// (`dir/name_A.txt`, …). Missing `_node_labels.txt` defaults all labels
/// to 0 (callers apply the degree-label convention as needed). Graph class
/// labels are remapped to dense `0..n_classes` preserving numeric order.
pub fn load(dir: &Path, name: &str) -> Result<GraphDataset, TuError> {
    let read = |suffix: &str| -> Result<String, TuError> {
        Ok(std::fs::read_to_string(
            dir.join(format!("{name}{suffix}")),
        )?)
    };

    let indicator: Vec<usize> =
        parse_numbers::<usize>(&read("_graph_indicator.txt")?, "_graph_indicator.txt")?
            .into_iter()
            .map(|row| row[0])
            .collect();
    let graph_labels_raw: Vec<i64> =
        parse_numbers::<i64>(&read("_graph_labels.txt")?, "_graph_labels.txt")?
            .into_iter()
            .map(|row| row[0])
            .collect();
    let edges: Vec<(usize, usize)> = parse_numbers::<usize>(&read("_A.txt")?, "_A.txt")?
        .into_iter()
        .map(|row| {
            if row.len() >= 2 {
                Ok((row[0], row[1]))
            } else {
                Err(TuError::Inconsistent("edge line with < 2 columns".into()))
            }
        })
        .collect::<Result<_, _>>()?;
    let node_labels: Option<Vec<u32>> =
        match std::fs::read_to_string(dir.join(format!("{name}_node_labels.txt"))) {
            Ok(content) => Some(
                parse_numbers::<u32>(&content, "_node_labels.txt")?
                    .into_iter()
                    .map(|row| row[0])
                    .collect(),
            ),
            Err(_) => None,
        };

    let n_graphs = graph_labels_raw.len();
    let n_vertices = indicator.len();
    if let Some(labels) = &node_labels {
        if labels.len() != n_vertices {
            return Err(TuError::Inconsistent(format!(
                "{} node labels for {} vertices",
                labels.len(),
                n_vertices
            )));
        }
    }

    // Per-graph vertex ranges; TU vertices are 1-based and grouped.
    let mut graph_of = vec![0usize; n_vertices];
    let mut sizes = vec![0usize; n_graphs];
    for (v, &g) in indicator.iter().enumerate() {
        if g == 0 || g > n_graphs {
            return Err(TuError::Inconsistent(format!(
                "vertex {} assigned to graph {} of {}",
                v + 1,
                g,
                n_graphs
            )));
        }
        graph_of[v] = g - 1;
        sizes[g - 1] += 1;
    }
    let mut local_id = vec![0u32; n_vertices];
    let mut counters = vec![0u32; n_graphs];
    for v in 0..n_vertices {
        local_id[v] = counters[graph_of[v]];
        counters[graph_of[v]] += 1;
    }

    let mut builders: Vec<GraphBuilder> = sizes.iter().map(|&s| GraphBuilder::new(s)).collect();
    if let Some(labels) = &node_labels {
        for v in 0..n_vertices {
            builders[graph_of[v]].set_label(local_id[v], labels[v])?;
        }
    }
    for (u, v) in edges {
        if u == 0 || v == 0 || u > n_vertices || v > n_vertices {
            return Err(TuError::Inconsistent(format!(
                "edge ({u}, {v}) out of range"
            )));
        }
        let (u, v) = (u - 1, v - 1);
        if graph_of[u] != graph_of[v] {
            return Err(TuError::Inconsistent(format!(
                "edge ({}, {}) crosses graphs",
                u + 1,
                v + 1
            )));
        }
        if local_id[u] != local_id[v] {
            builders[graph_of[u]].add_edge(local_id[u], local_id[v])?;
        }
    }

    // Dense class labels.
    let mut distinct: Vec<i64> = graph_labels_raw.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let labels: Vec<usize> = graph_labels_raw
        .iter()
        .map(|l| distinct.binary_search(l).expect("label present"))
        .collect();

    Ok(GraphDataset {
        name: name.to_string(),
        graphs: builders
            .into_iter()
            .map(|b| b.build())
            .collect::<Result<_, _>>()?,
        labels,
        n_classes: distinct.len(),
    })
}

/// Writes `dataset` to `dir` in TU format (creates the directory).
pub fn save(dataset: &GraphDataset, dir: &Path) -> Result<(), TuError> {
    std::fs::create_dir_all(dir)?;
    let name = &dataset.name;
    let mut a = String::new();
    let mut indicator = String::new();
    let mut node_labels = String::new();
    let mut graph_labels = String::new();
    let mut offset = 0usize; // global 1-based vertex id offset
    for (gi, graph) in dataset.graphs.iter().enumerate() {
        graph_labels.push_str(&format!("{}\n", dataset.labels[gi]));
        for v in graph.vertices() {
            indicator.push_str(&format!("{}\n", gi + 1));
            node_labels.push_str(&format!("{}\n", graph.label(v)));
        }
        for (u, v) in graph.edges() {
            // TU lists both directions.
            a.push_str(&format!(
                "{}, {}\n{}, {}\n",
                offset + u as usize + 1,
                offset + v as usize + 1,
                offset + v as usize + 1,
                offset + u as usize + 1
            ));
        }
        offset += graph.n_vertices();
    }
    std::fs::write(dir.join(format!("{name}_A.txt")), a)?;
    std::fs::write(dir.join(format!("{name}_graph_indicator.txt")), indicator)?;
    std::fs::write(dir.join(format!("{name}_node_labels.txt")), node_labels)?;
    std::fs::write(dir.join(format!("{name}_graph_labels.txt")), graph_labels)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::generate;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("deepmap_tu_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_dataset() {
        let ds = generate("PTC_MM", 0.05, 3).unwrap();
        let dir = tmp_dir("roundtrip");
        save(&ds, &dir).unwrap();
        let loaded = load(&dir, &ds.name).unwrap();
        assert_eq!(loaded.len(), ds.len());
        assert_eq!(loaded.n_classes, ds.n_classes);
        assert_eq!(loaded.labels, ds.labels);
        for (a, b) in ds.graphs.iter().zip(&loaded.graphs) {
            assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_without_node_labels_defaults_zero() {
        let ds = generate("KKI", 0.1, 1).unwrap();
        let dir = tmp_dir("nolabels");
        save(&ds, &dir).unwrap();
        std::fs::remove_file(dir.join(format!("{}_node_labels.txt", ds.name))).unwrap();
        let loaded = load(&dir, &ds.name).unwrap();
        for g in &loaded.graphs {
            assert!(g.labels().iter().all(|&l| l == 0));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn class_labels_densified() {
        // Hand-written dataset with class labels {-1, 1}.
        let dir = tmp_dir("dense");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("X_A.txt"), "1, 2\n2, 1\n3, 4\n4, 3\n").unwrap();
        std::fs::write(dir.join("X_graph_indicator.txt"), "1\n1\n2\n2\n").unwrap();
        std::fs::write(dir.join("X_graph_labels.txt"), "-1\n1\n").unwrap();
        let ds = load(&dir, "X").unwrap();
        assert_eq!(ds.labels, vec![0, 1]);
        assert_eq!(ds.n_classes, 2);
        assert_eq!(ds.graphs[0].n_edges(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_cross_graph_edges() {
        let dir = tmp_dir("cross");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("X_A.txt"), "1, 3\n").unwrap();
        std::fs::write(dir.join("X_graph_indicator.txt"), "1\n1\n2\n").unwrap();
        std::fs::write(dir.join("X_graph_labels.txt"), "0\n1\n").unwrap();
        let err = load(&dir, "X").unwrap_err();
        assert!(matches!(err, TuError::Inconsistent(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_numbers() {
        let dir = tmp_dir("badnum");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("X_A.txt"), "1, banana\n").unwrap();
        std::fs::write(dir.join("X_graph_indicator.txt"), "1\n1\n").unwrap();
        std::fs::write(dir.join("X_graph_labels.txt"), "0\n").unwrap();
        let err = load(&dir, "X").unwrap_err();
        assert!(matches!(err, TuError::Parse { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Saves a small generated benchmark and hands back its directory, so
    /// corruption tests start from a known-good on-disk dataset.
    fn saved_dataset(tag: &str) -> (GraphDataset, std::path::PathBuf) {
        let ds = generate("PTC_MM", 0.05, 3).unwrap();
        let dir = tmp_dir(tag);
        save(&ds, &dir).unwrap();
        (ds, dir)
    }

    fn append(path: &std::path::Path, extra: &str) {
        let mut text = std::fs::read_to_string(path).unwrap();
        text.push_str(extra);
        std::fs::write(path, text).unwrap();
    }

    #[test]
    fn corrupt_edge_line_is_parse_error_with_location() {
        let (ds, dir) = saved_dataset("corrupt_edge");
        let a_path = dir.join(format!("{}_A.txt", ds.name));
        let good_lines = std::fs::read_to_string(&a_path).unwrap().lines().count();
        append(&a_path, "7, !!\n");
        let err = load(&dir, &ds.name).unwrap_err();
        match err {
            TuError::Parse { file, line, .. } => {
                assert_eq!(file, "_A.txt");
                assert_eq!(line, good_lines + 1);
            }
            other => panic!("expected Parse, got {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dangling_vertex_id_is_inconsistent() {
        let (ds, dir) = saved_dataset("dangling");
        let n_vertices: usize = ds.graphs.iter().map(|g| g.n_vertices()).sum();
        // An edge pointing one past the last vertex of the whole dataset.
        append(
            &dir.join(format!("{}_A.txt", ds.name)),
            &format!("1, {}\n", n_vertices + 1),
        );
        let err = load(&dir, &ds.name).unwrap_err();
        assert!(matches!(err, TuError::Inconsistent(_)), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn indicator_label_count_mismatch_is_inconsistent() {
        let (ds, dir) = saved_dataset("count_mismatch");
        // Drop the last graph label: the indicator still references the
        // now-unlabelled graph, so the counts disagree.
        let labels_path = dir.join(format!("{}_graph_labels.txt", ds.name));
        let text = std::fs::read_to_string(&labels_path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        std::fs::write(&labels_path, format!("{}\n", lines.join("\n"))).unwrap();
        let err = load(&dir, &ds.name).unwrap_err();
        assert!(matches!(err, TuError::Inconsistent(_)), "{err}");
        assert!(err.to_string().contains("assigned to graph"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn node_label_count_mismatch_is_inconsistent() {
        let (ds, dir) = saved_dataset("node_labels");
        append(&dir.join(format!("{}_node_labels.txt", ds.name)), "0\n");
        let err = load(&dir, &ds.name).unwrap_err();
        assert!(matches!(err, TuError::Inconsistent(_)), "{err}");
        assert!(err.to_string().contains("node labels"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_edge_line_is_inconsistent() {
        let (ds, dir) = saved_dataset("one_column");
        append(&dir.join(format!("{}_A.txt", ds.name)), "5\n");
        let err = load(&dir, &ds.name).unwrap_err();
        assert!(matches!(err, TuError::Inconsistent(_)), "{err}");
        assert!(err.to_string().contains("< 2 columns"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = tmp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = load(&dir, "NOPE").unwrap_err();
        assert!(matches!(err, TuError::Io(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
