//! Property-based tests over the benchmark simulators.

use deepmap_datasets::spec::SPECS;
use deepmap_datasets::{generate, generate_spec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every registered benchmark generates, is class-complete, respects
    /// its label alphabet, and contains only simple graphs.
    #[test]
    fn all_benchmarks_well_formed(spec_idx in 0usize..15, seed in 0u64..50) {
        let spec = &SPECS[spec_idx];
        let ds = generate_spec(spec, 0.03, seed);
        prop_assert!(!ds.is_empty());
        prop_assert_eq!(ds.graphs.len(), ds.labels.len());
        // All classes present.
        for class in 0..spec.n_classes {
            prop_assert!(ds.labels.contains(&class), "{} class {}", spec.name, class);
        }
        for g in &ds.graphs {
            prop_assert!(g.n_vertices() >= 1, "{}", spec.name);
            // Labeled datasets stay within the alphabet; unlabeled use
            // degrees.
            if spec.n_labels > 0 {
                prop_assert!(g.labels().iter().all(|&l| (1..=spec.n_labels).contains(&l)));
            } else {
                for v in g.vertices() {
                    prop_assert_eq!(g.label(v), g.degree(v) as u32);
                }
            }
        }
    }

    /// Generation is a pure function of (name, scale, seed).
    #[test]
    fn generation_deterministic(spec_idx in 0usize..15, seed in 0u64..50) {
        let name = SPECS[spec_idx].name;
        let a = generate(name, 0.02, seed).unwrap();
        let b = generate(name, 0.02, seed).unwrap();
        prop_assert_eq!(a.graphs, b.graphs);
        prop_assert_eq!(a.labels, b.labels);
    }

    /// Subsampling keeps class balance within one graph per class and
    /// never invents graphs.
    #[test]
    fn subsample_balance(spec_idx in 0usize..15, cap in 4usize..40) {
        let spec = &SPECS[spec_idx];
        let ds = generate_spec(spec, 0.05, 1);
        let sub = ds.subsample(cap);
        prop_assert!(sub.len() <= cap.max(ds.len().min(cap)));
        prop_assert!(sub.len() <= ds.len());
        if ds.len() >= cap && cap >= spec.n_classes {
            let mut counts = vec![0usize; spec.n_classes];
            for &l in &sub.labels {
                counts[l] += 1;
            }
            let max = counts.iter().max().unwrap();
            let min = counts.iter().min().unwrap();
            prop_assert!(max - min <= 1, "{:?}", counts);
        }
        // Every subsampled graph exists in the original.
        for g in &sub.graphs {
            prop_assert!(ds.graphs.contains(g));
        }
    }

    /// Different seeds produce different datasets (overwhelmingly likely
    /// for any non-degenerate generator).
    #[test]
    fn seeds_vary_output(spec_idx in 0usize..15) {
        let name = SPECS[spec_idx].name;
        let a = generate(name, 0.05, 1).unwrap();
        let b = generate(name, 0.05, 2).unwrap();
        prop_assert!(a.graphs != b.graphs, "{name} ignored the seed");
    }
}
