//! One-vs-rest multiclass SVM and the paper's `C` selection protocol.

use crate::smo::{BinarySvm, SmoConfig};
use deepmap_kernels::KernelMatrix;

/// One-vs-rest ensemble of binary SVMs.
#[derive(Debug, Clone)]
pub struct MulticlassSvm {
    /// One machine per class, in class-index order.
    machines: Vec<BinarySvm>,
}

impl MulticlassSvm {
    /// Trains one binary machine per class on the rows `train_indices` of
    /// `kernel` with integer class labels `y` (`0..n_classes`).
    ///
    /// # Panics
    /// Panics when lengths mismatch or `n_classes == 0`.
    pub fn train(
        kernel: &KernelMatrix,
        train_indices: &[usize],
        y: &[usize],
        n_classes: usize,
        config: &SmoConfig,
    ) -> MulticlassSvm {
        assert_eq!(train_indices.len(), y.len(), "index/label length mismatch");
        assert!(n_classes >= 1, "need at least one class");
        let machines = (0..n_classes)
            .map(|class| {
                let labels: Vec<f64> = y
                    .iter()
                    .map(|&yi| if yi == class { 1.0 } else { -1.0 })
                    .collect();
                BinarySvm::train(kernel, train_indices, &labels, config)
            })
            .collect();
        MulticlassSvm { machines }
    }

    /// Predicted class of dataset row `dataset_index`: argmax of the
    /// per-class decision values.
    pub fn predict(&self, kernel: &KernelMatrix, dataset_index: usize) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (class, machine) in self.machines.iter().enumerate() {
            let score = machine.decision(kernel, dataset_index);
            if score > best_score {
                best_score = score;
                best = class;
            }
        }
        best
    }

    /// Accuracy over the dataset rows `test_indices` with true labels `y`.
    pub fn accuracy(&self, kernel: &KernelMatrix, test_indices: &[usize], y: &[usize]) -> f64 {
        assert_eq!(test_indices.len(), y.len());
        if test_indices.is_empty() {
            return 0.0;
        }
        let correct = test_indices
            .iter()
            .zip(y)
            .filter(|(&i, &yi)| self.predict(kernel, i) == yi)
            .count();
        correct as f64 / test_indices.len() as f64
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.machines.len()
    }
}

/// The paper's per-fold protocol (§5.1): `C` "is independently tuned from
/// {1, 10, 10², 10³} using the training data from that fold". We split the
/// fold's training rows 80/20, pick the `C` with the best inner validation
/// accuracy (ties → smaller `C`), and retrain on the full fold.
pub fn select_c_and_train(
    kernel: &KernelMatrix,
    train_indices: &[usize],
    y: &[usize],
    n_classes: usize,
    c_grid: &[f64],
) -> (MulticlassSvm, f64) {
    assert!(!c_grid.is_empty(), "empty C grid");
    let n = train_indices.len();
    let split = (n * 4) / 5;
    let (inner_train_idx, inner_val_idx) = train_indices.split_at(split.max(1).min(n));
    let (inner_train_y, inner_val_y) = y.split_at(split.max(1).min(n));

    let mut best_c = c_grid[0];
    let mut best_acc = -1.0;
    if !inner_val_idx.is_empty() {
        for &c in c_grid {
            let config = SmoConfig {
                c,
                ..Default::default()
            };
            let model =
                MulticlassSvm::train(kernel, inner_train_idx, inner_train_y, n_classes, &config);
            let acc = model.accuracy(kernel, inner_val_idx, inner_val_y);
            if acc > best_acc {
                best_acc = acc;
                best_c = c;
            }
        }
    }
    let config = SmoConfig {
        c: best_c,
        ..Default::default()
    };
    (
        MulticlassSvm::train(kernel, train_indices, y, n_classes, &config),
        best_c,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_kernels::feature_map::SparseVec;

    /// Three clusters at triangle corners in 2-D, so each class is linearly
    /// separable from the union of the others (one-vs-rest needs this; a
    /// middle cluster on a line would not be).
    fn three_cluster_kernel() -> (KernelMatrix, Vec<usize>) {
        let points: Vec<(f32, f32, usize)> = vec![
            (0.0, 0.0, 0),
            (0.5, 0.0, 0),
            (0.0, 0.5, 0),
            (10.0, 0.0, 1),
            (10.5, 0.0, 1),
            (10.0, 0.5, 1),
            (0.0, 10.0, 2),
            (0.5, 10.0, 2),
            (0.0, 10.5, 2),
        ];
        let vecs: Vec<SparseVec> = points
            .iter()
            .map(|&(x, yv, _)| SparseVec::from_pairs(vec![(0, x), (1, yv), (2, 1.0)]))
            .collect();
        let y = points.iter().map(|&(_, _, c)| c).collect();
        (KernelMatrix::linear(&vecs), y)
    }

    #[test]
    fn three_class_training_accuracy() {
        let (k, y) = three_cluster_kernel();
        let idx: Vec<usize> = (0..y.len()).collect();
        let model = MulticlassSvm::train(&k, &idx, &y, 3, &SmoConfig::default());
        assert_eq!(model.n_classes(), 3);
        assert!((model.accuracy(&k, &idx, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn held_out_prediction() {
        let (k, y) = three_cluster_kernel();
        // Leave out one point per class.
        let train: Vec<usize> = vec![0, 1, 3, 4, 6, 7];
        let ty: Vec<usize> = train.iter().map(|&i| y[i]).collect();
        let model = MulticlassSvm::train(&k, &train, &ty, 3, &SmoConfig::default());
        assert_eq!(model.predict(&k, 2), 0);
        assert_eq!(model.predict(&k, 5), 1);
        assert_eq!(model.predict(&k, 8), 2);
    }

    #[test]
    fn c_selection_returns_grid_member() {
        let (k, y) = three_cluster_kernel();
        let idx: Vec<usize> = (0..y.len()).collect();
        let (model, c) = select_c_and_train(&k, &idx, &y, 3, &crate::PAPER_C_GRID);
        assert!(crate::PAPER_C_GRID.contains(&c));
        assert!((model.accuracy(&k, &idx, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_test_set_accuracy_zero() {
        let (k, y) = three_cluster_kernel();
        let idx: Vec<usize> = (0..y.len()).collect();
        let model = MulticlassSvm::train(&k, &idx, &y, 3, &SmoConfig::default());
        assert_eq!(model.accuracy(&k, &[], &[]), 0.0);
    }

    #[test]
    fn binary_special_case_matches_two_machines() {
        let (k, y) = three_cluster_kernel();
        // Restrict to classes 0 and 1.
        let idx: Vec<usize> = (0..6).collect();
        let yy: Vec<usize> = y[..6].to_vec();
        let model = MulticlassSvm::train(&k, &idx, &yy, 2, &SmoConfig::default());
        assert!((model.accuracy(&k, &idx, &yy) - 1.0).abs() < 1e-12);
    }
}
