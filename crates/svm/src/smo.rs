//! Sequential Minimal Optimization for the binary soft-margin dual.
//!
//! Solves `max Σαᵢ − ½ΣΣ αᵢαⱼyᵢyⱼK(i,j)` s.t. `0 ≤ αᵢ ≤ C`, `Σαᵢyᵢ = 0`
//! over a *precomputed* kernel, in the style of Platt's SMO as used by
//! LIBSVM: repeatedly pick a maximally-KKT-violating pair, solve the
//! two-variable subproblem analytically, and update the error cache.

use deepmap_kernels::KernelMatrix;

/// SMO solver options.
#[derive(Debug, Clone, Copy)]
pub struct SmoConfig {
    /// Soft-margin penalty `C`.
    pub c: f64,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Maximum full passes without progress before giving up.
    pub max_passes: usize,
    /// Hard cap on pair optimisations (defensive; rarely reached).
    pub max_iterations: usize,
}

impl Default for SmoConfig {
    fn default() -> Self {
        SmoConfig {
            c: 1.0,
            tolerance: 1e-3,
            max_passes: 10,
            max_iterations: 100_000,
        }
    }
}

/// A trained binary SVM over a subset of a dataset's kernel matrix.
///
/// `train_indices[i]` maps local index `i` back to the dataset row of the
/// kernel matrix, so prediction on held-out graphs only needs the same
/// matrix.
#[derive(Debug, Clone)]
pub struct BinarySvm {
    /// Dataset rows the machine was trained on.
    pub train_indices: Vec<usize>,
    /// Dual coefficients `αᵢ` (aligned with `train_indices`).
    pub alphas: Vec<f64>,
    /// Training labels in `{-1, +1}` (aligned with `train_indices`).
    pub labels: Vec<f64>,
    /// Bias term `b`.
    pub bias: f64,
}

impl BinarySvm {
    /// Trains on the rows `train_indices` of `kernel` with labels `y` in
    /// `{-1.0, +1.0}`.
    ///
    /// # Panics
    /// Panics when lengths mismatch or labels are not ±1.
    pub fn train(
        kernel: &KernelMatrix,
        train_indices: &[usize],
        y: &[f64],
        config: &SmoConfig,
    ) -> BinarySvm {
        assert_eq!(train_indices.len(), y.len(), "index/label length mismatch");
        assert!(
            y.iter().all(|&l| l == 1.0 || l == -1.0),
            "labels must be -1 or +1"
        );
        let n = train_indices.len();
        let k = |i: usize, j: usize| kernel.get(train_indices[i], train_indices[j]);

        let mut alphas = vec![0.0f64; n];
        let mut bias = 0.0f64;
        // Error cache: E_i = f(x_i) - y_i; with all alphas 0, f = 0.
        let mut errors: Vec<f64> = y.iter().map(|&yi| -yi).collect();

        let mut passes = 0usize;
        let mut iterations = 0usize;

        // Attempts the analytic two-variable update on (i, j); returns true
        // when progress was made. Mutates alphas/bias/errors through raw
        // indices to keep the borrow checker happy inside the closure-free
        // loop below.
        macro_rules! try_pair {
            ($i:expr, $j:expr) => {{
                let (i, j) = ($i, $j);
                let ei = errors[i];
                let (ai_old, aj_old) = (alphas[i], alphas[j]);
                let (yi, yj) = (y[i], y[j]);
                // Bounds on α_j.
                let (lo, hi) = if yi != yj {
                    (
                        (aj_old - ai_old).max(0.0),
                        (config.c + aj_old - ai_old).min(config.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - config.c).max(0.0),
                        (ai_old + aj_old).min(config.c),
                    )
                };
                let eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
                if hi - lo < 1e-12 || eta >= -1e-12 {
                    false
                } else {
                    let mut aj_new = aj_old - yj * (ei - errors[j]) / eta;
                    aj_new = aj_new.clamp(lo, hi);
                    if (aj_new - aj_old).abs() < 1e-7 {
                        false
                    } else {
                        let ai_new = ai_old + yi * yj * (aj_old - aj_new);
                        // Bias update (Platt's rules).
                        let b1 = bias
                            - ei
                            - yi * (ai_new - ai_old) * k(i, i)
                            - yj * (aj_new - aj_old) * k(i, j);
                        let b2 = bias
                            - errors[j]
                            - yi * (ai_new - ai_old) * k(i, j)
                            - yj * (aj_new - aj_old) * k(j, j);
                        let new_bias = if ai_new > 0.0 && ai_new < config.c {
                            b1
                        } else if aj_new > 0.0 && aj_new < config.c {
                            b2
                        } else {
                            (b1 + b2) / 2.0
                        };
                        let bias_delta = new_bias - bias;
                        bias = new_bias;
                        let (di, dj) = (yi * (ai_new - ai_old), yj * (aj_new - aj_old));
                        alphas[i] = ai_new;
                        alphas[j] = aj_new;
                        // Incremental error-cache update: E tracks f(x) - y
                        // with f including the bias, so the bias delta
                        // shifts every entry.
                        for (t, e) in errors.iter_mut().enumerate() {
                            *e += di * k(i, t) + dj * k(j, t) + bias_delta;
                        }
                        true
                    }
                }
            }};
        }

        while passes < config.max_passes && iterations < config.max_iterations {
            let mut changed = 0usize;
            for i in 0..n {
                let ei = errors[i];
                let ri = ei * y[i];
                // KKT check: violated if (r < -tol and α < C) or (r > tol and α > 0).
                if !((ri < -config.tolerance && alphas[i] < config.c)
                    || (ri > config.tolerance && alphas[i] > 0.0))
                {
                    continue;
                }
                iterations += 1;
                // Platt's hierarchy of second choices: (1) the j with the
                // largest |E_i - E_j| gap, (2) every other j in order. The
                // fallback matters — the max-gap pair can be degenerate
                // (η ≈ 0 for duplicate points) while another pair makes
                // progress.
                let mut best_j = usize::MAX;
                let mut best_gap = -1.0;
                for (cand, &e_cand) in errors.iter().enumerate() {
                    if cand == i {
                        continue;
                    }
                    let gap = (ei - e_cand).abs();
                    if gap > best_gap {
                        best_gap = gap;
                        best_j = cand;
                    }
                }
                let mut made_progress = false;
                if best_j != usize::MAX && try_pair!(i, best_j) {
                    made_progress = true;
                } else {
                    for j in 0..n {
                        if j != i && j != best_j && try_pair!(i, j) {
                            made_progress = true;
                            break;
                        }
                    }
                }
                if made_progress {
                    changed += 1;
                }
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        BinarySvm {
            train_indices: train_indices.to_vec(),
            alphas,
            labels: y.to_vec(),
            bias,
        }
    }

    /// Decision value `f(x) = Σ αᵢ yᵢ K(trainᵢ, x) + b` for dataset row
    /// `dataset_index`.
    pub fn decision(&self, kernel: &KernelMatrix, dataset_index: usize) -> f64 {
        let mut f = self.bias;
        for ((&ti, &a), &yi) in self
            .train_indices
            .iter()
            .zip(&self.alphas)
            .zip(&self.labels)
        {
            if a > 0.0 {
                f += a * yi * kernel.get(ti, dataset_index);
            }
        }
        f
    }

    /// Predicted label in `{-1, +1}` for dataset row `dataset_index`.
    pub fn predict(&self, kernel: &KernelMatrix, dataset_index: usize) -> f64 {
        if self.decision(kernel, dataset_index) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of support vectors (`αᵢ > 0`).
    pub fn n_support_vectors(&self) -> usize {
        self.alphas.iter().filter(|&&a| a > 1e-12).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_kernels::feature_map::SparseVec;

    /// Linearly separable 1-D points embedded as a linear kernel:
    /// class -1 at {0, 1, 2}, class +1 at {10, 11, 12}.
    fn separable_kernel() -> (KernelMatrix, Vec<f64>) {
        let xs = [0.0f32, 1.0, 2.0, 10.0, 11.0, 12.0];
        let vecs: Vec<SparseVec> = xs
            .iter()
            // offset feature keeps the kernel PD and non-degenerate at x=0
            .map(|&x| SparseVec::from_pairs(vec![(0, x), (1, 1.0)]))
            .collect();
        let k = KernelMatrix::linear(&vecs);
        let y = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        (k, y)
    }

    #[test]
    fn separates_linear_data() {
        let (k, y) = separable_kernel();
        let idx: Vec<usize> = (0..6).collect();
        let model = BinarySvm::train(&k, &idx, &y, &SmoConfig::default());
        for (i, &yi) in y.iter().enumerate() {
            assert_eq!(model.predict(&k, i), yi, "point {i}");
        }
        assert!(model.n_support_vectors() >= 2);
    }

    #[test]
    fn generalises_to_held_out_points() {
        let (k, y) = separable_kernel();
        // Train on 4 points, test on {2, 5}.
        let train = [0usize, 1, 3, 4];
        let ty: Vec<f64> = train.iter().map(|&i| y[i]).collect();
        let model = BinarySvm::train(&k, &train, &ty, &SmoConfig::default());
        assert_eq!(model.predict(&k, 2), -1.0);
        assert_eq!(model.predict(&k, 5), 1.0);
    }

    #[test]
    fn dual_constraint_holds() {
        let (k, y) = separable_kernel();
        let idx: Vec<usize> = (0..6).collect();
        let model = BinarySvm::train(&k, &idx, &y, &SmoConfig::default());
        let balance: f64 = model
            .alphas
            .iter()
            .zip(&model.labels)
            .map(|(&a, &yi)| a * yi)
            .sum();
        assert!(balance.abs() < 1e-6, "Σ αᵢyᵢ = {balance}");
        let c = SmoConfig::default().c;
        assert!(model
            .alphas
            .iter()
            .all(|&a| (-1e-9..=c + 1e-9).contains(&a)));
    }

    #[test]
    fn noisy_data_respects_box_constraint() {
        // One mislabeled point; small C caps its influence.
        let (k, mut y) = separable_kernel();
        y[2] = 1.0; // mislabel
        let idx: Vec<usize> = (0..6).collect();
        let config = SmoConfig {
            c: 0.1,
            ..Default::default()
        };
        let model = BinarySvm::train(&k, &idx, &y, &config);
        assert!(model.alphas.iter().all(|&a| a <= 0.1 + 1e-9));
    }

    #[test]
    #[should_panic(expected = "labels must be -1 or +1")]
    fn bad_labels_panic() {
        let (k, _) = separable_kernel();
        BinarySvm::train(&k, &[0, 1], &[0.0, 1.0], &SmoConfig::default());
    }

    #[test]
    fn degenerate_single_class_is_stable() {
        let (k, _) = separable_kernel();
        let idx = [0usize, 1];
        let model = BinarySvm::train(&k, &idx, &[1.0, 1.0], &SmoConfig::default());
        // Nothing to separate: all-zero alphas, decision sign is constant.
        assert_eq!(model.n_support_vectors(), 0);
        assert_eq!(model.predict(&k, 3), model.predict(&k, 0));
    }
}
