//! C-SVM on precomputed kernel matrices.
//!
//! The paper classifies graph-kernel Gram matrices with "a binary C-SVM
//! \[LIBSVM\]" (§5.1), tuning `C ∈ {1, 10, 10², 10³}` per fold. This crate is
//! the LIBSVM stand-in: [`smo`] implements the Sequential Minimal
//! Optimization algorithm for the dual soft-margin problem with a
//! precomputed kernel, and [`multiclass`] lifts the binary machine to
//! multi-class problems with a one-vs-rest ensemble and provides the
//! paper's per-fold `C` grid selection.

#![deny(missing_docs)]

pub mod multiclass;
pub mod smo;

pub use multiclass::{select_c_and_train, MulticlassSvm};
pub use smo::{BinarySvm, SmoConfig};

/// The paper's `C` grid: `{1, 10, 10², 10³}` (§5.1).
pub const PAPER_C_GRID: [f64; 4] = [1.0, 10.0, 100.0, 1000.0];
