//! Regression test extracted from a proptest failure.

use deepmap_kernels::KernelMatrix;
use deepmap_svm::{BinarySvm, SmoConfig};

#[test]
fn proptest_minimal_case_converges() {
    let data = vec![
        1.6202698843076746,
        1.0,
        1.0,
        3.0467304300655655,
        1.9512121048077802,
        3.24207021783792,
        1.0,
        1.0,
        1.0,
        1.0,
        1.0,
        1.0,
        1.0,
        1.0,
        1.0,
        1.0,
        1.0,
        1.0,
        3.0467304300655655,
        1.0,
        1.0,
        11.753681839691637,
        6.160133284033634,
        12.398252691753044,
        1.9512121048077802,
        1.0,
        1.0,
        6.160133284033634,
        3.4802203251221044,
        6.459695741248595,
        3.24207021783792,
        1.0,
        1.0,
        12.398252691753044,
        6.459695741248595,
        13.104341334138155,
    ];
    let kernel = KernelMatrix::from_vec(6, data);
    let labels = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
    let idx: Vec<usize> = (0..6).collect();
    let model = BinarySvm::train(
        &kernel,
        &idx,
        &labels,
        &SmoConfig {
            c: 100.0,
            ..Default::default()
        },
    );
    for (i, &y) in labels.iter().enumerate() {
        let d = model.decision(&kernel, i);
        eprintln!("point {i}: y={y} f={d}");
    }
    for (i, &y) in labels.iter().enumerate() {
        assert_eq!(model.predict(&kernel, i), y, "point {i}");
    }
}
