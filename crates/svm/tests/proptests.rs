//! Property-based tests for the SMO C-SVM.

use deepmap_kernels::feature_map::SparseVec;
use deepmap_kernels::KernelMatrix;
use deepmap_svm::{BinarySvm, MulticlassSvm, SmoConfig};
use proptest::prelude::*;

/// Strategy: two Gaussian-ish separated clusters in 2-D, as a linear kernel
/// plus labels.
fn arb_separable() -> impl Strategy<Value = (KernelMatrix, Vec<f64>)> {
    (
        proptest::collection::vec((-1.0f32..1.0, -1.0f32..1.0), 3..8),
        proptest::collection::vec((-1.0f32..1.0, -1.0f32..1.0), 3..8),
        2.0f32..8.0,
    )
        .prop_map(|(neg, pos, gap)| {
            let mut vecs = Vec::new();
            let mut labels = Vec::new();
            for (x, y) in &neg {
                vecs.push(SparseVec::from_pairs(vec![(0, *x), (1, *y), (2, 1.0)]));
                labels.push(-1.0);
            }
            for (x, y) in &pos {
                vecs.push(SparseVec::from_pairs(vec![
                    (0, x + gap),
                    (1, y + gap),
                    (2, 1.0),
                ]));
                labels.push(1.0);
            }
            (KernelMatrix::linear(&vecs), labels)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Separable data: training accuracy is perfect and the dual constraint
    /// Σ αᵢyᵢ = 0 holds.
    #[test]
    fn separable_training_is_exact((kernel, labels) in arb_separable()) {
        let idx: Vec<usize> = (0..labels.len()).collect();
        let config = SmoConfig { c: 100.0, ..Default::default() };
        let model = BinarySvm::train(&kernel, &idx, &labels, &config);
        for (i, &y) in labels.iter().enumerate() {
            prop_assert_eq!(model.predict(&kernel, i), y, "point {}", i);
        }
        let balance: f64 = model
            .alphas
            .iter()
            .zip(&model.labels)
            .map(|(&a, &y)| a * y)
            .sum();
        prop_assert!(balance.abs() < 1e-5, "Σαy = {balance}");
    }

    /// Box constraint: every α stays within [0, C] for any C.
    #[test]
    fn alphas_respect_box((kernel, labels) in arb_separable(), c in 0.01f64..10.0) {
        let idx: Vec<usize> = (0..labels.len()).collect();
        let config = SmoConfig { c, ..Default::default() };
        let model = BinarySvm::train(&kernel, &idx, &labels, &config);
        prop_assert!(model.alphas.iter().all(|&a| (-1e-9..=c + 1e-9).contains(&a)));
    }

    /// Decision values are anti-symmetric under label flip: training with
    /// -y gives the mirrored classifier.
    #[test]
    fn label_flip_mirrors_decision((kernel, labels) in arb_separable()) {
        let idx: Vec<usize> = (0..labels.len()).collect();
        let config = SmoConfig::default();
        let model = BinarySvm::train(&kernel, &idx, &labels, &config);
        let flipped: Vec<f64> = labels.iter().map(|&y| -y).collect();
        let mirror = BinarySvm::train(&kernel, &idx, &flipped, &config);
        for i in 0..labels.len() {
            let d1 = model.decision(&kernel, i);
            let d2 = mirror.decision(&kernel, i);
            prop_assert!((d1 + d2).abs() < 1e-4, "{d1} vs {d2}");
        }
    }

    /// One-vs-rest reduces to the binary machine's prediction when there
    /// are two classes.
    #[test]
    fn multiclass_two_class_consistent((kernel, labels) in arb_separable()) {
        let idx: Vec<usize> = (0..labels.len()).collect();
        let int_labels: Vec<usize> = labels.iter().map(|&y| if y > 0.0 { 1 } else { 0 }).collect();
        let config = SmoConfig { c: 100.0, ..Default::default() };
        let model = MulticlassSvm::train(&kernel, &idx, &int_labels, 2, &config);
        let acc = model.accuracy(&kernel, &idx, &int_labels);
        prop_assert!((acc - 1.0).abs() < 1e-12, "accuracy {acc}");
    }
}
