//! `PredictionHandle::wait_timeout` edge cases — zero timeouts, waits on
//! already-answered handles, timeouts racing the reply — and `health()`
//! transitions while the server drains.

use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{Health, InferenceServer, ModelBundle, ServeError, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn trained_bundle() -> Arc<ModelBundle> {
    let mut rng = StdRng::seed_from_u64(11);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 1,
        },
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    Arc::new(
        ModelBundle::freeze(
            &dm,
            &prepared,
            pre,
            &result.model,
            vec!["cycle".to_string(), "clique".to_string()],
        )
        .unwrap(),
    )
}

fn one_graph() -> deepmap_graph::Graph {
    let mut rng = StdRng::seed_from_u64(7);
    cycle_graph(6, 0, &mut rng)
}

#[test]
fn zero_timeout_on_pending_request_times_out_then_recovers() {
    let server = InferenceServer::start(
        trained_bundle(),
        ServerConfig {
            // A wide batching window guarantees the reply cannot have
            // arrived by the time the instant poll runs.
            max_batch: 64,
            max_wait: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.submit(one_graph()).unwrap();
    match handle.wait_timeout(Duration::ZERO) {
        Err(ServeError::WaitTimeout) => {}
        other => panic!("instant poll on a pending request must time out, got {other:?}"),
    }
    // WaitTimeout leaves the request in flight: the same handle can be
    // waited on again and gets the real answer.
    let served = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("re-wait after timeout succeeds");
    assert_eq!(served.scores.len(), 2);
    assert_eq!(served.batch_size, 1);
}

#[test]
fn already_answered_handle_satisfies_zero_timeout() {
    let server = InferenceServer::start(trained_bundle(), ServerConfig::default()).unwrap();
    let handle = server.submit(one_graph()).unwrap();
    // Wait for the reply to be buffered in the handle's channel without
    // consuming it.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.metrics().completed == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(server.metrics().completed, 1, "request served");
    // The answer is already there, so even a zero timeout succeeds.
    let served = handle
        .wait_timeout(Duration::ZERO)
        .expect("buffered reply satisfies an instant poll");
    assert_eq!(served.scores.len(), 2);
}

#[test]
fn timeout_racing_the_reply_never_loses_it() {
    let server = InferenceServer::start(trained_bundle(), ServerConfig::default()).unwrap();
    // Tight 1ms polls race the worker's reply; however the race lands, the
    // prediction must eventually come out of the same handle.
    for _ in 0..5 {
        let handle = server.submit(one_graph()).unwrap();
        let mut polls = 0u32;
        let served = loop {
            match handle.wait_timeout(Duration::from_millis(1)) {
                Ok(served) => break served,
                Err(ServeError::WaitTimeout) => {
                    polls += 1;
                    assert!(polls < 60_000, "request never answered");
                }
                Err(other) => panic!("unexpected failure: {other}"),
            }
        };
        assert_eq!(served.scores.len(), 2);
    }
    assert_eq!(server.metrics().completed, 5);
}

#[test]
fn health_transitions_to_unavailable_while_drain_still_answers() {
    let mut server = InferenceServer::start(trained_bundle(), ServerConfig::default()).unwrap();
    assert_eq!(server.health(), Health::Ready);

    let handles: Vec<_> = (0..4)
        .map(|_| server.submit(one_graph()).expect("queue has room"))
        .collect();
    server.shutdown();
    // Draining flips health immediately…
    assert_eq!(server.health(), Health::Unavailable);
    // …but already-accepted requests were still answered, not dropped.
    for handle in handles {
        assert!(handle.wait().is_ok(), "in-flight work drains on shutdown");
    }
    // New work is fast-failed, and health stays down.
    assert!(matches!(
        server.submit(one_graph()),
        Err(ServeError::Shutdown)
    ));
    assert_eq!(server.health(), Health::Unavailable);
}
