//! Chaos suite: deterministic fault injection against the live server.
//!
//! Every test drives a real `InferenceServer` with a [`FaultPlan`] and
//! checks the resilience contract: every accepted request is answered
//! (success or typed error — never a hang), panicking replicas respawn
//! within the restart budget, an exhausted budget trips the circuit
//! breaker, and a fixed plan yields identical outcomes at any worker
//! count.
#![cfg(feature = "fault-inject")]

use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{
    FaultPlan, Health, InferenceServer, ModelBundle, ResilienceConfig, ServeError, ServerConfig,
    TraceOutcome,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn trained_bundle() -> Arc<ModelBundle> {
    let mut rng = StdRng::seed_from_u64(11);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 1,
        },
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    let bundle = ModelBundle::freeze(
        &dm,
        &prepared,
        pre,
        &result.model,
        vec!["cycle".to_string(), "clique".to_string()],
    )
    .unwrap();
    Arc::new(bundle)
}

fn request_graphs(n: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(77);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}

/// One-request batches: batch sequence number == submit order, the key the
/// fault plans below rely on.
fn unbatched(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        max_batch: 1,
        queue_capacity: 256,
        ..ServerConfig::default()
    }
}

/// Every submitted request resolves to a compact outcome label. A request
/// that hangs fails the test via the wait_timeout bound — the chaos suite's
/// core assertion.
fn resolve(handle: deepmap_serve::PredictionHandle) -> String {
    match handle.wait_timeout(Duration::from_secs(30)) {
        Ok(served) => format!("class={}", served.class),
        Err(ServeError::WaitTimeout) => panic!("request hung for 30s under chaos"),
        Err(err) => format!("err={err}"),
    }
}

#[test]
fn panics_within_budget_respawn_and_answer_everything() {
    let bundle = trained_bundle();
    let server = InferenceServer::start_chaos(
        bundle,
        unbatched(2),
        ResilienceConfig {
            max_restarts: 4,
            restart_backoff: Duration::from_millis(1),
            ..ResilienceConfig::default()
        },
        FaultPlan::new().panic_on_batches([1, 3]),
    )
    .unwrap();

    let handles: Vec<_> = request_graphs(12)
        .into_iter()
        .map(|g| server.submit(g).expect("breaker never trips"))
        .collect();
    let outcomes: Vec<String> = handles.into_iter().map(resolve).collect();

    for (i, outcome) in outcomes.iter().enumerate() {
        if i == 1 || i == 3 {
            assert_eq!(
                outcome,
                &format!("err={}", ServeError::WorkerPanic),
                "batch {i} was the planned panic"
            );
        } else {
            assert!(outcome.starts_with("class="), "batch {i}: {outcome}");
        }
    }

    // Both replicas respawned; give the second respawn a moment to land
    // before checking the counters and health.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.metrics().worker_restarts < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let metrics = server.metrics();
    assert_eq!(metrics.worker_panics, 2);
    assert_eq!(metrics.worker_restarts, 2, "every panic respawned");
    assert_eq!(metrics.breaker_state, 0, "budget of 4 never exhausted");
    assert_eq!(server.health(), Health::Ready);

    // The Prometheus rendering carries the chaos counters.
    let text = server.render_metrics();
    assert!(text.contains("deepmap_serve_worker_panics 2"), "{text}");
    assert!(text.contains("deepmap_serve_worker_restarts 2"), "{text}");
}

#[test]
fn exhausted_restart_budget_trips_breaker_and_probe_recovers() {
    let bundle = trained_bundle();
    let server = InferenceServer::start_chaos(
        bundle,
        unbatched(2),
        ResilienceConfig {
            max_restarts: 0, // first panic kills the replica for good
            breaker_cooldown: Duration::from_millis(200),
            ..ResilienceConfig::default()
        },
        FaultPlan::new().panic_on_batches([0]),
    )
    .unwrap();
    let graphs = request_graphs(4);

    // Batch 0 panics; with a zero restart budget the worker stays down and
    // the breaker trips.
    let victim = server.submit(graphs[0].clone()).unwrap();
    assert_eq!(resolve(victim), format!("err={}", ServeError::WorkerPanic));
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.metrics().breaker_state != 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(server.metrics().breaker_state, 2, "breaker open");
    assert_eq!(server.health(), Health::Unavailable);

    // While open (and inside the cool-down) submissions fast-fail.
    assert!(matches!(
        server.submit(graphs[1].clone()),
        Err(ServeError::CircuitOpen)
    ));
    assert!(server.metrics().breaker_rejected >= 1);

    // After the cool-down the next submission rides as the half-open probe;
    // the surviving replica serves it and the breaker closes.
    std::thread::sleep(Duration::from_millis(250));
    let probe = server.submit(graphs[2].clone()).unwrap();
    assert!(resolve(probe).starts_with("class="));
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.metrics().breaker_state != 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        server.metrics().breaker_state,
        0,
        "probe closed the breaker"
    );
    assert_eq!(
        server.health(),
        Health::Degraded { live_workers: 1 },
        "closed breaker, one replica permanently gone"
    );

    // Normal service resumes on the surviving replica.
    assert!(server.predict(graphs[3].clone()).is_ok());
    let metrics = server.metrics();
    assert_eq!(metrics.worker_panics, 1);
    assert_eq!(metrics.worker_restarts, 0, "budget was zero");
}

#[test]
fn dropped_replies_resolve_as_shutdown_not_hangs() {
    let bundle = trained_bundle();
    let server = InferenceServer::start_chaos(
        bundle,
        unbatched(1),
        ResilienceConfig::default(),
        FaultPlan::new().drop_replies_on_batches([1]),
    )
    .unwrap();
    let handles: Vec<_> = request_graphs(3)
        .into_iter()
        .map(|g| server.submit(g).unwrap())
        .collect();
    let outcomes: Vec<String> = handles.into_iter().map(resolve).collect();
    assert!(outcomes[0].starts_with("class="), "{outcomes:?}");
    assert_eq!(
        outcomes[1],
        format!("err={}", ServeError::Shutdown),
        "a dropped reply disconnects the handle instead of hanging it"
    );
    assert!(outcomes[2].starts_with("class="), "{outcomes:?}");
    assert_eq!(server.metrics().replies_dropped, 1);
}

#[test]
fn injected_latency_makes_the_batcher_shed_expired_requests() {
    let bundle = trained_bundle();
    // One worker stalled 150ms on batch 0; batch_tx holds workers*2 = 2
    // batches, so the fifth submission sits in the request queue well past
    // its 10ms deadline and the batcher sheds it at pop time.
    let server = InferenceServer::start_chaos(
        bundle,
        unbatched(1),
        ResilienceConfig::default(),
        FaultPlan::new().latency_on_batch(0, Duration::from_millis(150)),
    )
    .unwrap();
    let graphs = request_graphs(5);
    let slow: Vec<_> = graphs[..4]
        .iter()
        .map(|g| server.submit(g.clone()).unwrap())
        .collect();
    let doomed = server
        .submit_with_deadline(graphs[4].clone(), Some(Duration::from_millis(10)))
        .unwrap();
    let doomed_id = doomed.trace_id();
    assert_eq!(
        resolve(doomed),
        format!("err={}", ServeError::DeadlineExceeded)
    );
    for handle in slow {
        assert!(resolve(handle).starts_with("class="), "no deadline, served");
    }
    assert_eq!(server.metrics().shed_deadline, 1);

    // The shed request left an anomaly record naming its exact trace id,
    // its outcome, and how far past the deadline it sat.
    let recorder = server.flight_recorder();
    let shed: Vec<_> = recorder
        .anomaly_snapshot()
        .into_iter()
        .filter(|r| r.outcome == TraceOutcome::ShedDeadline)
        .collect();
    assert_eq!(shed.len(), 1, "exactly one shed anomaly: {shed:?}");
    assert_eq!(
        shed[0].trace_id, doomed_id,
        "the shed record names the victim"
    );
    let cause = shed[0].cause.as_deref().unwrap_or_default();
    assert!(cause.contains("deadline exceeded"), "cause: {cause}");
    assert!(shed[0].stamps_monotonic(), "stamps: {:?}", shed[0].stamps);
}

#[test]
fn flight_recorder_names_exact_panicked_requests_with_causes() {
    let bundle = trained_bundle();
    let server = InferenceServer::start_chaos(
        bundle,
        unbatched(2),
        ResilienceConfig {
            max_restarts: 4,
            restart_backoff: Duration::from_millis(1),
            ..ResilienceConfig::default()
        },
        FaultPlan::new().panic_on_batches([1, 3]),
    )
    .unwrap();

    let handles: Vec<_> = request_graphs(8)
        .into_iter()
        .map(|g| server.submit(g).expect("breaker never trips"))
        .collect();
    let trace_ids: Vec<u64> = handles.iter().map(|h| h.trace_id()).collect();
    assert!(
        trace_ids.iter().all(|&id| id != 0),
        "tracing is on by default, every handle carries a real trace id"
    );
    let outcomes: Vec<String> = handles.into_iter().map(resolve).collect();

    // Every request — served or panicked — left a record naming its exact
    // trace id, and every record's stamps are monotone.
    let records = server.flight_recorder().snapshot();
    for (i, &id) in trace_ids.iter().enumerate() {
        let record = records
            .iter()
            .find(|r| r.trace_id == id)
            .unwrap_or_else(|| panic!("request {i} left no record: {records:?}"));
        assert!(
            record.stamps_monotonic(),
            "request {i}: {:?}",
            record.stamps
        );
        if i == 1 || i == 3 {
            assert_eq!(outcomes[i], format!("err={}", ServeError::WorkerPanic));
            assert_eq!(record.outcome, TraceOutcome::WorkerPanic);
            let cause = record.cause.as_deref().unwrap_or_default();
            assert!(
                cause.contains("fault-inject: planned panic"),
                "request {i} cause: {cause}"
            );
        } else {
            assert_eq!(record.outcome, TraceOutcome::Completed, "request {i}");
            assert!(record.cause.is_none(), "request {i}");
        }
    }

    // The anomaly ring retains exactly the two panic victims. The two
    // workers race to record their panics, so the set is the contract,
    // not the arrival order.
    let mut anomaly_ids: Vec<u64> = server
        .flight_recorder()
        .anomaly_snapshot()
        .iter()
        .map(|r| r.trace_id)
        .collect();
    anomaly_ids.sort_unstable();
    let mut want = vec![trace_ids[1], trace_ids[3]];
    want.sort_unstable();
    assert_eq!(anomaly_ids, want);
}

/// Runs `n` requests through a chaos server and returns the per-request
/// outcome labels plus the (shed, panics, restarts, drops) counter tuple.
fn chaos_run(
    bundle: &Arc<ModelBundle>,
    workers: usize,
    plan: &FaultPlan,
    graphs: &[Graph],
) -> (Vec<String>, (u64, u64, u64, u64)) {
    let server = InferenceServer::start_chaos(
        Arc::clone(bundle),
        unbatched(workers),
        ResilienceConfig {
            max_restarts: 64, // never exhaust: keep every run on the respawn path
            restart_backoff: Duration::from_millis(1),
            ..ResilienceConfig::default()
        },
        plan.clone(),
    )
    .unwrap();
    let handles: Vec<_> = graphs
        .iter()
        .map(|g| server.submit(g.clone()).expect("budget of 64 never trips"))
        .collect();
    let outcomes: Vec<String> = handles.into_iter().map(resolve).collect();
    // Restart counters lag the last reply by one respawn backoff; settle
    // until panics and restarts agree (they must, with the budget uncapped).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = server.metrics();
        if m.worker_restarts == m.worker_panics || Instant::now() >= deadline {
            return (
                outcomes,
                (
                    m.shed_deadline,
                    m.worker_panics,
                    m.worker_restarts,
                    m.replies_dropped,
                ),
            );
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn fixed_fault_plan_is_deterministic_at_any_worker_count() {
    let bundle = trained_bundle();
    let graphs = request_graphs(32);
    let plan = FaultPlan::seeded(42, 32, 0.15, 0.10, Duration::from_millis(2), 0.10);
    assert!(plan.planned_panics() > 0, "seed 42 must actually panic");
    assert!(plan.planned_reply_drops() > 0, "seed 42 must actually drop");

    let (base_outcomes, base_counters) = chaos_run(&bundle, 1, &plan, &graphs);
    for workers in [1, 4] {
        let (outcomes, counters) = chaos_run(&bundle, workers, &plan, &graphs);
        assert_eq!(
            outcomes, base_outcomes,
            "per-request outcomes must not depend on worker count ({workers} workers)"
        );
        assert_eq!(
            counters, base_counters,
            "shed/panic/restart/drop counters must not depend on worker count ({workers} workers)"
        );
    }
    assert_eq!(base_counters.1, plan.planned_panics() as u64);
}
