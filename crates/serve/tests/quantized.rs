//! DMB2 quantized bundles: format round trip, the agreement gate, int8
//! predictor parity, and int8 serving through the InferenceServer.

use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{InferenceServer, ModelBundle, Precision, ServeError, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn toy_dataset(n_per_class: usize) -> (Vec<Graph>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n_per_class {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    (graphs, labels)
}

/// Trains a WL model and freezes it; returns the bundle plus held-out
/// graphs usable as quantization probes.
fn train_and_freeze() -> (ModelBundle, Vec<Graph>) {
    let (graphs, labels) = toy_dataset(8);
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 1,
        },
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
    let n = graphs.len();
    let train_idx: Vec<usize> = (0..n * 3 / 4).collect();
    let test_idx: Vec<usize> = (n * 3 / 4..n).collect();
    let result = dm.fit_split(&prepared, &train_idx, &test_idx);
    let bundle = ModelBundle::freeze(
        &dm,
        &prepared,
        pre,
        &result.model,
        vec!["cycle".to_string(), "clique".to_string()],
    )
    .expect("freeze");
    let held_out: Vec<Graph> = test_idx.iter().map(|&i| graphs[i].clone()).collect();
    (bundle, held_out)
}

fn quantized_bundle() -> (ModelBundle, Vec<Graph>, f64) {
    let (mut bundle, held_out) = train_and_freeze();
    let probes: Vec<&Graph> = held_out.iter().collect();
    let agreement = bundle.quantize(&probes, 0.75).expect("quantize");
    (bundle, held_out, agreement)
}

#[test]
fn unquantized_bundles_stay_dmb1_and_quantized_become_dmb2() {
    let (bundle, _, _) = quantized_bundle();
    let (fresh, _) = train_and_freeze();
    assert!(!fresh.has_quantized());
    assert_eq!(&fresh.to_bytes()[..4], b"DMB1");
    assert!(bundle.has_quantized());
    assert_eq!(&bundle.to_bytes()[..4], b"DMB2");
    // The DMB2 encoding is the DMB1 encoding plus one trailing section.
    let quant_section = 8 + bundle.quantized_bytes().unwrap();
    assert_eq!(
        bundle.to_bytes().len(),
        fresh.to_bytes().len() + quant_section
    );
    // And the int8 section is materially smaller than the f32 weights.
    assert!(
        bundle.quantized_bytes().unwrap() < bundle.weight_section_bytes(),
        "int8 section {} should undercut f32 section {}",
        bundle.quantized_bytes().unwrap(),
        bundle.weight_section_bytes()
    );
    let plain = ModelBundle::from_bytes(&fresh.to_bytes()).unwrap();
    assert!(!plain.has_quantized());
}

#[test]
fn dmb2_roundtrip_preserves_quantized_weights() {
    let (bundle, held_out, agreement) = quantized_bundle();
    assert!((0.0..=1.0).contains(&agreement));
    let restored = ModelBundle::from_bytes(&bundle.to_bytes()).expect("roundtrip");
    assert!(restored.has_quantized());
    assert_eq!(restored.quantized_bytes(), bundle.quantized_bytes());
    let mut before = bundle.predictor_with(Precision::Int8).unwrap();
    let mut after = restored.predictor_with(Precision::Int8).unwrap();
    assert_eq!(after.precision(), Precision::Int8);
    for graph in &held_out {
        let a = before.predict(graph);
        let b = after.predict(graph);
        assert_eq!(a.class, b.class);
        assert_eq!(a.scores, b.scores, "int8 inference is deterministic");
    }
}

#[test]
fn int8_predictions_agree_with_f32_on_probes() {
    let (bundle, held_out, agreement) = quantized_bundle();
    // The gate passed at 0.75; re-measure by hand and cross-check.
    let mut f32p = bundle.predictor().unwrap();
    let mut int8p = bundle.predictor_with(Precision::Int8).unwrap();
    let agreeing = held_out
        .iter()
        .filter(|g| f32p.predict(g).class == int8p.predict(g).class)
        .count();
    let measured = agreeing as f64 / held_out.len() as f64;
    assert!((measured - agreement).abs() < 1e-9);
    assert!(measured >= 0.75);
}

#[test]
fn int8_batched_predictions_match_unbatched_bit_for_bit() {
    let (bundle, held_out, _) = quantized_bundle();
    let mut predictor = bundle.predictor_with(Precision::Int8).unwrap();
    let refs: Vec<&Graph> = held_out.iter().collect();
    let batched = predictor.predict_batch(&refs);
    for (graph, b) in held_out.iter().zip(&batched) {
        let solo = predictor.predict(graph);
        assert_eq!(solo.class, b.class);
        assert_eq!(
            solo.scores, b.scores,
            "activation quantization is row-local, so batching is exact"
        );
    }
}

#[test]
fn int8_predictor_requires_quantized_weights() {
    let (bundle, _) = train_and_freeze();
    let err = match bundle.predictor_with(Precision::Int8) {
        Ok(_) => panic!("int8 predictor from a DMB1 bundle must fail"),
        Err(e) => e,
    };
    assert!(matches!(err, ServeError::NoQuantizedWeights), "{err}");
    // The same startup error surfaces from the server, before any worker
    // thread spawns.
    let err = match InferenceServer::start(
        Arc::new(bundle),
        ServerConfig {
            precision: Precision::Int8,
            ..ServerConfig::default()
        },
    ) {
        Ok(_) => panic!("int8 server over a DMB1 bundle must fail startup"),
        Err(e) => e,
    };
    assert!(matches!(err, ServeError::NoQuantizedWeights), "{err}");
}

#[test]
fn quantize_gate_rejects_and_leaves_bundle_unchanged() {
    let (mut bundle, held_out) = train_and_freeze();
    let probes: Vec<&Graph> = held_out.iter().collect();
    // An unattainable threshold must reject (agreement can never exceed 1)
    // and must not attach weights.
    let err = bundle.quantize(&probes, 1.5).unwrap_err();
    match err {
        ServeError::QuantizationRejected {
            agreement,
            required,
        } => {
            assert!((0.0..=1.0).contains(&agreement));
            assert_eq!(required, 1.5);
        }
        other => panic!("expected QuantizationRejected, got {other}"),
    }
    assert!(!bundle.has_quantized());
    assert_eq!(&bundle.to_bytes()[..4], b"DMB1");
}

#[test]
fn malformed_dmb2_bundles_are_rejected() {
    let (bundle, _, _) = quantized_bundle();
    let blob = bundle.to_bytes();

    assert!(matches!(
        ModelBundle::from_bytes(&blob[..blob.len() - 5]),
        Err(ServeError::Truncated)
    ));

    let mut trailing = blob.clone();
    trailing.extend_from_slice(&[9, 9]);
    assert!(matches!(
        ModelBundle::from_bytes(&trailing),
        Err(ServeError::TrailingBytes { extra: 2 })
    ));

    // Corrupting the QNT1 magic inside the quant section must fail the
    // parse-time validation, not defer the error to first use.
    let qlen = bundle.quantized_bytes().unwrap();
    let qstart = blob.len() - qlen;
    assert_eq!(&blob[qstart..qstart + 4], b"QNT1");
    let mut bad_qnt = blob.clone();
    bad_qnt[qstart] ^= 0xFF;
    assert!(matches!(
        ModelBundle::from_bytes(&bad_qnt),
        Err(ServeError::Corrupt(_))
    ));

    // A DMB2 header on a payload with no quant section is truncated.
    let mut headless = bundle.to_bytes();
    headless.truncate(blob.len() - qlen - 8);
    assert!(ModelBundle::from_bytes(&headless).is_err());
}

#[test]
fn server_serves_int8_and_labels_metrics_with_precision() {
    let (bundle, held_out, _) = quantized_bundle();
    let bundle = Arc::new(bundle);
    let mut direct = bundle.predictor_with(Precision::Int8).unwrap();
    let expected: Vec<_> = held_out.iter().map(|g| direct.predict(g)).collect();
    let server = InferenceServer::start(
        Arc::clone(&bundle),
        ServerConfig {
            precision: Precision::Int8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(server.precision(), Precision::Int8);
    for (graph, want) in held_out.iter().zip(&expected) {
        let served = server.predict(graph.clone()).unwrap();
        assert_eq!(served.class, want.class);
        assert_eq!(served.scores, want.scores, "served int8 == direct int8");
    }
    let text = server.render_metrics();
    assert!(
        text.contains(
            "deepmap_serve_latency_seconds_count{stage=\"infer_end\",precision=\"int8\"}"
        ),
        "{text}"
    );
}
