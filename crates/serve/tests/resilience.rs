//! Resilience behaviour that needs no fault injection: admission control,
//! deadlines, wait timeouts, typed errors, health, and the metrics wiring.

use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::builder::graph_from_edges;
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::persist::PersistError;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{
    GraphLimits, Health, InferenceServer, ModelBundle, ResilienceConfig, ServeError, ServerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::sync::Arc;
use std::time::Duration;

fn trained_bundle() -> Arc<ModelBundle> {
    let mut rng = StdRng::seed_from_u64(11);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 1,
        },
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    let bundle = ModelBundle::freeze(
        &dm,
        &prepared,
        pre,
        &result.model,
        vec!["cycle".to_string(), "clique".to_string()],
    )
    .unwrap();
    Arc::new(bundle)
}

fn small_cycle() -> Graph {
    let mut rng = StdRng::seed_from_u64(5);
    cycle_graph(6, 0, &mut rng)
}

#[test]
fn admission_limits_reject_before_the_queue() {
    let bundle = trained_bundle();
    let server = InferenceServer::start_with(
        bundle,
        ServerConfig::default(),
        ResilienceConfig {
            limits: GraphLimits {
                max_vertices: Some(4),
                ..GraphLimits::new()
            },
            ..ResilienceConfig::default()
        },
    )
    .unwrap();

    let empty = graph_from_edges(0, &[], None).unwrap();
    match server.submit(empty) {
        Err(ServeError::Rejected { reason }) => assert!(reason.contains("empty"), "{reason}"),
        other => panic!("empty graph must be rejected, got {other:?}"),
    }
    match server.submit(small_cycle()) {
        Err(ServeError::Rejected { reason }) => {
            assert!(reason.contains("6 vertices"), "{reason}")
        }
        other => panic!("oversized graph must be rejected, got {other:?}"),
    }

    let metrics = server.metrics();
    assert_eq!(metrics.rejected_invalid, 2);
    assert_eq!(metrics.submitted, 0, "rejections never enter the queue");
    assert_eq!(
        server.health(),
        Health::Ready,
        "rejection is not ill health"
    );
}

#[test]
fn label_alphabet_check_rejects_unseen_labels() {
    // The WL bundle above was trained on label-0 graphs only, so its
    // recorded alphabet is exactly {0}.
    let bundle = trained_bundle();
    let server = InferenceServer::start_with(
        Arc::clone(&bundle),
        ServerConfig::default(),
        ResilienceConfig {
            limits: GraphLimits {
                check_label_alphabet: true,
                ..GraphLimits::new()
            },
            ..ResilienceConfig::default()
        },
    )
    .unwrap();

    let alien = graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[0, 9, 0])).unwrap();
    match server.submit(alien) {
        Err(ServeError::Rejected { reason }) => assert!(reason.contains("label 9"), "{reason}"),
        other => panic!("unseen label must be rejected, got {other:?}"),
    }
    // In-alphabet graphs still serve.
    assert!(server.predict(small_cycle()).is_ok());
}

#[test]
fn zero_deadline_requests_are_shed_not_dropped() {
    let bundle = trained_bundle();
    let server = InferenceServer::start(bundle, ServerConfig::default()).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            server
                .submit_with_deadline(small_cycle(), Some(Duration::ZERO))
                .expect("an expired deadline is still accepted; the batcher sheds it")
        })
        .collect();
    for handle in handles {
        match handle.wait() {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expired request must be shed with a typed error, got {other:?}"),
        }
    }
    let metrics = server.metrics();
    assert_eq!(metrics.shed_deadline, 4);
    assert_eq!(metrics.completed, 0);
}

#[test]
fn server_default_deadline_applies_to_plain_submits() {
    let bundle = trained_bundle();
    let server = InferenceServer::start_with(
        bundle,
        ServerConfig::default(),
        ResilienceConfig {
            default_deadline: Some(Duration::ZERO),
            ..ResilienceConfig::default()
        },
    )
    .unwrap();
    let shed = server.submit(small_cycle()).unwrap().wait();
    assert!(matches!(shed, Err(ServeError::DeadlineExceeded)));
    // A per-request override beats the server default.
    let served = server
        .submit_with_deadline(small_cycle(), Some(Duration::from_secs(30)))
        .unwrap()
        .wait();
    assert!(served.is_ok(), "{served:?}");
}

#[test]
fn wait_timeout_gives_up_and_can_retry() {
    let bundle = trained_bundle();
    // A lone request in a wide batch window: the batcher holds it for
    // max_wait before flushing, so a short wait_timeout fires first.
    let server = InferenceServer::start(
        bundle,
        ServerConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.submit(small_cycle()).unwrap();
    match handle.wait_timeout(Duration::from_millis(1)) {
        Err(ServeError::WaitTimeout) => {}
        other => panic!("expected WaitTimeout, got {other:?}"),
    }
    // The request stayed in flight; a patient wait still gets the answer.
    assert!(handle.wait().is_ok());
}

#[test]
fn serve_errors_display_and_source() {
    let cases: Vec<(ServeError, &str)> = vec![
        (
            ServeError::Rejected {
                reason: "graph has 9 vertices, limit is 4".to_string(),
            },
            "rejected",
        ),
        (ServeError::DeadlineExceeded, "deadline"),
        (ServeError::WaitTimeout, "timed out"),
        (ServeError::WorkerPanic, "panicked"),
        (ServeError::CircuitOpen, "circuit breaker open"),
        (ServeError::QueueFull, "queue full"),
        (ServeError::Shutdown, "shut down"),
    ];
    for (err, needle) in cases {
        let text = err.to_string();
        assert!(text.contains(needle), "{text:?} should contain {needle:?}");
        assert!(err.source().is_none(), "{err:?} wraps no inner error");
    }
    let wrapped = ServeError::from(PersistError::Truncated);
    assert!(wrapped.source().is_some(), "Persist keeps its inner error");
    assert!(wrapped.to_string().contains("weights"));
}

#[test]
fn metrics_move_under_rejection_heavy_load_and_render() {
    let bundle = trained_bundle();
    let server = InferenceServer::start_with(
        bundle,
        ServerConfig::default(),
        ResilienceConfig {
            limits: GraphLimits {
                max_vertices: Some(10),
                ..GraphLimits::new()
            },
            ..ResilienceConfig::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    // Mix of served, admission-rejected, and deadline-shed requests.
    let mut handles = Vec::new();
    for i in 0..12 {
        match i % 3 {
            0 => handles.push(server.submit(small_cycle()).unwrap()),
            1 => {
                let big = cycle_graph(24, 0, &mut rng);
                assert!(matches!(
                    server.submit(big),
                    Err(ServeError::Rejected { .. })
                ));
            }
            _ => {
                let handle = server
                    .submit_with_deadline(small_cycle(), Some(Duration::ZERO))
                    .unwrap();
                assert!(matches!(handle.wait(), Err(ServeError::DeadlineExceeded)));
            }
        }
    }
    for handle in handles {
        handle.wait().expect("valid requests still serve");
    }

    let metrics = server.metrics();
    assert_eq!(metrics.completed, 4);
    assert_eq!(metrics.rejected_invalid, 4);
    assert_eq!(metrics.shed_deadline, 4);
    assert_eq!(metrics.submitted, 8, "served + shed entered the queue");
    assert_eq!(metrics.worker_panics, 0);
    assert_eq!(metrics.breaker_state, 0, "breaker stays closed");
    assert_eq!(metrics.queue_depth, 0, "everything drained");

    // The same counters render as Prometheus series, new instruments
    // included.
    let text = server.render_metrics();
    for series in [
        "deepmap_serve_rejected_invalid 4",
        // Shed happens when the batcher seals a batch — the stage label
        // names that boundary (PR 8).
        "deepmap_serve_requests_shed_deadline{stage=\"batch_sealed\"} 4",
        "deepmap_serve_worker_panics 0",
        "deepmap_serve_worker_restarts 0",
        "deepmap_serve_breaker_rejected 0",
        "deepmap_serve_breaker_state 0",
    ] {
        assert!(text.contains(series), "missing {series:?} in:\n{text}");
    }
}

#[test]
fn health_tracks_shutdown() {
    let bundle = trained_bundle();
    let mut server = InferenceServer::start(bundle, ServerConfig::default()).unwrap();
    assert_eq!(server.health(), Health::Ready);
    server.predict(small_cycle()).unwrap();
    assert_eq!(server.health(), Health::Ready);
    server.shutdown();
    assert_eq!(server.health(), Health::Unavailable);
    assert!(matches!(
        server.submit(small_cycle()),
        Err(ServeError::Shutdown)
    ));
}
