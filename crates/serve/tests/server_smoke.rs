//! InferenceServer end-to-end: server answers match the direct predictor,
//! metrics add up, and shutdown is clean.

use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{InferenceServer, ModelBundle, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn trained_bundle() -> Arc<ModelBundle> {
    let mut rng = StdRng::seed_from_u64(11);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 1,
        },
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    let bundle = ModelBundle::freeze(
        &dm,
        &prepared,
        pre,
        &result.model,
        vec!["cycle".to_string(), "clique".to_string()],
    )
    .unwrap();
    Arc::new(bundle)
}

fn request_graphs(n: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(77);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}

#[test]
fn server_matches_direct_predictor() {
    let bundle = trained_bundle();
    let graphs = request_graphs(20);
    let mut direct = bundle.predictor().unwrap();
    let expected: Vec<_> = graphs.iter().map(|g| direct.predict(g)).collect();

    let mut server = InferenceServer::start(Arc::clone(&bundle), ServerConfig::default()).unwrap();
    let handles: Vec<_> = graphs
        .iter()
        .map(|g| server.submit(g.clone()).expect("queue has room"))
        .collect();
    for (handle, want) in handles.into_iter().zip(&expected) {
        let got = handle.wait().expect("server answers");
        assert_eq!(got.class, want.class);
        assert_eq!(got.scores, want.scores, "served == direct, bit-identical");
        assert!(got.batch_size >= 1);
    }
    let metrics = server.metrics();
    assert_eq!(metrics.submitted, 20);
    assert_eq!(metrics.completed, 20);
    assert_eq!(metrics.rejected, 0);
    assert!(metrics.batches >= 1 && metrics.batches <= 20);
    assert_eq!(metrics.queue_depth, 0, "everything drained");
    assert!(metrics.peak_queue_depth >= 1);

    // The snapshot is served from the shared obs registry, which also
    // renders the same numbers in the Prometheus text format.
    // PR 8: serving instruments carry a stage label tying each series to
    // the request-tracing taxonomy.
    let text = server.render_metrics();
    assert!(
        text.contains("deepmap_serve_requests_submitted{stage=\"enqueued\"} 20"),
        "{text}"
    );
    assert!(
        text.contains("deepmap_serve_requests_completed{stage=\"infer_end\"} 20"),
        "{text}"
    );
    assert!(text.contains("# TYPE deepmap_serve_latency_seconds histogram"));
    // PR 9: the latency series also carries the serving precision.
    assert!(
        text.contains(
            "deepmap_serve_latency_seconds_count{stage=\"infer_end\",precision=\"f32\"} 20"
        ),
        "{text}"
    );
    assert_eq!(
        server
            .metrics_registry()
            .counter("serve.requests_submitted")
            .get(),
        20
    );
    server.shutdown();
}

#[test]
fn unbatched_config_still_serves() {
    let bundle = trained_bundle();
    let graphs = request_graphs(6);
    let mut direct = bundle.predictor().unwrap();
    let server = InferenceServer::start(
        Arc::clone(&bundle),
        ServerConfig {
            workers: 1,
            max_batch: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    for graph in &graphs {
        let served = server.predict(graph.clone()).unwrap();
        let want = direct.predict(graph);
        assert_eq!(served.class, want.class);
        assert_eq!(served.scores, want.scores);
        assert_eq!(served.batch_size, 1, "max_batch = 1 never batches");
    }
    let metrics = server.metrics();
    assert_eq!(metrics.completed, 6);
    assert_eq!(metrics.batched_requests, 0);
}

#[test]
fn slow_trickle_respects_max_wait() {
    // One request at a time with pauses longer than max_wait: every batch
    // must flush on the deadline with a single request in it.
    let bundle = trained_bundle();
    let server = InferenceServer::start(
        bundle,
        ServerConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    for graph in request_graphs(3) {
        let served = server.predict(graph).unwrap();
        assert_eq!(served.batch_size, 1);
    }
    assert_eq!(server.metrics().batches, 3);
}

#[test]
fn shutdown_answers_accepted_requests_and_rejects_new_ones() {
    let bundle = trained_bundle();
    let mut server = InferenceServer::start(bundle, ServerConfig::default()).unwrap();
    let graphs = request_graphs(5);
    let handles: Vec<_> = graphs
        .iter()
        .map(|g| server.submit(g.clone()).unwrap())
        .collect();
    server.shutdown();
    for handle in handles {
        assert!(handle.wait().is_ok(), "accepted requests drain on shutdown");
    }
    assert!(
        server.submit(graphs[0].clone()).is_err(),
        "post-shutdown submits fail"
    );
    assert_eq!(server.metrics().completed, 5);
}
