//! Train → freeze → serialise → reload → predict parity.

use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::builder::graph_from_edges;
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::{ModelBundle, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_dataset(n_per_class: usize) -> (Vec<Graph>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n_per_class {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    (graphs, labels)
}

fn quick_config(kind: FeatureKind) -> DeepMapConfig {
    DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 1,
        },
        ..DeepMapConfig::paper(kind)
    }
}

/// Trains on the first 3/4 of the toy dataset and freezes the result.
fn train_and_freeze(kind: FeatureKind) -> (ModelBundle, Vec<Graph>, DeepMap) {
    let (graphs, labels) = toy_dataset(8);
    let dm = DeepMap::new(quick_config(kind));
    let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
    let n = graphs.len();
    let train_idx: Vec<usize> = (0..n * 3 / 4).collect();
    let test_idx: Vec<usize> = (n * 3 / 4..n).collect();
    let result = dm.fit_split(&prepared, &train_idx, &test_idx);
    let bundle = ModelBundle::freeze(
        &dm,
        &prepared,
        pre,
        &result.model,
        vec!["cycle".to_string(), "clique".to_string()],
    )
    .expect("freeze");
    let held_out: Vec<Graph> = test_idx.iter().map(|&i| graphs[i].clone()).collect();
    (bundle, held_out, dm)
}

#[test]
fn bundle_roundtrip_is_bit_identical_on_held_out_graphs() {
    for kind in [
        FeatureKind::WlSubtree { iterations: 2 },
        FeatureKind::ShortestPath,
        FeatureKind::Graphlet {
            size: 3,
            samples: 10,
        },
    ] {
        let (bundle, held_out, _) = train_and_freeze(kind);
        let restored = ModelBundle::from_bytes(&bundle.to_bytes()).expect("roundtrip");
        let mut before = bundle.predictor().unwrap();
        let mut after = restored.predictor().unwrap();
        for graph in &held_out {
            let a = before.predict(graph);
            let b = after.predict(graph);
            assert_eq!(a.class, b.class, "{kind:?}");
            assert_eq!(a.scores, b.scores, "{kind:?}: scores must be bit-identical");
        }
        assert_eq!(restored.class_names(), bundle.class_names());
        assert_eq!(restored.config().r, 3);
        assert_eq!(restored.config().kind.name(), kind.name());
    }
}

#[test]
fn file_roundtrip_and_oov_graph_smoke() {
    let (bundle, _, _) = train_and_freeze(FeatureKind::WlSubtree { iterations: 2 });
    let dir = std::env::temp_dir().join("deepmap_serve_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bundle.dmb");
    bundle.save(&path).expect("save");
    let restored = ModelBundle::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    // A graph with labels never seen at fit time: every WL feature is OOV,
    // yet the prediction is well-defined.
    let weird =
        graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], Some(&[7, 8, 9, 7, 8])).unwrap();
    let mut predictor = restored.predictor().unwrap();
    let p = predictor.predict(&weird);
    assert!(p.class < restored.n_classes());
    assert_eq!(p.scores.len(), restored.n_classes());
    let total: f32 = p.scores.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-5,
        "softmax scores sum to 1, got {total}"
    );
    assert!(p.scores.iter().all(|&s| s >= 0.0));
}

#[test]
fn batched_predictions_match_unbatched_bit_for_bit() {
    let (bundle, held_out, _) = train_and_freeze(FeatureKind::WlSubtree { iterations: 2 });
    let mut predictor = bundle.predictor().unwrap();
    let refs: Vec<&Graph> = held_out.iter().collect();
    let batched = predictor.predict_batch(&refs);
    for (graph, b) in held_out.iter().zip(&batched) {
        let solo = predictor.predict(graph);
        assert_eq!(solo.class, b.class);
        assert_eq!(
            solo.scores, b.scores,
            "batched conv stack must be bit-identical"
        );
    }
}

#[test]
fn malformed_bundles_are_rejected() {
    let (bundle, _, _) = train_and_freeze(FeatureKind::ShortestPath);
    let blob = bundle.to_bytes();

    let mut bad_magic = blob.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        ModelBundle::from_bytes(&bad_magic),
        Err(ServeError::BadMagic)
    ));

    let mut bad_version = blob.clone();
    bad_version[4] = 99;
    assert!(matches!(
        ModelBundle::from_bytes(&bad_version),
        Err(ServeError::UnsupportedVersion(99))
    ));

    assert!(matches!(
        ModelBundle::from_bytes(&blob[..blob.len() - 5]),
        Err(ServeError::Truncated)
    ));

    let mut trailing = blob.clone();
    trailing.extend_from_slice(&[1, 2, 3]);
    assert!(matches!(
        ModelBundle::from_bytes(&trailing),
        Err(ServeError::TrailingBytes { extra: 3 })
    ));

    assert!(ModelBundle::from_bytes(&[]).is_err());
}

#[test]
fn freeze_rejects_mismatched_class_names() {
    let (graphs, labels) = toy_dataset(4);
    let dm = DeepMap::new(quick_config(FeatureKind::ShortestPath));
    let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    let err = ModelBundle::freeze(&dm, &prepared, pre, &result.model, vec!["only-one".into()])
        .unwrap_err();
    assert!(matches!(err, ServeError::Corrupt(_)), "{err}");
}
