//! Shared validated byte codecs for serving formats.
//!
//! Both persisted bundles (`DMB1`, [`crate::bundle`]) and the network wire
//! protocol (`DMW1`, `deepmap-net`) are hand-rolled little-endian binary
//! formats. They share one [`Reader`] — every read is length-checked and a
//! finished payload must be fully consumed ([`Reader::finish`] rejects
//! trailing bytes) — so a framing bug fixed here is fixed for both formats
//! at once.
//!
//! On top of the reader sit the two payload codecs the wire format carries:
//!
//! - **graphs** ([`encode_graph`]/[`decode_graph`]) — vertex count, labels,
//!   and the undirected edge list; decoding rebuilds the graph through
//!   [`deepmap_graph::builder::graph_from_edges`], so structural
//!   invariants (endpoints in range, no self-loops) are re-validated on
//!   every decode, not trusted from the sender;
//! - **predictions** ([`encode_prediction`]/[`decode_prediction`]) — the
//!   argmax class plus the full softmax score vector.

use crate::bundle::Prediction;
use crate::error::ServeError;
use deepmap_graph::builder::graph_from_edges;
use deepmap_graph::Graph;

/// A length-checked little-endian reader over a byte payload.
///
/// Every accessor fails with [`ServeError::Truncated`] instead of panicking
/// when the payload ends early, and [`Reader::finish`] fails with
/// [`ServeError::TrailingBytes`] when bytes remain after the last declared
/// section — the two framing rules every serving format here shares.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// The next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        if n > self.data.len() - self.pos {
            return Err(ServeError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// The next byte.
    pub fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    /// The next little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// The next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// The next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// The next little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, ServeError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// The next little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Asserts the payload is fully consumed; rejects trailing bytes.
    pub fn finish(self) -> Result<(), ServeError> {
        if self.remaining() != 0 {
            return Err(ServeError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Serialises a graph: `u32 n_vertices | u32 n_edges | n_vertices × u32
/// label | n_edges × (u32 u, u32 v)` with `u < v`, all little-endian.
pub fn encode_graph(graph: &Graph) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * graph.n_vertices() + 8 * graph.n_edges());
    out.extend_from_slice(&(graph.n_vertices() as u32).to_le_bytes());
    out.extend_from_slice(&(graph.n_edges() as u32).to_le_bytes());
    for &label in graph.labels() {
        out.extend_from_slice(&label.to_le_bytes());
    }
    for (u, v) in graph.edges() {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserialises and validates a graph encoded by [`encode_graph`].
///
/// Declared counts are checked against the actual payload length before any
/// allocation, endpoints and self-loops are re-validated by the graph
/// builder, and trailing bytes are rejected — a hostile payload yields a
/// typed [`ServeError`], never a panic or an oversized allocation.
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, ServeError> {
    let mut r = Reader::new(bytes);
    let n_vertices = r.u32()? as usize;
    let n_edges = r.u32()? as usize;
    let declared = 4usize
        .checked_mul(n_vertices)
        .and_then(|l| l.checked_add(8usize.checked_mul(n_edges)?))
        .ok_or(ServeError::Truncated)?;
    if declared > r.remaining() {
        return Err(ServeError::Truncated);
    }
    let mut labels = Vec::with_capacity(n_vertices);
    for _ in 0..n_vertices {
        labels.push(r.u32()?);
    }
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        edges.push((r.u32()?, r.u32()?));
    }
    r.finish()?;
    graph_from_edges(n_vertices, &edges, Some(&labels))
        .map_err(|e| ServeError::Corrupt(format!("invalid graph: {e}")))
}

/// Serialises a prediction: `u32 class | u32 n_scores | n_scores × f32`.
pub fn encode_prediction(prediction: &Prediction) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * prediction.scores.len());
    out.extend_from_slice(&(prediction.class as u32).to_le_bytes());
    out.extend_from_slice(&(prediction.scores.len() as u32).to_le_bytes());
    for &score in &prediction.scores {
        out.extend_from_slice(&score.to_le_bytes());
    }
    out
}

/// Deserialises and validates a prediction encoded by
/// [`encode_prediction`]: the class must index into the score vector and
/// trailing bytes are rejected.
pub fn decode_prediction(bytes: &[u8]) -> Result<Prediction, ServeError> {
    let mut r = Reader::new(bytes);
    let class = r.u32()? as usize;
    let n_scores = r.u32()? as usize;
    if 4 * n_scores > r.remaining() {
        return Err(ServeError::Truncated);
    }
    let mut scores = Vec::with_capacity(n_scores);
    for _ in 0..n_scores {
        scores.push(r.f32()?);
    }
    r.finish()?;
    if class >= scores.len() {
        return Err(ServeError::Corrupt(format!(
            "predicted class {class} out of range for {} scores",
            scores.len()
        )));
    }
    Ok(Prediction { class, scores })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;

    fn sample_graph() -> Graph {
        graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)], Some(&[5, 6, 7, 8])).unwrap()
    }

    #[test]
    fn graph_round_trips() {
        let g = sample_graph();
        let decoded = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(decoded, g);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = graph_from_edges(0, &[], None).unwrap();
        assert_eq!(decode_graph(&encode_graph(&g)).unwrap(), g);
    }

    #[test]
    fn graph_decode_rejects_truncation_at_every_length() {
        let bytes = encode_graph(&sample_graph());
        for cut in 0..bytes.len() {
            let err = decode_graph(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ServeError::Truncated),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn graph_decode_rejects_trailing_bytes() {
        let mut bytes = encode_graph(&sample_graph());
        bytes.push(0xAA);
        assert!(matches!(
            decode_graph(&bytes),
            Err(ServeError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn graph_decode_rejects_structural_garbage() {
        // Edge endpoint out of range.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&9u32.to_le_bytes());
        assert!(matches!(decode_graph(&bytes), Err(ServeError::Corrupt(_))));
        // Self-loop.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(decode_graph(&bytes), Err(ServeError::Corrupt(_))));
    }

    #[test]
    fn huge_declared_counts_fail_before_allocating() {
        // Declares u32::MAX vertices with a 10-byte payload: the length
        // check must fire before any Vec::with_capacity of that size.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        assert!(matches!(decode_graph(&bytes), Err(ServeError::Truncated)));
    }

    #[test]
    fn prediction_round_trips() {
        let p = Prediction {
            class: 1,
            scores: vec![0.25, 0.5, 0.25],
        };
        assert_eq!(decode_prediction(&encode_prediction(&p)).unwrap(), p);
    }

    #[test]
    fn prediction_decode_rejects_bad_class_and_framing() {
        let p = Prediction {
            class: 0,
            scores: vec![1.0],
        };
        let mut bytes = encode_prediction(&p);
        bytes[0] = 7; // class 7 of 1 score
        assert!(matches!(
            decode_prediction(&bytes),
            Err(ServeError::Corrupt(_))
        ));
        let bytes = encode_prediction(&p);
        assert!(matches!(
            decode_prediction(&bytes[..bytes.len() - 1]),
            Err(ServeError::Truncated)
        ));
        let mut bytes = encode_prediction(&p);
        bytes.push(0);
        assert!(matches!(
            decode_prediction(&bytes),
            Err(ServeError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn reader_finish_rejects_leftovers() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert!(matches!(
            r.finish(),
            Err(ServeError::TrailingBytes { extra: 1 })
        ));
        let mut r = Reader::new(&[1, 2, 3]);
        r.take(3).unwrap();
        assert!(r.finish().is_ok());
    }
}
