//! Deterministic fault injection for the inference server (chaos harness).
//!
//! Only compiled under the `fault-inject` cargo feature; production builds
//! carry none of these hooks. A [`FaultPlan`] is keyed by the **batch
//! sequence number** the batcher stamps on every dispatched micro-batch —
//! a single, deterministic counter — so a fixed plan produces the same
//! panics, delays, and dropped replies on every run at any worker count.
//!
//! Three fault kinds, mirroring what real serving fleets see:
//!
//! - **panic** — the worker's `predict_batch` panics mid-batch (poisoned
//!   replica; exercises `catch_unwind`, restart budgets, the breaker);
//! - **latency** — the batch is served after an injected delay (exercises
//!   deadlines and shedding);
//! - **reply drop** — predictions are computed but the replies are
//!   discarded, as if the connection back to the caller vanished
//!   (exercises `wait`'s disconnect path and `wait_timeout`).

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// A deterministic schedule of injected faults, keyed by batch sequence
/// number.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    panic_batches: BTreeSet<u64>,
    latency_batches: BTreeMap<u64, Duration>,
    drop_reply_batches: BTreeSet<u64>,
    /// Open-ended poisoning: every batch with `seq >= panic_from` panics,
    /// regardless of how many batches the server ends up dispatching.
    panic_from: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Panic while serving the given batch sequence numbers.
    pub fn panic_on_batches(mut self, batches: impl IntoIterator<Item = u64>) -> FaultPlan {
        self.panic_batches.extend(batches);
        self
    }

    /// Delay the given batch by `latency` before running inference.
    pub fn latency_on_batch(mut self, batch: u64, latency: Duration) -> FaultPlan {
        self.latency_batches.insert(batch, latency);
        self
    }

    /// Panic on **every** batch from sequence `seq` onward — an open-ended
    /// schedule that poisons a replica pool for good, however many batches
    /// it dispatches. This is the per-tenant kill switch the router's
    /// isolation tests use: one model's pool burns its whole restart budget
    /// and trips its breaker while sibling models (own pools, own plans)
    /// keep serving.
    pub fn panic_from(mut self, seq: u64) -> FaultPlan {
        self.panic_from = Some(seq);
        self
    }

    /// Compute but discard the replies of the given batches.
    pub fn drop_replies_on_batches(mut self, batches: impl IntoIterator<Item = u64>) -> FaultPlan {
        self.drop_reply_batches.extend(batches);
        self
    }

    /// A seed-keyed pseudo-random plan over batches `0..horizon`: each
    /// batch independently panics with probability `panic_rate`, is delayed
    /// by `latency` with probability `latency_rate`, and has its replies
    /// dropped with probability `drop_rate`. The draws come from a
    /// splitmix64 stream, so the same `(seed, horizon, rates)` always
    /// yields the same plan.
    pub fn seeded(
        seed: u64,
        horizon: u64,
        panic_rate: f64,
        latency_rate: f64,
        latency: Duration,
        drop_rate: f64,
    ) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let mut state = seed;
        let mut draw = || {
            state = splitmix64(state);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for batch in 0..horizon {
            if draw() < panic_rate {
                plan.panic_batches.insert(batch);
            }
            if draw() < latency_rate {
                plan.latency_batches.insert(batch, latency);
            }
            if draw() < drop_rate {
                plan.drop_reply_batches.insert(batch);
            }
        }
        plan
    }

    /// Number of batches the plan will panic.
    pub fn planned_panics(&self) -> usize {
        self.panic_batches.len()
    }

    /// Number of batches whose replies the plan will drop.
    pub fn planned_reply_drops(&self) -> usize {
        self.drop_reply_batches.len()
    }

    /// Injected delay for `batch`, if any.
    pub(crate) fn latency_for(&self, batch: u64) -> Option<Duration> {
        self.latency_batches.get(&batch).copied()
    }

    /// Panics if the plan schedules a panic for `batch`. Called inside the
    /// worker's `catch_unwind` scope, standing in for a replica bug.
    pub(crate) fn maybe_panic(&self, batch: u64) {
        if self.panic_batches.contains(&batch) || self.panic_from.is_some_and(|from| batch >= from)
        {
            panic!("fault-inject: planned panic on batch {batch}");
        }
    }

    /// Whether `batch`'s replies should be discarded.
    pub(crate) fn should_drop_replies(&self, batch: u64) -> bool {
        self.drop_reply_batches.contains(&batch)
    }
}

/// The splitmix64 mixer — tiny, seedable, and plenty for fault scheduling
/// (no `rand` dependency in the serving path).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let ms = Duration::from_millis(5);
        let a = FaultPlan::seeded(42, 200, 0.2, 0.1, ms, 0.1);
        let b = FaultPlan::seeded(42, 200, 0.2, 0.1, ms, 0.1);
        assert_eq!(a.panic_batches, b.panic_batches);
        assert_eq!(a.latency_batches, b.latency_batches);
        assert_eq!(a.drop_reply_batches, b.drop_reply_batches);
        let c = FaultPlan::seeded(43, 200, 0.2, 0.1, ms, 0.1);
        assert_ne!(a.panic_batches, c.panic_batches, "different seed, plan");
        assert!(a.planned_panics() > 0, "20% of 200 batches");
    }

    #[test]
    fn explicit_plan_hooks_fire_where_scheduled() {
        let plan = FaultPlan::new()
            .panic_on_batches([3])
            .latency_on_batch(1, Duration::from_millis(7))
            .drop_replies_on_batches([2]);
        plan.maybe_panic(0); // no-op
        assert!(std::panic::catch_unwind(|| plan.maybe_panic(3)).is_err());
        assert_eq!(plan.latency_for(1), Some(Duration::from_millis(7)));
        assert_eq!(plan.latency_for(0), None);
        assert!(plan.should_drop_replies(2));
        assert!(!plan.should_drop_replies(3));
    }

    #[test]
    fn panic_from_is_open_ended() {
        let plan = FaultPlan::new().panic_from(5);
        plan.maybe_panic(4); // below the threshold: no-op
        assert!(std::panic::catch_unwind(|| plan.maybe_panic(5)).is_err());
        assert!(std::panic::catch_unwind(|| plan.maybe_panic(1_000_000)).is_err());
    }
}
