//! Model serving for the DeepMap reproduction.
//!
//! Training produces a classifier entangled with its corpus: the feature
//! vocabulary, the aligned width `w`, the alignment ordering, and the
//! weights are all artefacts of one `prepare`/`fit` run. This crate
//! packages all of it into a deployable unit and serves it:
//!
//! - [`bundle`] — the versioned `DMB1` [`ModelBundle`] format freezing a
//!   trained model (architecture + weights + frozen feature vocabulary +
//!   assembly parameters + class names), and a single-threaded
//!   [`Predictor`] that classifies unseen graphs one at a time or in
//!   bit-identical micro-batches.
//! - [`engine`] — the [`InferenceServer`]: a bounded request queue, a
//!   dynamic micro-batcher (flush on batch size or deadline), a worker
//!   pool of model replicas, and latency/queue-depth counters.
//!
//! Unseen substructures at serve time land in an OOV feature bucket that
//! was all-zero during training (see `deepmap-kernels`' frozen module), so
//! a served prediction is always well-defined, even for graphs unlike
//! anything in the corpus.

#![deny(missing_docs)]

pub mod bundle;
pub mod engine;
pub mod error;

pub use bundle::{ModelBundle, Prediction, Predictor};
pub use engine::{
    InferenceServer, MetricsSnapshot, PredictionHandle, ServedPrediction, ServerConfig,
};
pub use error::ServeError;
