//! Model serving for the DeepMap reproduction.
//!
//! Training produces a classifier entangled with its corpus: the feature
//! vocabulary, the aligned width `w`, the alignment ordering, and the
//! weights are all artefacts of one `prepare`/`fit` run. This crate
//! packages all of it into a deployable unit and serves it — and keeps
//! serving it when inputs are hostile and replicas die:
//!
//! - [`bundle`] — the versioned `DMB1`/`DMB2` [`ModelBundle`] format
//!   freezing a trained model (architecture + weights + frozen feature
//!   vocabulary + assembly parameters + class names, plus an optional
//!   agreement-gated int8 weight section), and a single-threaded
//!   [`Predictor`] that classifies unseen graphs one at a time or in
//!   bit-identical micro-batches, at an explicit [`Precision`].
//! - [`codec`] — the shared validated byte codecs: one length-checked,
//!   trailing-byte-rejecting [`codec::Reader`] reused by the bundle format
//!   and the `deepmap-net` wire protocol, plus graph and prediction
//!   encoders/decoders.
//! - [`engine`] — the [`InferenceServer`]: a bounded request queue, a
//!   dynamic micro-batcher (flush on batch size or deadline), a worker
//!   pool of model replicas, and latency/queue-depth counters.
//! - [`limits`] — [`GraphLimits`] admission control: degenerate or
//!   pathologically large graphs are refused at `submit`, before they
//!   reach feature extraction.
//! - [`supervise`] — worker supervision: panicking replicas are caught
//!   and respawned under a bounded restart budget; an exhausted budget
//!   trips a circuit breaker that fast-fails submissions until a
//!   cool-down probe succeeds. [`InferenceServer::health`] reports
//!   [`Health::Ready`]/[`Health::Degraded`]/[`Health::Unavailable`].
//! - [`fault`] *(feature `fault-inject` only)* — a deterministic,
//!   seed-keyed [`FaultPlan`](fault::FaultPlan) injecting worker panics,
//!   latency, and dropped replies for chaos testing.
//!
//! Unseen substructures at serve time land in an OOV feature bucket that
//! was all-zero during training (see `deepmap-kernels`' frozen module), so
//! a served prediction is always well-defined, even for graphs unlike
//! anything in the corpus.

#![deny(missing_docs)]

pub mod bundle;
pub mod codec;
pub mod engine;
pub mod error;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod limits;
pub mod supervise;

pub use bundle::{ModelBundle, Precision, Prediction, Predictor};
pub use engine::{
    InferenceServer, MetricsSnapshot, PredictionHandle, ServedPrediction, ServerConfig,
};
pub use error::ServeError;
#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
pub use limits::GraphLimits;
pub use supervise::{BreakerState, Health, ResilienceConfig};

// Request-scoped tracing vocabulary, re-exported so serve-tier callers
// (router, net) need not depend on deepmap-obs directly for it.
pub use deepmap_obs::{FlightRecorder, RequestCtx, RequestRecord, SloConfig, Stage, TraceOutcome};
