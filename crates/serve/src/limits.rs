//! Admission control for the inference server.
//!
//! Receptive-field construction has per-graph cost that grows with vertex
//! count and BFS fan-out, so a serving layer must bound its inputs rather
//! than feed whatever arrives straight into feature extraction. A
//! [`GraphLimits`] is checked at [`crate::InferenceServer::submit`] time;
//! a graph that violates it is refused with
//! [`ServeError::Rejected`](crate::ServeError::Rejected) *before* it
//! consumes queue space or worker time.

use deepmap_graph::Graph;

/// Per-request admission rules enforced at `submit`.
///
/// The default rejects only empty graphs (which have no receptive fields to
/// extract) and leaves sizes unbounded; production deployments should set
/// explicit ceilings sized to their latency budget.
#[derive(Debug, Clone, Default)]
pub struct GraphLimits {
    /// Reject graphs with more vertices than this.
    pub max_vertices: Option<usize>,
    /// Reject graphs with more (undirected) edges than this.
    pub max_edges: Option<usize>,
    /// Reject graphs with zero vertices.
    pub reject_empty: bool,
    /// Reject graphs carrying a vertex label outside the bundle's training
    /// alphabet. Only enforceable when the bundle records one (the WL
    /// feature family does; graphlet and shortest-path vocabularies do not
    /// retain a recoverable label set, so the check is skipped for them).
    pub check_label_alphabet: bool,
}

impl GraphLimits {
    /// The default policy: empty graphs rejected, everything else admitted.
    pub fn new() -> GraphLimits {
        GraphLimits {
            reject_empty: true,
            ..GraphLimits::default()
        }
    }

    /// A policy admitting everything, including empty graphs.
    pub fn unrestricted() -> GraphLimits {
        GraphLimits::default()
    }

    /// Checks `graph` against the limits. `alphabet` is the bundle's sorted
    /// training label alphabet, if it records one. Returns the rejection
    /// reason on violation.
    pub fn check(&self, graph: &Graph, alphabet: Option<&[u32]>) -> Result<(), String> {
        if self.reject_empty && graph.is_empty() {
            return Err("graph is empty".to_string());
        }
        if let Some(max) = self.max_vertices {
            let n = graph.n_vertices();
            if n > max {
                return Err(format!("graph has {n} vertices, limit is {max}"));
            }
        }
        if let Some(max) = self.max_edges {
            let n = graph.n_edges();
            if n > max {
                return Err(format!("graph has {n} edges, limit is {max}"));
            }
        }
        if self.check_label_alphabet {
            if let Some(alphabet) = alphabet {
                for &label in graph.labels() {
                    if alphabet.binary_search(&label).is_err() {
                        return Err(format!(
                            "vertex label {label} is outside the training alphabet \
                             ({} known labels)",
                            alphabet.len()
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;

    fn path3(labels: [u32; 3]) -> Graph {
        graph_from_edges(3, &[(0, 1), (1, 2)], Some(&labels)).unwrap()
    }

    #[test]
    fn default_rejects_only_empty() {
        let limits = GraphLimits::new();
        let empty = graph_from_edges(0, &[], None).unwrap();
        assert!(limits.check(&empty, None).unwrap_err().contains("empty"));
        assert!(limits.check(&path3([1, 1, 1]), None).is_ok());
        assert!(GraphLimits::unrestricted().check(&empty, None).is_ok());
    }

    #[test]
    fn size_ceilings_name_the_violation() {
        let limits = GraphLimits {
            max_vertices: Some(2),
            ..GraphLimits::new()
        };
        let err = limits.check(&path3([1, 1, 1]), None).unwrap_err();
        assert!(err.contains("3 vertices"), "{err}");
        let limits = GraphLimits {
            max_edges: Some(1),
            ..GraphLimits::new()
        };
        let err = limits.check(&path3([1, 1, 1]), None).unwrap_err();
        assert!(err.contains("2 edges"), "{err}");
    }

    #[test]
    fn alphabet_check_is_optional_and_needs_an_alphabet() {
        let graph = path3([1, 9, 1]);
        let alphabet = [0u32, 1];
        let off = GraphLimits::new();
        assert!(off.check(&graph, Some(&alphabet)).is_ok());
        let on = GraphLimits {
            check_label_alphabet: true,
            ..GraphLimits::new()
        };
        let err = on.check(&graph, Some(&alphabet)).unwrap_err();
        assert!(err.contains("label 9"), "{err}");
        assert!(on.check(&path3([0, 1, 0]), Some(&alphabet)).is_ok());
        // No recorded alphabet: the check cannot run, graphs pass.
        assert!(on.check(&graph, None).is_ok());
    }
}
