//! Typed serving errors.

use deepmap_nn::persist::PersistError;
use std::fmt;

/// Errors from bundle (de)serialisation and the inference server.
#[derive(Debug)]
pub enum ServeError {
    /// The payload does not start with the `DMB1` or `DMB2` magic.
    BadMagic,
    /// The bundle declares a format version this build cannot read.
    UnsupportedVersion(
        /// The declared version.
        u32,
    ),
    /// Int8 serving was requested for a bundle without a quantized
    /// (`DMB2`) weight section. Run [`crate::ModelBundle::quantize`] on
    /// the bundle first.
    NoQuantizedWeights,
    /// [`crate::ModelBundle::quantize`] refused to attach int8 weights
    /// because the quantized model disagreed with f32 on too many probe
    /// graphs. The bundle is unchanged.
    QuantizationRejected {
        /// Fraction of probes where int8 and f32 picked the same class.
        agreement: f64,
        /// The minimum agreement the caller demanded.
        required: f64,
    },
    /// The payload ended before the declared data.
    Truncated,
    /// The payload contains bytes beyond the declared data.
    TrailingBytes {
        /// Number of unexpected bytes after the last section.
        extra: usize,
    },
    /// A section of the payload is structurally invalid.
    Corrupt(String),
    /// The embedded weight checkpoint does not load into the declared
    /// architecture.
    Persist(PersistError),
    /// Filesystem error while saving or loading a bundle.
    Io(String),
    /// The server's bounded request queue is full (backpressure).
    QueueFull,
    /// The serving tier's in-flight budget is exhausted (backpressure at
    /// the network edge, before the request reaches the engine queue).
    /// Distinct from [`ServeError::Rejected`] (admission control) and
    /// [`ServeError::CircuitOpen`] (breaker): retrying after a short pause
    /// is expected to succeed.
    Busy,
    /// The server shut down before answering the request.
    Shutdown,
    /// Admission control refused the request (see
    /// [`crate::limits::GraphLimits`]).
    Rejected {
        /// Why the graph was refused (e.g. "graph has 100001 vertices,
        /// limit is 100000").
        reason: String,
    },
    /// The request's deadline expired before a worker could serve it; the
    /// batcher shed it without running inference.
    DeadlineExceeded,
    /// [`crate::PredictionHandle::wait_timeout`] gave up before the reply
    /// arrived. The request is still in flight; waiting again may succeed.
    WaitTimeout,
    /// The worker serving this request's micro-batch panicked. The replica
    /// is respawned by the supervisor; resubmitting is safe.
    WorkerPanic,
    /// The circuit breaker is open (the worker restart budget was
    /// exhausted); submissions fast-fail until a cool-down probe succeeds.
    CircuitOpen,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadMagic => write!(f, "not a DMB1/DMB2 model bundle"),
            ServeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported bundle version {v} (this build reads versions 1 and 2)"
                )
            }
            ServeError::NoQuantizedWeights => {
                write!(
                    f,
                    "int8 serving requires a DMB2 bundle with quantized weights"
                )
            }
            ServeError::QuantizationRejected {
                agreement,
                required,
            } => {
                write!(
                    f,
                    "quantization rejected: int8/f32 prediction agreement {agreement:.4} \
                     below required {required:.4}"
                )
            }
            ServeError::Truncated => write!(f, "bundle truncated"),
            ServeError::TrailingBytes { extra } => {
                write!(
                    f,
                    "bundle has {extra} trailing bytes after the last section"
                )
            }
            ServeError::Corrupt(what) => write!(f, "corrupt bundle: {what}"),
            ServeError::Persist(e) => write!(f, "bundle weights: {e}"),
            ServeError::Io(e) => write!(f, "bundle io: {e}"),
            ServeError::QueueFull => write!(f, "inference queue full"),
            ServeError::Busy => write!(f, "server busy: in-flight request budget exhausted"),
            ServeError::Shutdown => write!(f, "inference server shut down"),
            ServeError::Rejected { reason } => write!(f, "request rejected: {reason}"),
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired before dispatch")
            }
            ServeError::WaitTimeout => write!(f, "timed out waiting for the prediction"),
            ServeError::WorkerPanic => write!(f, "inference worker panicked serving this batch"),
            ServeError::CircuitOpen => {
                write!(f, "circuit breaker open: inference temporarily unavailable")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
