//! Worker supervision: restart budgets, the circuit breaker, and health.
//!
//! A worker whose `predict_batch` panics has a poisoned replica: its model
//! caches intermediate activations, so nothing about its state can be
//! trusted. The supervisor's contract is
//!
//! 1. the poisoned batch's callers are answered with
//!    [`ServeError::WorkerPanic`](crate::ServeError::WorkerPanic) — never
//!    left hanging;
//! 2. the replica is **respawned** (rebuilt from the bundle) after an
//!    exponential backoff, drawing from a bounded, server-wide restart
//!    budget;
//! 3. an exhausted budget **trips the circuit breaker**: the worker stays
//!    down, and new submissions fast-fail with
//!    [`ServeError::CircuitOpen`](crate::ServeError::CircuitOpen) until a
//!    cool-down has passed and a single probe request succeeds end to end.
//!
//! The breaker is the classic three-state machine: `Closed` (normal
//! service) → `Open` (fast-fail) → `HalfOpen` (one probe in flight) →
//! `Closed` on probe success, back to `Open` on probe failure. Closing the
//! breaker also refills the restart budget — recovery is a clean slate.

use deepmap_obs::Gauge;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Resilience knobs for [`crate::InferenceServer::start_with`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Admission rules checked at `submit`.
    pub limits: crate::limits::GraphLimits,
    /// Deadline attached to requests submitted without an explicit one
    /// (`None`: requests never expire).
    pub default_deadline: Option<Duration>,
    /// Server-wide budget of worker-replica restarts before the circuit
    /// breaker trips.
    pub max_restarts: u32,
    /// Backoff before the first restart; doubles per restart already used.
    pub restart_backoff: Duration,
    /// How long an open breaker fast-fails before admitting a probe.
    pub breaker_cooldown: Duration,
    /// Optional latency/error SLO. When set, the engine tracks fast/slow
    /// burn rates against the budget and `health()` reports `Degraded`
    /// while both windows burn at ≥ 1.0 — SLO burn degrades health even
    /// when the breaker is closed and every replica is live.
    pub slo: Option<deepmap_obs::SloConfig>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            limits: crate::limits::GraphLimits::new(),
            default_deadline: None,
            max_restarts: 3,
            restart_backoff: Duration::from_millis(10),
            breaker_cooldown: Duration::from_millis(100),
            slo: None,
        }
    }
}

/// Point-in-time server health, from [`crate::InferenceServer::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Breaker closed, every worker replica live.
    Ready,
    /// Serving, but below full strength: some workers are restarting or
    /// permanently down, or the breaker is half-open (probe in flight).
    Degraded {
        /// Workers currently able to take batches.
        live_workers: usize,
    },
    /// Not serving: the breaker is open, no worker is live, or the server
    /// has shut down.
    Unavailable,
}

/// Circuit breaker states, exposed through the `serve.breaker_state` gauge
/// (0 = closed, 1 = half-open, 2 = open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal service.
    Closed,
    /// One probe request admitted; everything else fast-fails.
    HalfOpen,
    /// Fast-failing all submissions until the cool-down passes.
    Open,
}

impl BreakerState {
    /// The gauge encoding of this state.
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

struct BreakerInner {
    state: BreakerState,
    opened_at: Option<Instant>,
}

/// Outcome of [`Supervisor::admit`].
pub(crate) enum Admission {
    /// Serve normally.
    Normal,
    /// Serve, and report the outcome back as the breaker's probe.
    Probe,
    /// Fast-fail with `CircuitOpen`.
    Refused,
}

/// Shared supervision state: breaker, restart budget, live-worker count,
/// and the deterministic batch sequence.
pub(crate) struct Supervisor {
    total_workers: usize,
    max_restarts: u32,
    restart_backoff: Duration,
    breaker_cooldown: Duration,
    restarts_used: AtomicU32,
    live_workers: AtomicUsize,
    breaker: Mutex<BreakerInner>,
    batch_seq: AtomicU64,
    /// Mirrors the breaker state into `serve.breaker_state` (0/1/2).
    breaker_gauge: Arc<Gauge>,
}

impl Supervisor {
    pub(crate) fn new(
        total_workers: usize,
        config: &ResilienceConfig,
        breaker_gauge: Arc<Gauge>,
    ) -> Supervisor {
        breaker_gauge.set(BreakerState::Closed.as_gauge());
        Supervisor {
            total_workers,
            max_restarts: config.max_restarts,
            restart_backoff: config.restart_backoff,
            breaker_cooldown: config.breaker_cooldown,
            restarts_used: AtomicU32::new(0),
            live_workers: AtomicUsize::new(total_workers),
            breaker: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                opened_at: None,
            }),
            batch_seq: AtomicU64::new(0),
            breaker_gauge,
        }
    }

    /// The next batch sequence number. Stamped by the single batcher thread
    /// in dispatch order, so a fixed request order yields a fixed numbering
    /// regardless of worker count — the hook deterministic fault plans key
    /// on.
    pub(crate) fn next_batch_seq(&self) -> u64 {
        self.batch_seq.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn live_workers(&self) -> usize {
        self.live_workers.load(Ordering::Relaxed)
    }

    pub(crate) fn total_workers(&self) -> usize {
        self.total_workers
    }

    pub(crate) fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().expect("breaker lock").state
    }

    /// Admission decision for one submission.
    pub(crate) fn admit(&self) -> Admission {
        let mut breaker = self.breaker.lock().expect("breaker lock");
        match breaker.state {
            BreakerState::Closed => Admission::Normal,
            BreakerState::HalfOpen => Admission::Refused,
            BreakerState::Open => {
                let cooled = breaker
                    .opened_at
                    .is_none_or(|at| at.elapsed() >= self.breaker_cooldown);
                if cooled && self.live_workers() > 0 {
                    breaker.state = BreakerState::HalfOpen;
                    self.breaker_gauge.set(BreakerState::HalfOpen.as_gauge());
                    Admission::Probe
                } else {
                    Admission::Refused
                }
            }
        }
    }

    /// The probe completed successfully: close the breaker and refill the
    /// restart budget.
    pub(crate) fn probe_succeeded(&self) {
        let mut breaker = self.breaker.lock().expect("breaker lock");
        breaker.state = BreakerState::Closed;
        breaker.opened_at = None;
        self.breaker_gauge.set(BreakerState::Closed.as_gauge());
        self.restarts_used.store(0, Ordering::Relaxed);
    }

    /// The probe failed (worker panic, shed, or the request never made it
    /// into the queue): reopen and restart the cool-down clock.
    pub(crate) fn probe_failed(&self) {
        let mut breaker = self.breaker.lock().expect("breaker lock");
        breaker.state = BreakerState::Open;
        breaker.opened_at = Some(Instant::now());
        self.breaker_gauge.set(BreakerState::Open.as_gauge());
    }

    /// Trips the breaker (restart budget exhausted or last worker down).
    pub(crate) fn trip(&self) {
        let mut breaker = self.breaker.lock().expect("breaker lock");
        breaker.state = BreakerState::Open;
        breaker.opened_at = Some(Instant::now());
        self.breaker_gauge.set(BreakerState::Open.as_gauge());
    }

    /// A worker replica went down (panic observed).
    pub(crate) fn worker_down(&self) {
        self.live_workers.fetch_sub(1, Ordering::Relaxed);
    }

    /// A worker replica came back up after a respawn.
    pub(crate) fn worker_up(&self) {
        self.live_workers.fetch_add(1, Ordering::Relaxed);
    }

    /// Tries to draw one restart from the budget. Returns the backoff to
    /// sleep before respawning, or `None` when the budget is exhausted
    /// (the caller must stay down and trip the breaker).
    pub(crate) fn try_restart(&self) -> Option<Duration> {
        let used = self
            .restarts_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                if used < self.max_restarts {
                    Some(used + 1)
                } else {
                    None
                }
            });
        match used {
            Ok(prev) => Some(self.restart_backoff.saturating_mul(1 << prev.min(16))),
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supervisor(max_restarts: u32, cooldown: Duration) -> Supervisor {
        Supervisor::new(
            2,
            &ResilienceConfig {
                max_restarts,
                restart_backoff: Duration::from_millis(1),
                breaker_cooldown: cooldown,
                ..ResilienceConfig::default()
            },
            Arc::new(Gauge::new()),
        )
    }

    #[test]
    fn restart_budget_is_bounded_with_doubling_backoff() {
        let s = supervisor(2, Duration::from_millis(5));
        assert_eq!(s.try_restart(), Some(Duration::from_millis(1)));
        assert_eq!(s.try_restart(), Some(Duration::from_millis(2)));
        assert_eq!(s.try_restart(), None, "budget of 2 exhausted");
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let s = supervisor(0, Duration::from_millis(0));
        assert!(matches!(s.admit(), Admission::Normal));
        s.trip();
        assert_eq!(s.breaker_state(), BreakerState::Open);
        // Zero cool-down: the very next admit becomes the probe…
        assert!(matches!(s.admit(), Admission::Probe));
        // …and everything behind it fast-fails.
        assert!(matches!(s.admit(), Admission::Refused));
        s.probe_succeeded();
        assert_eq!(s.breaker_state(), BreakerState::Closed);
        assert!(matches!(s.admit(), Admission::Normal));
    }

    #[test]
    fn failed_probe_reopens_and_cooldown_holds() {
        let s = supervisor(0, Duration::from_secs(3600));
        s.trip();
        // A long cool-down: no probe admitted while it holds.
        assert!(matches!(s.admit(), Admission::Refused));
        let quick = supervisor(0, Duration::from_millis(0));
        quick.trip();
        assert!(matches!(quick.admit(), Admission::Probe));
        quick.probe_failed();
        assert_eq!(quick.breaker_state(), BreakerState::Open);
    }

    #[test]
    fn probe_success_refills_restart_budget() {
        let s = supervisor(1, Duration::from_millis(0));
        assert!(s.try_restart().is_some());
        assert!(s.try_restart().is_none());
        s.trip();
        assert!(matches!(s.admit(), Admission::Probe));
        s.probe_succeeded();
        assert!(s.try_restart().is_some(), "recovery resets the budget");
    }

    #[test]
    fn no_probe_without_live_workers() {
        let s = supervisor(0, Duration::from_millis(0));
        s.worker_down();
        s.worker_down();
        s.trip();
        assert!(matches!(s.admit(), Admission::Refused));
        s.worker_up();
        assert!(matches!(s.admit(), Admission::Probe));
    }
}
