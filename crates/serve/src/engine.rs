//! The micro-batching inference server.
//!
//! ```text
//! submit() → bounded request queue → batcher thread → worker pool
//! ```
//!
//! Callers submit graphs into a bounded queue (a full queue rejects with
//! [`ServeError::QueueFull`] — backpressure, not unbounded memory). A
//! batcher thread groups requests dynamically: a batch is flushed as soon
//! as it reaches [`ServerConfig::max_batch`] requests or the oldest request
//! in it has waited [`ServerConfig::max_wait`]. Workers each own a private
//! [`Predictor`] (models cache activations, so they cannot be shared) and
//! answer every request in the batch with its prediction, latency, and the
//! batch size it rode in.
//!
//! Batching trades a bounded amount of queueing latency for throughput: the
//! convolution stack runs once per batch instead of once per graph, which
//! amortises per-call overhead. Predictions are bit-identical to the
//! unbatched path (see [`Predictor::predict_batch`]).

use crate::bundle::{ModelBundle, Predictor};
use crate::error::ServeError;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use deepmap_graph::Graph;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Inference server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of worker threads (each owns a model replica).
    pub workers: usize,
    /// Bound of the request queue; a full queue rejects submissions.
    pub queue_capacity: usize,
    /// Flush a batch at this many requests.
    pub max_batch: usize,
    /// Flush a batch when its oldest request has waited this long.
    pub max_wait: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// A completed prediction as served: the classification plus serving
/// telemetry.
#[derive(Debug, Clone)]
pub struct ServedPrediction {
    /// Predicted class id.
    pub class: usize,
    /// Softmax class scores, indexed by class id.
    pub scores: Vec<f32>,
    /// Submit-to-reply time.
    pub latency: Duration,
    /// Size of the micro-batch this request was served in.
    pub batch_size: usize,
}

struct Request {
    graph: Graph,
    submitted: Instant,
    reply: mpsc::Sender<ServedPrediction>,
}

/// Waits for one submitted request's prediction.
pub struct PredictionHandle {
    rx: mpsc::Receiver<ServedPrediction>,
}

impl PredictionHandle {
    /// Blocks until the prediction arrives (or the server shuts down).
    pub fn wait(self) -> Result<ServedPrediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Shutdown)
    }
}

#[derive(Default)]
struct MetricsInner {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    queue_depth: AtomicUsize,
    peak_queue_depth: AtomicUsize,
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Micro-batches dispatched to workers.
    pub batches: u64,
    /// Requests that rode in a batch of size ≥ 2.
    pub batched_requests: u64,
    /// Requests currently queued (accepted, not yet dispatched).
    pub queue_depth: usize,
    /// Maximum observed queue depth.
    pub peak_queue_depth: usize,
}

/// Handle on the running server: submit requests, read metrics, shut down.
pub struct InferenceServer {
    tx: Option<Sender<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<MetricsInner>,
}

impl InferenceServer {
    /// Starts the batcher and `config.workers` worker threads over a shared
    /// bundle. Each worker rebuilds its own model replica from the bundle.
    pub fn start(
        bundle: Arc<ModelBundle>,
        config: ServerConfig,
    ) -> Result<InferenceServer, ServeError> {
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            max_batch: config.max_batch.max(1),
            ..config
        };
        // Fail fast if the bundle cannot produce a predictor at all.
        bundle.predictor()?;
        let metrics = Arc::new(MetricsInner::default());
        let (req_tx, req_rx) = bounded::<Request>(config.queue_capacity);
        let (batch_tx, batch_rx) = bounded::<Vec<Request>>(config.workers * 2);
        let batcher = {
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || run_batcher(req_rx, batch_tx, config, metrics))
        };
        let workers = (0..config.workers)
            .map(|_| {
                let bundle = Arc::clone(&bundle);
                let batch_rx = batch_rx.clone();
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || {
                    let mut predictor = bundle.predictor().expect("validated at start");
                    run_worker(&mut predictor, batch_rx, metrics);
                })
            })
            .collect();
        Ok(InferenceServer {
            tx: Some(req_tx),
            batcher: Some(batcher),
            workers,
            metrics,
        })
    }

    /// Enqueues a graph for classification. Fails with
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity and
    /// [`ServeError::Shutdown`] after [`InferenceServer::shutdown`].
    pub fn submit(&self, graph: Graph) -> Result<PredictionHandle, ServeError> {
        let tx = self.tx.as_ref().ok_or(ServeError::Shutdown)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        let request = Request {
            graph,
            submitted: Instant::now(),
            reply: reply_tx,
        };
        match tx.try_send(request) {
            Ok(()) => {
                self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                let depth = self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                self.metrics
                    .peak_queue_depth
                    .fetch_max(depth, Ordering::Relaxed);
                Ok(PredictionHandle { rx: reply_rx })
            }
            Err(_) => {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::QueueFull)
            }
        }
    }

    /// Submits and blocks for the answer (convenience for synchronous
    /// callers).
    pub fn predict(&self, graph: Graph) -> Result<ServedPrediction, ServeError> {
        self.submit(graph)?.wait()
    }

    /// Current counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.metrics.submitted.load(Ordering::Relaxed),
            rejected: self.metrics.rejected.load(Ordering::Relaxed),
            completed: self.metrics.completed.load(Ordering::Relaxed),
            batches: self.metrics.batches.load(Ordering::Relaxed),
            batched_requests: self.metrics.batched_requests.load(Ordering::Relaxed),
            queue_depth: self.metrics.queue_depth.load(Ordering::Relaxed),
            peak_queue_depth: self.metrics.peak_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting requests, drains the queue, and joins every thread.
    /// Already-accepted requests are still answered.
    pub fn shutdown(&mut self) {
        self.tx = None; // Closes the request channel; the batcher drains and exits.
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_batcher(
    req_rx: Receiver<Request>,
    batch_tx: Sender<Vec<Request>>,
    config: ServerConfig,
    metrics: Arc<MetricsInner>,
) {
    // Blocks for the first request of each batch, then keeps collecting
    // until the batch is full or the first request's deadline passes.
    while let Ok(first) = req_rx.recv() {
        let mut batch = vec![first];
        if config.max_batch > 1 {
            let deadline = Instant::now() + config.max_wait;
            while batch.len() < config.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match req_rx.recv_timeout(deadline - now) {
                    Ok(req) => batch.push(req),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        metrics
            .queue_depth
            .fetch_sub(batch.len(), Ordering::Relaxed);
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        if batch.len() > 1 {
            metrics
                .batched_requests
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        if batch_tx.send(batch).is_err() {
            return; // Workers are gone; nothing useful left to do.
        }
    }
    // Request channel closed: dropping batch_tx lets the workers drain out.
}

fn run_worker(
    predictor: &mut Predictor,
    batch_rx: Receiver<Vec<Request>>,
    metrics: Arc<MetricsInner>,
) {
    while let Ok(batch) = batch_rx.recv() {
        let batch_size = batch.len();
        let graphs: Vec<&Graph> = batch.iter().map(|r| &r.graph).collect();
        let predictions = predictor.predict_batch(&graphs);
        for (request, prediction) in batch.iter().zip(predictions) {
            let served = ServedPrediction {
                class: prediction.class,
                scores: prediction.scores,
                latency: request.submitted.elapsed(),
                batch_size,
            };
            metrics.completed.fetch_add(1, Ordering::Relaxed);
            // A dropped handle just means the caller stopped waiting.
            let _ = request.reply.send(served);
        }
    }
}
