//! The micro-batching inference server.
//!
//! ```text
//! submit() → bounded request queue → batcher thread → worker pool
//! ```
//!
//! Callers submit graphs into a bounded queue (a full queue rejects with
//! [`ServeError::QueueFull`] — backpressure, not unbounded memory). A
//! batcher thread groups requests dynamically: a batch is flushed as soon
//! as it reaches [`ServerConfig::max_batch`] requests or the oldest request
//! in it has waited [`ServerConfig::max_wait`]. Workers each own a private
//! [`Predictor`] (models cache activations, so they cannot be shared) and
//! answer every request in the batch with its prediction, latency, and the
//! batch size it rode in.
//!
//! Batching trades a bounded amount of queueing latency for throughput: the
//! convolution stack runs once per batch instead of once per graph, which
//! amortises per-call overhead. Predictions are bit-identical to the
//! unbatched path (see [`Predictor::predict_batch`]).

use crate::bundle::{ModelBundle, Predictor};
use crate::error::ServeError;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use deepmap_graph::Graph;
use deepmap_obs::{Counter, Gauge, Histogram, Registry, TraceLevel};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Inference server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of worker threads (each owns a model replica).
    pub workers: usize,
    /// Bound of the request queue; a full queue rejects submissions.
    pub queue_capacity: usize,
    /// Flush a batch at this many requests.
    pub max_batch: usize,
    /// Flush a batch when its oldest request has waited this long.
    pub max_wait: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// A completed prediction as served: the classification plus serving
/// telemetry.
#[derive(Debug, Clone)]
pub struct ServedPrediction {
    /// Predicted class id.
    pub class: usize,
    /// Softmax class scores, indexed by class id.
    pub scores: Vec<f32>,
    /// Submit-to-reply time.
    pub latency: Duration,
    /// Size of the micro-batch this request was served in.
    pub batch_size: usize,
}

struct Request {
    graph: Graph,
    submitted: Instant,
    reply: mpsc::Sender<ServedPrediction>,
}

/// Waits for one submitted request's prediction.
pub struct PredictionHandle {
    rx: mpsc::Receiver<ServedPrediction>,
}

impl PredictionHandle {
    /// Blocks until the prediction arrives (or the server shuts down).
    pub fn wait(self) -> Result<ServedPrediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Shutdown)
    }
}

/// The server's instruments, registered on a dedicated `deepmap-obs`
/// registry so server and batch metrics share one vocabulary (and one
/// Prometheus rendering). The registry is always live — serving metrics are
/// part of the server's contract regardless of `DEEPMAP_TRACE`.
struct ServerMetrics {
    registry: Arc<Registry>,
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    completed: Arc<Counter>,
    batches: Arc<Counter>,
    batched_requests: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    latency_seconds: Arc<Histogram>,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = Arc::new(Registry::new(TraceLevel::Summary));
        ServerMetrics {
            submitted: registry.counter("serve.requests_submitted"),
            rejected: registry.counter("serve.requests_rejected"),
            completed: registry.counter("serve.requests_completed"),
            batches: registry.counter("serve.batches_dispatched"),
            batched_requests: registry.counter("serve.batched_requests"),
            queue_depth: registry.gauge("serve.queue_depth"),
            latency_seconds: registry.histogram("serve.latency_seconds"),
            registry,
        }
    }
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Micro-batches dispatched to workers.
    pub batches: u64,
    /// Requests that rode in a batch of size ≥ 2.
    pub batched_requests: u64,
    /// Requests currently queued (accepted, not yet dispatched).
    pub queue_depth: usize,
    /// Maximum observed queue depth.
    pub peak_queue_depth: usize,
}

/// Handle on the running server: submit requests, read metrics, shut down.
pub struct InferenceServer {
    tx: Option<Sender<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
}

impl InferenceServer {
    /// Starts the batcher and `config.workers` worker threads over a shared
    /// bundle. Each worker rebuilds its own model replica from the bundle.
    pub fn start(
        bundle: Arc<ModelBundle>,
        config: ServerConfig,
    ) -> Result<InferenceServer, ServeError> {
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            max_batch: config.max_batch.max(1),
            ..config
        };
        // Fail fast if the bundle cannot produce a predictor at all.
        bundle.predictor()?;
        let metrics = Arc::new(ServerMetrics::new());
        let (req_tx, req_rx) = bounded::<Request>(config.queue_capacity);
        let (batch_tx, batch_rx) = bounded::<Vec<Request>>(config.workers * 2);
        let batcher = {
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || run_batcher(req_rx, batch_tx, config, metrics))
        };
        let workers = (0..config.workers)
            .map(|_| {
                let bundle = Arc::clone(&bundle);
                let batch_rx = batch_rx.clone();
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || {
                    let mut predictor = bundle.predictor().expect("validated at start");
                    run_worker(&mut predictor, batch_rx, metrics);
                })
            })
            .collect();
        Ok(InferenceServer {
            tx: Some(req_tx),
            batcher: Some(batcher),
            workers,
            metrics,
        })
    }

    /// Enqueues a graph for classification. Fails with
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity and
    /// [`ServeError::Shutdown`] after [`InferenceServer::shutdown`].
    pub fn submit(&self, graph: Graph) -> Result<PredictionHandle, ServeError> {
        let tx = self.tx.as_ref().ok_or(ServeError::Shutdown)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        let request = Request {
            graph,
            submitted: Instant::now(),
            reply: reply_tx,
        };
        match tx.try_send(request) {
            Ok(()) => {
                self.metrics.submitted.inc();
                // The gauge tracks its own high-water mark, which is the
                // peak queue depth.
                self.metrics.queue_depth.add(1);
                Ok(PredictionHandle { rx: reply_rx })
            }
            Err(_) => {
                self.metrics.rejected.inc();
                Err(ServeError::QueueFull)
            }
        }
    }

    /// Submits and blocks for the answer (convenience for synchronous
    /// callers).
    pub fn predict(&self, graph: Graph) -> Result<ServedPrediction, ServeError> {
        self.submit(graph)?.wait()
    }

    /// Current counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.metrics.submitted.get(),
            rejected: self.metrics.rejected.get(),
            completed: self.metrics.completed.get(),
            batches: self.metrics.batches.get(),
            batched_requests: self.metrics.batched_requests.get(),
            queue_depth: self.metrics.queue_depth.get().max(0) as usize,
            peak_queue_depth: self.metrics.queue_depth.max().max(0) as usize,
        }
    }

    /// The `deepmap-obs` registry backing the server's metrics — always
    /// live, independent of `DEEPMAP_TRACE`. Useful for scraping the serve
    /// instruments alongside batch metrics.
    pub fn metrics_registry(&self) -> Arc<Registry> {
        Arc::clone(&self.metrics.registry)
    }

    /// The server's metrics in the Prometheus text exposition format
    /// (counters, queue-depth gauge with `_peak`, latency histogram with
    /// `_bucket`/`_sum`/`_count` series).
    pub fn render_metrics(&self) -> String {
        self.metrics.registry.render_prometheus()
    }

    /// Stops accepting requests, drains the queue, and joins every thread.
    /// Already-accepted requests are still answered.
    pub fn shutdown(&mut self) {
        self.tx = None; // Closes the request channel; the batcher drains and exits.
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_batcher(
    req_rx: Receiver<Request>,
    batch_tx: Sender<Vec<Request>>,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
) {
    // Blocks for the first request of each batch, then keeps collecting
    // until the batch is full or the first request's deadline passes.
    while let Ok(first) = req_rx.recv() {
        let mut batch = vec![first];
        if config.max_batch > 1 {
            let deadline = Instant::now() + config.max_wait;
            while batch.len() < config.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match req_rx.recv_timeout(deadline - now) {
                    Ok(req) => batch.push(req),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        metrics.queue_depth.add(-(batch.len() as i64));
        metrics.batches.inc();
        if batch.len() > 1 {
            metrics.batched_requests.add(batch.len() as u64);
        }
        if batch_tx.send(batch).is_err() {
            return; // Workers are gone; nothing useful left to do.
        }
    }
    // Request channel closed: dropping batch_tx lets the workers drain out.
}

fn run_worker(
    predictor: &mut Predictor,
    batch_rx: Receiver<Vec<Request>>,
    metrics: Arc<ServerMetrics>,
) {
    while let Ok(batch) = batch_rx.recv() {
        let batch_size = batch.len();
        let graphs: Vec<&Graph> = batch.iter().map(|r| &r.graph).collect();
        let predictions = predictor.predict_batch(&graphs);
        for (request, prediction) in batch.iter().zip(predictions) {
            let latency = request.submitted.elapsed();
            let served = ServedPrediction {
                class: prediction.class,
                scores: prediction.scores,
                latency,
                batch_size,
            };
            metrics.completed.inc();
            metrics.latency_seconds.observe(latency.as_secs_f64());
            // A dropped handle just means the caller stopped waiting.
            let _ = request.reply.send(served);
        }
    }
}
