//! The micro-batching inference server.
//!
//! ```text
//! submit() → admission control → bounded request queue → batcher thread
//!          → supervised worker pool (catch_unwind + respawn + breaker)
//! ```
//!
//! Callers submit graphs into a bounded queue (a full queue rejects with
//! [`ServeError::QueueFull`] — backpressure, not unbounded memory). Before
//! a request is queued it passes **admission control**: the circuit breaker
//! must not be open ([`ServeError::CircuitOpen`]) and the graph must satisfy
//! the configured [`GraphLimits`] ([`ServeError::Rejected`]). A batcher
//! thread groups requests dynamically: a batch is flushed as soon as it
//! reaches [`ServerConfig::max_batch`] requests or the oldest request in it
//! has waited [`ServerConfig::max_wait`]. Requests whose **deadline**
//! expired while queued are shed by the batcher — answered with
//! [`ServeError::DeadlineExceeded`] and counted, never silently dropped.
//!
//! Workers each own a private [`Predictor`] (models cache activations, so
//! they cannot be shared) and answer every request in the batch with its
//! prediction, latency, and the batch size it rode in. A panicking
//! `predict_batch` is caught ([`std::panic::catch_unwind`]): the poisoned
//! batch's callers get [`ServeError::WorkerPanic`], and the supervisor
//! respawns the replica after a doubling backoff, drawing from a bounded
//! restart budget. An exhausted budget trips the circuit breaker: new
//! submissions fast-fail until a cool-down passes and a probe request
//! succeeds (see [`crate::supervise`]). [`InferenceServer::health`] reports
//! `Ready` / `Degraded` / `Unavailable` from the same state.
//!
//! Batching trades a bounded amount of queueing latency for throughput: the
//! convolution stack runs once per batch instead of once per graph, which
//! amortises per-call overhead. Predictions are bit-identical to the
//! unbatched path (see [`Predictor::predict_batch`]).

use crate::bundle::{ModelBundle, Precision, Predictor};
use crate::error::ServeError;
#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;
use crate::limits::GraphLimits;
use crate::supervise::{Admission, BreakerState, Health, ResilienceConfig, Supervisor};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use deepmap_graph::Graph;
use deepmap_obs::{
    Counter, FlightRecorder, Gauge, Histogram, Registry, RequestCtx, RequestRecord, SloTracker,
    Stage, TraceLevel, TraceOutcome,
};
use std::panic::AssertUnwindSafe;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The fault plan handle threaded through workers: present only when the
/// `fault-inject` feature is compiled in, a zero-sized unit otherwise.
#[cfg(feature = "fault-inject")]
type FaultHandle = Option<Arc<FaultPlan>>;
#[cfg(not(feature = "fault-inject"))]
type FaultHandle = ();

/// Inference server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of worker threads (each owns a model replica).
    pub workers: usize,
    /// Bound of the request queue; a full queue rejects submissions.
    pub queue_capacity: usize,
    /// Flush a batch at this many requests.
    pub max_batch: usize,
    /// Flush a batch when its oldest request has waited this long.
    pub max_wait: Duration,
    /// Whether requests carry a [`RequestCtx`] (trace id + stage stamps)
    /// and land in the flight recorder. Off, the serve path mints no ids,
    /// takes no stamps, and records nothing.
    pub trace_requests: bool,
    /// How many finished requests the flight recorder retains.
    pub recorder_capacity: usize,
    /// Numeric mode every worker replica serves at. Defaults to
    /// [`Precision::F32`]; [`Precision::Int8`] requires the bundle to
    /// carry quantized (`DMB2`) weights and fails startup otherwise.
    pub precision: Precision,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            trace_requests: true,
            recorder_capacity: 256,
            precision: Precision::F32,
        }
    }
}

/// A completed prediction as served: the classification plus serving
/// telemetry.
#[derive(Debug, Clone)]
pub struct ServedPrediction {
    /// Predicted class id.
    pub class: usize,
    /// Softmax class scores, indexed by class id.
    pub scores: Vec<f32>,
    /// Submit-to-reply time.
    pub latency: Duration,
    /// Size of the micro-batch this request was served in.
    pub batch_size: usize,
}

struct Request {
    graph: Graph,
    submitted: Instant,
    /// Absolute expiry; the batcher sheds the request past it.
    deadline: Option<Instant>,
    /// This request is the circuit breaker's half-open probe: its outcome
    /// closes or reopens the breaker.
    probe: bool,
    /// Trace id + stage stamps, threaded from the edge to the worker.
    ctx: RequestCtx,
    reply: mpsc::Sender<Result<ServedPrediction, ServeError>>,
}

/// One dispatched micro-batch. The sequence number is stamped by the single
/// batcher thread in dispatch order, giving fault plans a deterministic key
/// independent of which worker picks the batch up.
struct Batch {
    seq: u64,
    requests: Vec<Request>,
}

/// Waits for one submitted request's prediction.
#[derive(Debug)]
pub struct PredictionHandle {
    rx: mpsc::Receiver<Result<ServedPrediction, ServeError>>,
    trace_id: u64,
}

impl PredictionHandle {
    /// The request's trace id (0 when the server runs with tracing off) —
    /// the key into the flight recorder and the per-stage exemplars.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Blocks until the prediction (or its typed failure — worker panic,
    /// shed deadline) arrives. [`ServeError::Shutdown`] means the server
    /// dropped the request without answering (it is shutting down).
    pub fn wait(self) -> Result<ServedPrediction, ServeError> {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(ServeError::Shutdown),
        }
    }

    /// Like [`wait`](PredictionHandle::wait), but gives up after `timeout`
    /// with [`ServeError::WaitTimeout`]. The request stays in flight, so a
    /// timed-out handle can be waited on again.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<ServedPrediction, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::WaitTimeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Shutdown),
        }
    }
}

/// The server's instruments, registered on a dedicated `deepmap-obs`
/// registry so server and batch metrics share one vocabulary (and one
/// Prometheus rendering). The registry is always live — serving metrics are
/// part of the server's contract regardless of `DEEPMAP_TRACE`.
struct ServerMetrics {
    registry: Arc<Registry>,
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    rejected_invalid: Arc<Counter>,
    rejected_busy: Arc<Counter>,
    breaker_rejected: Arc<Counter>,
    shed_deadline: Arc<Counter>,
    completed: Arc<Counter>,
    batches: Arc<Counter>,
    batched_requests: Arc<Counter>,
    worker_panics: Arc<Counter>,
    worker_restarts: Arc<Counter>,
    replies_dropped: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    breaker_state: Arc<Gauge>,
    latency_seconds: Arc<Histogram>,
    /// Per-stage latency attribution, each labeled with the stage stamp
    /// that closes its interval (see [`Stage`]); buckets carry exemplar
    /// trace ids pointing into the flight recorder.
    stage_admission: Arc<Histogram>,
    stage_queue: Arc<Histogram>,
    stage_dispatch: Arc<Histogram>,
    stage_infer: Arc<Histogram>,
    /// Request-scoped telemetry rides alongside the instruments because
    /// they travel together everywhere (submit path, batcher, workers).
    recorder: Arc<FlightRecorder>,
    slo: Option<SloTracker>,
}

impl ServerMetrics {
    fn new(
        recorder_capacity: usize,
        slo: Option<deepmap_obs::SloConfig>,
        precision: Precision,
    ) -> ServerMetrics {
        let registry = Arc::new(Registry::new(TraceLevel::Summary));
        // Instruments carry `stage` labels from the trace vocabulary, so a
        // dashboard series and a flight-recorder stamp name the same
        // boundary: a counter labeled `stage="batch_sealed"` moves exactly
        // when `batch_sealed` stamps are taken.
        let enqueued = [("stage", Stage::Enqueued.name())];
        let sealed = [("stage", Stage::BatchSealed.name())];
        let infer_end = [("stage", Stage::InferEnd.name())];
        // End-to-end latency also carries the serving precision, so f32 and
        // int8 deployments chart as distinct series under one metric name.
        let latency_labels = [
            ("stage", Stage::InferEnd.name()),
            ("precision", precision.label()),
        ];
        let slo = slo.map(|config| {
            SloTracker::new(config).with_gauges(
                registry.gauge("serve.slo_burn_fast_milli"),
                registry.gauge("serve.slo_burn_slow_milli"),
            )
        });
        ServerMetrics {
            submitted: registry.counter_labeled("serve.requests_submitted", &enqueued),
            rejected: registry.counter("serve.requests_rejected"),
            rejected_invalid: registry.counter("serve.rejected_invalid"),
            rejected_busy: registry.counter("serve.rejected_busy"),
            breaker_rejected: registry.counter("serve.breaker_rejected"),
            shed_deadline: registry.counter_labeled("serve.requests_shed_deadline", &sealed),
            completed: registry.counter_labeled("serve.requests_completed", &infer_end),
            batches: registry.counter_labeled("serve.batches_dispatched", &sealed),
            batched_requests: registry.counter_labeled("serve.batched_requests", &sealed),
            worker_panics: registry.counter("serve.worker_panics"),
            worker_restarts: registry.counter("serve.worker_restarts"),
            replies_dropped: registry.counter("serve.replies_dropped"),
            queue_depth: registry.gauge("serve.queue_depth"),
            breaker_state: registry.gauge("serve.breaker_state"),
            latency_seconds: registry.histogram_labeled("serve.latency_seconds", &latency_labels),
            stage_admission: registry.histogram_labeled(
                "serve.stage_admission_seconds",
                &[("stage", Stage::Enqueued.name())],
            ),
            stage_queue: registry.histogram_labeled(
                "serve.stage_queue_seconds",
                &[("stage", Stage::BatchSealed.name())],
            ),
            stage_dispatch: registry.histogram_labeled(
                "serve.stage_dispatch_seconds",
                &[("stage", Stage::InferStart.name())],
            ),
            stage_infer: registry.histogram_labeled(
                "serve.stage_infer_seconds",
                &[("stage", Stage::InferEnd.name())],
            ),
            recorder: Arc::new(FlightRecorder::new(recorder_capacity)),
            slo,
            registry,
        }
    }

    /// Records an interval ending at `to` into its stage histogram, with
    /// the request's trace id as the bucket exemplar.
    fn observe_stage(&self, ctx: &RequestCtx, from: Stage, to: Stage, histogram: &Histogram) {
        if let Some(us) = ctx.stage_delta_us(from, to) {
            histogram.observe_with_exemplar(us as f64 / 1e6, ctx.trace_id());
        }
    }

    /// SLO bookkeeping for a request that failed server-side.
    fn slo_error(&self) {
        if let Some(slo) = &self.slo {
            slo.observe_error();
        }
    }
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Requests refused by admission control ([`GraphLimits`]).
    pub rejected_invalid: u64,
    /// Requests refused because the serving tier's in-flight budget was
    /// exhausted ([`ServeError::Busy`]) — bumped by the network front end,
    /// which shares this registry; always 0 for in-process serving.
    pub rejected_busy: u64,
    /// Requests fast-failed by the open circuit breaker.
    pub breaker_rejected: u64,
    /// Accepted requests shed by the batcher because their deadline passed.
    pub shed_deadline: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Micro-batches dispatched to workers.
    pub batches: u64,
    /// Requests that rode in a batch of size ≥ 2.
    pub batched_requests: u64,
    /// Worker panics caught while serving a batch.
    pub worker_panics: u64,
    /// Worker replicas respawned after a panic.
    pub worker_restarts: u64,
    /// Replies discarded by fault injection (always 0 in production).
    pub replies_dropped: u64,
    /// Circuit breaker state: 0 closed, 1 half-open, 2 open.
    pub breaker_state: i64,
    /// Requests currently queued (accepted, not yet picked up).
    pub queue_depth: usize,
    /// Maximum observed queue depth.
    pub peak_queue_depth: usize,
}

/// Handle on the running server: submit requests, read metrics and health,
/// shut down.
pub struct InferenceServer {
    tx: Option<Sender<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
    supervisor: Arc<Supervisor>,
    limits: GraphLimits,
    alphabet: Option<Vec<u32>>,
    default_deadline: Option<Duration>,
    trace_requests: bool,
    precision: Precision,
    bundle: Arc<ModelBundle>,
}

/// Everything a worker thread shares with the server.
struct WorkerShared {
    bundle: Arc<ModelBundle>,
    /// Respawned replicas must come back at the precision the server was
    /// started with, never silently fall back to f32.
    precision: Precision,
    metrics: Arc<ServerMetrics>,
    supervisor: Arc<Supervisor>,
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    fault: FaultHandle,
}

impl WorkerShared {
    #[cfg(feature = "fault-inject")]
    fn inject_latency(&self, seq: u64) {
        if let Some(plan) = &self.fault {
            if let Some(delay) = plan.latency_for(seq) {
                std::thread::sleep(delay);
            }
        }
    }
    #[cfg(not(feature = "fault-inject"))]
    fn inject_latency(&self, _seq: u64) {}

    #[cfg(feature = "fault-inject")]
    fn inject_panic(&self, seq: u64) {
        if let Some(plan) = &self.fault {
            plan.maybe_panic(seq);
        }
    }
    #[cfg(not(feature = "fault-inject"))]
    fn inject_panic(&self, _seq: u64) {}

    #[cfg(feature = "fault-inject")]
    fn should_drop_replies(&self, seq: u64) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|plan| plan.should_drop_replies(seq))
    }
    #[cfg(not(feature = "fault-inject"))]
    fn should_drop_replies(&self, _seq: u64) -> bool {
        false
    }
}

impl InferenceServer {
    /// Starts the batcher and `config.workers` worker threads over a shared
    /// bundle with the default [`ResilienceConfig`]. Each worker owns its
    /// own model replica, built from the bundle before any thread spawns —
    /// a bundle that cannot produce every replica is a startup error, not a
    /// detached worker panic.
    pub fn start(
        bundle: Arc<ModelBundle>,
        config: ServerConfig,
    ) -> Result<InferenceServer, ServeError> {
        Self::start_with(bundle, config, ResilienceConfig::default())
    }

    /// [`start`](InferenceServer::start) with explicit resilience policy:
    /// admission limits, default deadline, restart budget, breaker
    /// cool-down.
    // Without `fault-inject`, `FaultHandle` is `()` and the default() call
    // below is a unit argument.
    #[cfg_attr(not(feature = "fault-inject"), allow(clippy::unit_arg))]
    pub fn start_with(
        bundle: Arc<ModelBundle>,
        config: ServerConfig,
        resilience: ResilienceConfig,
    ) -> Result<InferenceServer, ServeError> {
        Self::start_inner(bundle, config, resilience, FaultHandle::default())
    }

    /// Starts a server with a deterministic [`FaultPlan`] wired into its
    /// workers — the chaos-testing entry point. Only available under the
    /// `fault-inject` feature.
    #[cfg(feature = "fault-inject")]
    pub fn start_chaos(
        bundle: Arc<ModelBundle>,
        config: ServerConfig,
        resilience: ResilienceConfig,
        plan: FaultPlan,
    ) -> Result<InferenceServer, ServeError> {
        Self::start_inner(bundle, config, resilience, Some(Arc::new(plan)))
    }

    // Without `fault-inject`, `FaultHandle` is `()` and the per-worker
    // `fault.clone()` clones a Copy unit.
    #[cfg_attr(not(feature = "fault-inject"), allow(clippy::clone_on_copy))]
    fn start_inner(
        bundle: Arc<ModelBundle>,
        config: ServerConfig,
        resilience: ResilienceConfig,
        fault: FaultHandle,
    ) -> Result<InferenceServer, ServeError> {
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            max_batch: config.max_batch.max(1),
            recorder_capacity: config.recorder_capacity.max(1),
            ..config
        };
        // Build every replica up front so construction failures surface
        // here instead of panicking inside a detached worker thread.
        let predictors = (0..config.workers)
            .map(|_| bundle.predictor_with(config.precision))
            .collect::<Result<Vec<_>, _>>()?;
        let metrics = Arc::new(ServerMetrics::new(
            config.recorder_capacity,
            resilience.slo,
            config.precision,
        ));
        let supervisor = Arc::new(Supervisor::new(
            config.workers,
            &resilience,
            Arc::clone(&metrics.breaker_state),
        ));
        let alphabet = bundle.label_alphabet();
        let (req_tx, req_rx) = bounded::<Request>(config.queue_capacity);
        let (batch_tx, batch_rx) = bounded::<Batch>(config.workers * 2);
        let batcher = {
            let metrics = Arc::clone(&metrics);
            let supervisor = Arc::clone(&supervisor);
            std::thread::spawn(move || run_batcher(req_rx, batch_tx, config, metrics, supervisor))
        };
        let workers = predictors
            .into_iter()
            .map(|predictor| {
                let batch_rx = batch_rx.clone();
                let shared = WorkerShared {
                    bundle: Arc::clone(&bundle),
                    precision: config.precision,
                    metrics: Arc::clone(&metrics),
                    supervisor: Arc::clone(&supervisor),
                    fault: fault.clone(),
                };
                std::thread::spawn(move || run_worker(predictor, batch_rx, shared))
            })
            .collect();
        Ok(InferenceServer {
            tx: Some(req_tx),
            batcher: Some(batcher),
            workers,
            metrics,
            supervisor,
            limits: resilience.limits,
            alphabet,
            default_deadline: resilience.default_deadline,
            trace_requests: config.trace_requests,
            precision: config.precision,
            bundle,
        })
    }

    /// The numeric mode this server's replicas serve at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Enqueues a graph for classification under the server's default
    /// deadline. Fails fast with [`ServeError::CircuitOpen`] while the
    /// breaker is open, [`ServeError::Rejected`] when the graph violates
    /// the admission limits, [`ServeError::QueueFull`] when the bounded
    /// queue is at capacity, and [`ServeError::Shutdown`] after
    /// [`InferenceServer::shutdown`].
    pub fn submit(&self, graph: Graph) -> Result<PredictionHandle, ServeError> {
        self.submit_with_deadline(graph, None)
    }

    /// [`submit`](InferenceServer::submit) with a per-request deadline
    /// override (`None` falls back to the server default). A request whose
    /// deadline expires before a worker picks it up is shed with
    /// [`ServeError::DeadlineExceeded`].
    pub fn submit_with_deadline(
        &self,
        graph: Graph,
        deadline: Option<Duration>,
    ) -> Result<PredictionHandle, ServeError> {
        let ctx = if self.trace_requests {
            RequestCtx::mint()
        } else {
            RequestCtx::disabled()
        };
        self.submit_traced(graph, deadline, ctx)
    }

    /// [`submit_with_deadline`](InferenceServer::submit_with_deadline) with
    /// a caller-provided [`RequestCtx`] — how the net edge threads a trace
    /// id (minted at frame arrival, or adopted from the client's trace
    /// trailer) through the engine. The context is discarded when the
    /// server runs with [`ServerConfig::trace_requests`] off, so a traced
    /// edge in front of an untraced engine costs nothing.
    pub fn submit_traced(
        &self,
        graph: Graph,
        deadline: Option<Duration>,
        mut ctx: RequestCtx,
    ) -> Result<PredictionHandle, ServeError> {
        if !self.trace_requests {
            ctx = RequestCtx::disabled();
        }
        ctx.stamp(Stage::Accepted); // First-write-wins: a no-op when the edge already stamped it.
        let tx = self.tx.as_ref().ok_or(ServeError::Shutdown)?;
        let probe = match self.supervisor.admit() {
            Admission::Normal => false,
            Admission::Probe => true,
            Admission::Refused => {
                self.metrics.breaker_rejected.inc();
                self.metrics.slo_error();
                if ctx.is_enabled() {
                    self.metrics.recorder.record(
                        RequestRecord::from_ctx(&ctx, TraceOutcome::BreakerRejected)
                            .with_cause("circuit breaker open: admission refused"),
                    );
                }
                return Err(ServeError::CircuitOpen);
            }
        };
        if let Err(reason) = self.limits.check(&graph, self.alphabet.as_deref()) {
            self.metrics.rejected_invalid.inc();
            if probe {
                // The probe never ran; rearm the breaker for the next one.
                self.supervisor.probe_failed();
            }
            // Invalid graphs are the client's fault and do not spend the
            // SLO error budget, but the refusal is still worth a record.
            if ctx.is_enabled() {
                self.metrics.recorder.record(
                    RequestRecord::from_ctx(&ctx, TraceOutcome::AdmissionRejected)
                        .with_cause(format!("admission limits: {reason}")),
                );
            }
            return Err(ServeError::Rejected { reason });
        }
        ctx.stamp(Stage::Admitted);
        let submitted = Instant::now();
        let deadline = deadline
            .or(self.default_deadline)
            .map(|budget| submitted + budget);
        let (reply_tx, reply_rx) = mpsc::channel();
        // Stamped before try_send: the request owns the context once queued.
        ctx.stamp(Stage::Enqueued);
        let trace_id = ctx.trace_id();
        let request = Request {
            graph,
            submitted,
            deadline,
            probe,
            ctx,
            reply: reply_tx,
        };
        match tx.try_send(request) {
            Ok(()) => {
                self.metrics.submitted.inc();
                // The gauge tracks its own high-water mark, which is the
                // peak queue depth.
                self.metrics.queue_depth.add(1);
                Ok(PredictionHandle {
                    rx: reply_rx,
                    trace_id,
                })
            }
            Err(err) => {
                self.metrics.rejected.inc();
                self.metrics.slo_error();
                if probe {
                    self.supervisor.probe_failed();
                }
                let request = match err {
                    crossbeam::channel::TrySendError::Full(request)
                    | crossbeam::channel::TrySendError::Disconnected(request) => request,
                };
                if request.ctx.is_enabled() {
                    self.metrics.recorder.record(
                        RequestRecord::from_ctx(&request.ctx, TraceOutcome::QueueFull)
                            .with_cause("bounded request queue at capacity"),
                    );
                }
                Err(ServeError::QueueFull)
            }
        }
    }

    /// Submits and blocks for the answer (convenience for synchronous
    /// callers).
    pub fn predict(&self, graph: Graph) -> Result<ServedPrediction, ServeError> {
        self.submit(graph)?.wait()
    }

    /// Point-in-time health: `Ready` (breaker closed, all replicas live),
    /// `Degraded` (serving below full strength — replicas restarting or
    /// down, a breaker probe in flight, or the SLO burning through its
    /// error budget on both windows), or `Unavailable` (breaker open, no
    /// live replica, or shut down).
    pub fn health(&self) -> Health {
        if self.tx.is_none() {
            return Health::Unavailable;
        }
        let live = self.supervisor.live_workers();
        if live == 0 {
            return Health::Unavailable;
        }
        match self.supervisor.breaker_state() {
            BreakerState::Open => Health::Unavailable,
            BreakerState::HalfOpen => Health::Degraded { live_workers: live },
            BreakerState::Closed => {
                if live < self.supervisor.total_workers() {
                    Health::Degraded { live_workers: live }
                } else if self.metrics.slo.as_ref().is_some_and(|slo| slo.breached()) {
                    // Every replica is up and the breaker is closed, yet
                    // requests are blowing the latency/error budget —
                    // degrade so orchestration reacts before users do.
                    Health::Degraded { live_workers: live }
                } else {
                    Health::Ready
                }
            }
        }
    }

    /// The flight recorder retaining the last
    /// [`ServerConfig::recorder_capacity`] finished requests. Always
    /// present; empty when the server runs with tracing off.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.metrics.recorder)
    }

    /// Whether requests on this server carry trace contexts.
    pub fn trace_enabled(&self) -> bool {
        self.trace_requests
    }

    /// Current `(fast, slow)` SLO burn rates, when an SLO is configured.
    pub fn slo_burn_rates(&self) -> Option<(f64, f64)> {
        self.metrics.slo.as_ref().map(|slo| slo.burn_rates())
    }

    /// Current counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.metrics.submitted.get(),
            rejected: self.metrics.rejected.get(),
            rejected_invalid: self.metrics.rejected_invalid.get(),
            rejected_busy: self.metrics.rejected_busy.get(),
            breaker_rejected: self.metrics.breaker_rejected.get(),
            shed_deadline: self.metrics.shed_deadline.get(),
            completed: self.metrics.completed.get(),
            batches: self.metrics.batches.get(),
            batched_requests: self.metrics.batched_requests.get(),
            worker_panics: self.metrics.worker_panics.get(),
            worker_restarts: self.metrics.worker_restarts.get(),
            replies_dropped: self.metrics.replies_dropped.get(),
            breaker_state: self.metrics.breaker_state.get(),
            queue_depth: self.metrics.queue_depth.get().max(0) as usize,
            peak_queue_depth: self.metrics.queue_depth.max().max(0) as usize,
        }
    }

    /// The `deepmap-obs` registry backing the server's metrics — always
    /// live, independent of `DEEPMAP_TRACE`. Useful for scraping the serve
    /// instruments alongside batch metrics.
    pub fn metrics_registry(&self) -> Arc<Registry> {
        Arc::clone(&self.metrics.registry)
    }

    /// The server's metrics in the Prometheus text exposition format
    /// (counters, queue-depth and breaker-state gauges with `_peak`,
    /// latency histogram with `_bucket`/`_sum`/`_count` series).
    pub fn render_metrics(&self) -> String {
        self.metrics.registry.render_prometheus()
    }

    /// The bundle this server's replicas were built from. The router tier
    /// uses this to adopt an already-running engine into a registry entry
    /// without being handed the bundle twice.
    pub fn bundle(&self) -> &Arc<ModelBundle> {
        &self.bundle
    }

    /// Number of threads this server currently owns (batcher + workers).
    /// Zero after [`shutdown`](InferenceServer::shutdown) — the router tier
    /// audits retired replica pools with this before and after joining
    /// them, so a leaked thread is a visible accounting error rather than a
    /// silent resource drip.
    pub fn thread_count(&self) -> usize {
        self.workers.len() + usize::from(self.batcher.is_some())
    }

    /// Stops accepting requests, drains the queue, and joins every thread.
    /// Already-accepted requests are still answered where a live worker
    /// remains; requests a dead worker pool can no longer serve resolve
    /// with [`ServeError::Shutdown`] instead of hanging, so the drain is
    /// graceful even after worker deaths.
    pub fn shutdown(&mut self) {
        self.tx = None; // Closes the request channel; the batcher drains and exits.
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sheds `request` if its deadline has passed: answers the caller with
/// [`ServeError::DeadlineExceeded`], bumps the shed counter, and rearms the
/// breaker when the shed request was the probe. Returns the request back
/// when it is still live.
fn shed_if_expired(
    request: Request,
    now: Instant,
    metrics: &ServerMetrics,
    supervisor: &Supervisor,
) -> Option<Request> {
    match request.deadline {
        Some(deadline) if now >= deadline => {
            metrics.shed_deadline.inc();
            metrics.slo_error();
            if request.probe {
                supervisor.probe_failed();
            }
            if request.ctx.is_enabled() {
                let overstay = now.duration_since(deadline);
                metrics.recorder.record(
                    RequestRecord::from_ctx(&request.ctx, TraceOutcome::ShedDeadline).with_cause(
                        format!("deadline exceeded by {}µs in queue", overstay.as_micros()),
                    ),
                );
            }
            let _ = request.reply.send(Err(ServeError::DeadlineExceeded));
            None
        }
        _ => Some(request),
    }
}

fn run_batcher(
    req_rx: Receiver<Request>,
    batch_tx: Sender<Batch>,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    supervisor: Arc<Supervisor>,
) {
    // Blocks for the first request of each batch, then keeps collecting
    // until the batch is full or the first request's wait deadline passes.
    // Expired requests are shed at pop time and again at dispatch time
    // (they may have expired while the batch was forming).
    while let Ok(first) = req_rx.recv() {
        metrics.queue_depth.add(-1);
        let Some(first) = shed_if_expired(first, Instant::now(), &metrics, &supervisor) else {
            continue;
        };
        let mut batch = vec![first];
        if config.max_batch > 1 {
            let flush_at = Instant::now() + config.max_wait;
            while batch.len() < config.max_batch {
                let now = Instant::now();
                if now >= flush_at {
                    break;
                }
                match req_rx.recv_timeout(flush_at - now) {
                    Ok(request) => {
                        metrics.queue_depth.add(-1);
                        if let Some(request) =
                            shed_if_expired(request, Instant::now(), &metrics, &supervisor)
                        {
                            batch.push(request);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        // Final sweep: anything that expired while the batch was forming.
        let now = Instant::now();
        let mut requests: Vec<Request> = batch
            .into_iter()
            .filter_map(|request| shed_if_expired(request, now, &metrics, &supervisor))
            .collect();
        if requests.is_empty() {
            continue;
        }
        metrics.batches.inc();
        if requests.len() > 1 {
            metrics.batched_requests.add(requests.len() as u64);
        }
        for request in &mut requests {
            request.ctx.stamp(Stage::BatchSealed);
        }
        let batch = Batch {
            seq: supervisor.next_batch_seq(),
            requests,
        };
        if batch_tx.send(batch).is_err() {
            return; // Workers are gone; nothing useful left to do.
        }
    }
    // Request channel closed: dropping batch_tx lets the workers drain out.
}

/// Best-effort extraction of a panic's message from the payload
/// [`std::panic::catch_unwind`] hands back — `panic!("…")` produces a
/// `String` or `&str`; anything else gets a placeholder. The flight
/// recorder stores this as the anomaly cause.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

fn run_worker(mut predictor: Predictor, batch_rx: Receiver<Batch>, shared: WorkerShared) {
    while let Ok(Batch { seq, mut requests }) = batch_rx.recv() {
        // Injected latency counts as inference time, so stamp first.
        for request in &mut requests {
            request.ctx.stamp(Stage::InferStart);
        }
        shared.inject_latency(seq);
        let batch_size = requests.len();
        let graphs: Vec<&Graph> = requests.iter().map(|r| &r.graph).collect();
        // The replica caches activations, so a panic mid-batch poisons it;
        // AssertUnwindSafe is sound because the poisoned predictor is
        // discarded and rebuilt from the bundle before it is used again.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            shared.inject_panic(seq);
            predictor.predict_batch(&graphs)
        }));
        drop(graphs);
        match outcome {
            Ok(predictions) => {
                let drop_replies = shared.should_drop_replies(seq);
                for (mut request, prediction) in requests.into_iter().zip(predictions) {
                    request.ctx.stamp(Stage::InferEnd);
                    let latency = request.submitted.elapsed();
                    shared.metrics.completed.inc();
                    shared
                        .metrics
                        .latency_seconds
                        .observe_with_exemplar(latency.as_secs_f64(), request.ctx.trace_id());
                    if request.probe {
                        shared.supervisor.probe_succeeded();
                    }
                    if let Some(slo) = &shared.metrics.slo {
                        if drop_replies {
                            slo.observe_error();
                        } else {
                            slo.observe_latency(latency);
                        }
                    }
                    if request.ctx.is_enabled() {
                        let ctx = &request.ctx;
                        let m = &shared.metrics;
                        m.observe_stage(ctx, Stage::Accepted, Stage::Enqueued, &m.stage_admission);
                        m.observe_stage(ctx, Stage::Enqueued, Stage::BatchSealed, &m.stage_queue);
                        m.observe_stage(
                            ctx,
                            Stage::BatchSealed,
                            Stage::InferStart,
                            &m.stage_dispatch,
                        );
                        m.observe_stage(ctx, Stage::InferStart, Stage::InferEnd, &m.stage_infer);
                        let record = if drop_replies {
                            RequestRecord::from_ctx(ctx, TraceOutcome::ReplyDropped)
                                .with_cause(format!("fault-inject: reply dropped on batch {seq}"))
                        } else {
                            RequestRecord::from_ctx(ctx, TraceOutcome::Completed)
                        };
                        m.recorder.record(record.with_batch(seq, batch_size));
                    }
                    if drop_replies {
                        shared.metrics.replies_dropped.inc();
                        continue; // The reply sender drops; wait() sees Shutdown.
                    }
                    let served = ServedPrediction {
                        class: prediction.class,
                        scores: prediction.scores,
                        latency,
                        batch_size,
                    };
                    // A dropped handle just means the caller stopped waiting.
                    let _ = request.reply.send(Ok(served));
                }
            }
            Err(payload) => {
                shared.metrics.worker_panics.inc();
                let cause = panic_message(payload.as_ref());
                let mut had_probe = false;
                for mut request in requests {
                    had_probe |= request.probe;
                    request.ctx.stamp(Stage::InferEnd);
                    shared.metrics.slo_error();
                    if request.ctx.is_enabled() {
                        shared.metrics.recorder.record(
                            RequestRecord::from_ctx(&request.ctx, TraceOutcome::WorkerPanic)
                                .with_cause(cause.clone())
                                .with_batch(seq, batch_size),
                        );
                    }
                    let _ = request.reply.send(Err(ServeError::WorkerPanic));
                }
                if had_probe {
                    shared.supervisor.probe_failed();
                }
                shared.supervisor.worker_down();
                match shared.supervisor.try_restart() {
                    Some(backoff) => {
                        std::thread::sleep(backoff);
                        match shared.bundle.predictor_with(shared.precision) {
                            Ok(fresh) => {
                                predictor = fresh;
                                shared.metrics.worker_restarts.inc();
                                shared.supervisor.worker_up();
                            }
                            Err(_) => {
                                // The bundle stopped producing replicas:
                                // nothing left to respawn from.
                                shared.supervisor.trip();
                                return;
                            }
                        }
                    }
                    None => {
                        // Restart budget exhausted: stay down and trip the
                        // breaker so submissions fast-fail instead of
                        // queueing behind a shrinking pool.
                        shared.supervisor.trip();
                        return;
                    }
                }
            }
        }
    }
}
