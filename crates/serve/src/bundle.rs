//! The `DMB1`/`DMB2` model bundle: a trained DeepMap classifier frozen for
//! serving.
//!
//! A bundle packs everything inference needs into one versioned binary
//! file, all hand-rolled little-endian framing in the style of the `DMW1`
//! weight checkpoints:
//!
//! ```text
//! magic "DMB1" | u32 version (= 1)     (or "DMB2" | 2, see below)
//! model config   (shapes, filters, readout, seed)
//! train config   (provenance: epochs, batch size, learning rate, seed)
//! max feature dim (the top-K truncation the pipeline applied, if any)
//! class names    (u64 count | per name: u64 len | utf-8 bytes)
//! preprocessor   (u64 len | FrozenPreprocessor blob: assembly params +
//!                 frozen feature vocabulary, see deepmap-core::frozen)
//! weights        (u64 len | DMW1 checkpoint)
//! quantized      (DMB2 only: u64 len | QNT1 int8 model, see
//!                 deepmap-nn::quant)
//! ```
//!
//! A bundle without quantized weights serialises byte-for-byte as `DMB1`;
//! calling [`ModelBundle::quantize`] (which gates on f32/int8 prediction
//! agreement over a probe set) upgrades it to `DMB2` with one extra
//! trailing section. Loading validates every section — including parsing
//! the full `QNT1` frame on `DMB2` — rebuilds the architecture from the
//! recorded config, and checks the weights actually fit it: a bundle that
//! loads is a bundle that predicts, at every precision it carries.

use crate::codec::Reader;
use crate::error::ServeError;
use deepmap_core::embedding::CONV_STACK_LAYERS;
use deepmap_core::{
    build_deepmap_model, DeepMap, DeepMapConfig, FrozenPreprocessor, ModelConfig, PreparedDataset,
    Readout,
};
use deepmap_graph::Graph;
use deepmap_nn::layers::Mode;
use deepmap_nn::loss::softmax;
use deepmap_nn::persist::{load_weights, save_weights};
use deepmap_nn::train::TrainConfig;
use deepmap_nn::{Matrix, QuantModel, Sequential};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DMB1";
const VERSION: u32 = 1;
const MAGIC_V2: &[u8; 4] = b"DMB2";
const VERSION_V2: u32 = 2;

/// Numeric mode of a serving path. The default is [`Precision::F32`]
/// everywhere: quantized inference is an explicit opt-in
/// (`ServerConfig::precision`), never a silent change to the math a model
/// was validated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision f32 inference — bit-identical to training-time eval.
    #[default]
    F32,
    /// int8 weights + dynamic int8 activations with exact `i32`
    /// accumulation; requires the bundle to carry a quantized (`DMB2`)
    /// section.
    Int8,
}

impl Precision {
    /// Stable lowercase label, used for metrics series
    /// (`precision="f32"|"int8"`) and report keys.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A frozen, servable DeepMap classifier: architecture, trained weights,
/// frozen feature vocabulary, assembly parameters, and label names.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    model_cfg: ModelConfig,
    train_cfg: TrainConfig,
    max_feature_dim: Option<usize>,
    class_names: Vec<String>,
    pre: FrozenPreprocessor,
    weights: Vec<u8>,
    /// Serialized `QNT1` int8 model; present on `DMB2` bundles only. Kept
    /// as the validated blob (not the parsed model) so `to_bytes` is a
    /// faithful round trip.
    quant: Option<Vec<u8>>,
}

impl ModelBundle {
    /// Freezes a trained model into a bundle.
    ///
    /// `prepared` and `pre` must come from the same
    /// [`DeepMap::try_prepare_frozen`] call that produced the training
    /// tensors for `model`; `class_names[c]` names class `c`. The weights
    /// are validated by loading them into a freshly built copy of the
    /// architecture, so a successfully frozen bundle is guaranteed to
    /// reload.
    pub fn freeze(
        pipeline: &DeepMap,
        prepared: &PreparedDataset,
        pre: FrozenPreprocessor,
        model: &Sequential,
        class_names: Vec<String>,
    ) -> Result<ModelBundle, ServeError> {
        if class_names.len() != prepared.n_classes {
            return Err(ServeError::Corrupt(format!(
                "{} class names for {} classes",
                class_names.len(),
                prepared.n_classes
            )));
        }
        if pre.m() != prepared.m {
            return Err(ServeError::Corrupt(format!(
                "preprocessor dimension {} does not match prepared dimension {}",
                pre.m(),
                prepared.m
            )));
        }
        let model_cfg = pipeline.model_config(prepared);
        let weights = save_weights(model).to_vec();
        let mut probe = build_deepmap_model(&model_cfg);
        load_weights(&mut probe, &weights)?;
        Ok(ModelBundle {
            model_cfg,
            train_cfg: pipeline.config().train,
            max_feature_dim: pipeline.config().max_feature_dim,
            class_names,
            pre,
            weights,
            quant: None,
        })
    }

    /// Lowers the frozen weights to int8 and attaches them as the bundle's
    /// `DMB2` section, gated on prediction agreement: the quantized model
    /// must pick the same class as the f32 model on at least
    /// `min_agreement` of the `probes` (0.0–1.0). Returns the measured
    /// agreement on success; on rejection
    /// ([`ServeError::QuantizationRejected`]) the bundle is unchanged.
    ///
    /// An empty probe set vacuously passes — callers own choosing a probe
    /// set that represents their traffic (the bench uses held-out training
    /// graphs).
    pub fn quantize(&mut self, probes: &[&Graph], min_agreement: f64) -> Result<f64, ServeError> {
        let model = self.build_model()?;
        let qm = model
            .quantize()
            .map_err(|e| ServeError::Corrupt(format!("quantization failed: {e}")))?;
        let mut agreeing = 0usize;
        for graph in probes {
            let input = self.pre.embed_one(graph);
            let f32_class = model.predict(&input);
            let int8_class = qm.infer(&input).argmax_row(0);
            if f32_class == int8_class {
                agreeing += 1;
            }
        }
        let agreement = if probes.is_empty() {
            1.0
        } else {
            agreeing as f64 / probes.len() as f64
        };
        if agreement < min_agreement {
            return Err(ServeError::QuantizationRejected {
                agreement,
                required: min_agreement,
            });
        }
        self.quant = Some(qm.to_bytes().to_vec());
        Ok(agreement)
    }

    /// Whether the bundle carries a quantized (`DMB2`) weight section.
    pub fn has_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Size of the serialized int8 section in bytes, when present —
    /// reported by the bench against the f32 weight section.
    pub fn quantized_bytes(&self) -> Option<usize> {
        self.quant.as_ref().map(|blob| blob.len())
    }

    /// Size of the serialized f32 weight section in bytes.
    pub fn weight_section_bytes(&self) -> usize {
        self.weights.len()
    }

    /// Parses the quantized section into a ready int8 model.
    ///
    /// # Errors
    /// [`ServeError::NoQuantizedWeights`] when the bundle is plain `DMB1`.
    pub fn build_quant_model(&self) -> Result<QuantModel, ServeError> {
        let blob = self.quant.as_ref().ok_or(ServeError::NoQuantizedWeights)?;
        QuantModel::from_bytes(blob)
            .map_err(|e| ServeError::Corrupt(format!("quantized section: {e}")))
    }

    /// The recorded architecture.
    pub fn model_config(&self) -> &ModelConfig {
        &self.model_cfg
    }

    /// The frozen preprocessor.
    pub fn preprocessor(&self) -> &FrozenPreprocessor {
        &self.pre
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.model_cfg.n_classes
    }

    /// Class names, indexed by class id.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// The sorted vertex-label alphabet the feature vocabulary was fitted
    /// on, when the feature family records one (WL does; graphlet and
    /// shortest-path vocabularies do not retain a recoverable label set).
    /// Drives the optional [`crate::GraphLimits`] alphabet check.
    pub fn label_alphabet(&self) -> Option<Vec<u32>> {
        self.pre.label_alphabet()
    }

    /// The full pipeline configuration the bundle was trained with,
    /// reconstructed from the frozen pieces (provenance).
    pub fn config(&self) -> DeepMapConfig {
        DeepMapConfig {
            kind: self.pre.extractor().kind(),
            r: self.pre.r(),
            ordering: self.pre.ordering(),
            max_hops: self.pre.max_hops(),
            readout: self.model_cfg.readout,
            max_feature_dim: self.max_feature_dim,
            normalize: self.pre.normalize(),
            train: self.train_cfg,
            seed: self.model_cfg.seed,
        }
    }

    /// Rebuilds the architecture and loads the frozen weights into it.
    pub fn build_model(&self) -> Result<Sequential, ServeError> {
        let mut model = build_deepmap_model(&self.model_cfg);
        load_weights(&mut model, &self.weights)?;
        Ok(model)
    }

    /// A ready-to-use single-threaded f32 predictor over this bundle.
    pub fn predictor(&self) -> Result<Predictor, ServeError> {
        self.predictor_with(Precision::F32)
    }

    /// A predictor at an explicit precision.
    /// [`Precision::Int8`] requires the bundle to carry quantized weights
    /// ([`ServeError::NoQuantizedWeights`] otherwise).
    pub fn predictor_with(&self, precision: Precision) -> Result<Predictor, ServeError> {
        let engine = match precision {
            Precision::F32 => PredictorEngine::F32(self.build_model()?),
            Precision::Int8 => PredictorEngine::Int8(self.build_quant_model()?),
        };
        Ok(Predictor {
            engine,
            pre: self.pre.clone(),
            w: self.model_cfg.w,
            precision,
        })
    }

    /// Serialises the bundle: byte-for-byte `DMB1` when no quantized
    /// weights are attached, `DMB2` (one extra trailing section) when they
    /// are.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match &self.quant {
            None => {
                out.extend_from_slice(MAGIC);
                out.extend_from_slice(&VERSION.to_le_bytes());
            }
            Some(_) => {
                out.extend_from_slice(MAGIC_V2);
                out.extend_from_slice(&VERSION_V2.to_le_bytes());
            }
        }
        let c = &self.model_cfg;
        for v in [
            c.m,
            c.r,
            c.w,
            c.n_classes,
            c.filters[0],
            c.filters[1],
            c.filters[2],
            c.dense_units,
        ] {
            out.extend_from_slice(&(v as u64).to_le_bytes());
        }
        out.extend_from_slice(&c.dropout.to_le_bytes());
        out.push(match c.readout {
            Readout::Sum => 0,
            Readout::Concat => 1,
        });
        out.extend_from_slice(&c.seed.to_le_bytes());
        out.extend_from_slice(&(self.train_cfg.epochs as u64).to_le_bytes());
        out.extend_from_slice(&(self.train_cfg.batch_size as u64).to_le_bytes());
        out.extend_from_slice(&self.train_cfg.learning_rate.to_le_bytes());
        out.extend_from_slice(&self.train_cfg.seed.to_le_bytes());
        match self.max_feature_dim {
            None => out.push(0),
            Some(k) => {
                out.push(1);
                out.extend_from_slice(&(k as u64).to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.class_names.len() as u64).to_le_bytes());
        for name in &self.class_names {
            out.extend_from_slice(&(name.len() as u64).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        let pre_blob = self.pre.to_bytes();
        out.extend_from_slice(&(pre_blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&pre_blob);
        out.extend_from_slice(&(self.weights.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.weights);
        if let Some(blob) = &self.quant {
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(blob);
        }
        out
    }

    /// Deserialises and validates a bundle: checks magic, version, every
    /// section's framing, trailing bytes, and that the weights load into
    /// the declared architecture.
    pub fn from_bytes(data: &[u8]) -> Result<ModelBundle, ServeError> {
        let mut r = Reader::new(data);
        let has_quant_section = match r.take(4)? {
            magic if magic == MAGIC => false,
            magic if magic == MAGIC_V2 => true,
            _ => return Err(ServeError::BadMagic),
        };
        let version = r.u32()?;
        let expected = if has_quant_section {
            VERSION_V2
        } else {
            VERSION
        };
        if version != expected {
            return Err(ServeError::UnsupportedVersion(version));
        }
        let m = r.u64()? as usize;
        let field_r = r.u64()? as usize;
        let w = r.u64()? as usize;
        let n_classes = r.u64()? as usize;
        let filters = [r.u64()? as usize, r.u64()? as usize, r.u64()? as usize];
        let dense_units = r.u64()? as usize;
        let dropout = r.f64()?;
        let readout = match r.u8()? {
            0 => Readout::Sum,
            1 => Readout::Concat,
            other => return Err(ServeError::Corrupt(format!("unknown readout tag {other}"))),
        };
        let seed = r.u64()?;
        let model_cfg = ModelConfig {
            m,
            r: field_r,
            w,
            n_classes,
            filters,
            dense_units,
            dropout,
            readout,
            seed,
        };
        let train_cfg = TrainConfig {
            epochs: r.u64()? as usize,
            batch_size: r.u64()? as usize,
            learning_rate: r.f32()?,
            seed: r.u64()?,
        };
        let max_feature_dim = match r.u8()? {
            0 => None,
            1 => Some(r.u64()? as usize),
            other => {
                return Err(ServeError::Corrupt(format!(
                    "bad max-feature-dim flag {other}"
                )))
            }
        };
        let n_names = r.u64()? as usize;
        if n_names != n_classes {
            return Err(ServeError::Corrupt(format!(
                "{n_names} class names for {n_classes} classes"
            )));
        }
        let mut class_names = Vec::with_capacity(n_names.min(r.remaining()));
        for _ in 0..n_names {
            let len = r.u64()? as usize;
            let bytes = r.take(len)?;
            let name = std::str::from_utf8(bytes)
                .map_err(|_| ServeError::Corrupt("class name is not utf-8".to_string()))?;
            class_names.push(name.to_string());
        }
        let pre_len = r.u64()? as usize;
        let pre_blob = r.take(pre_len)?;
        let pre = FrozenPreprocessor::from_bytes(pre_blob).map_err(ServeError::Corrupt)?;
        if pre.m() != m || pre.r() != field_r || pre.w() != w {
            return Err(ServeError::Corrupt(format!(
                "preprocessor shape ({}, {}, {}) disagrees with model config ({m}, {field_r}, {w})",
                pre.m(),
                pre.r(),
                pre.w()
            )));
        }
        let weights_len = r.u64()? as usize;
        let weights = r.take(weights_len)?.to_vec();
        let quant = if has_quant_section {
            let quant_len = r.u64()? as usize;
            Some(r.take(quant_len)?.to_vec())
        } else {
            None
        };
        r.finish()?;
        let bundle = ModelBundle {
            model_cfg,
            train_cfg,
            max_feature_dim,
            class_names,
            pre,
            weights,
            quant,
        };
        // A bundle that parses must also predict: prove the weights fit —
        // at every precision the bundle claims to serve.
        bundle.build_model()?;
        if bundle.has_quantized() {
            bundle.build_quant_model()?;
        }
        Ok(bundle)
    }

    /// Writes the bundle to a file.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates a bundle file.
    pub fn load(path: &Path) -> Result<ModelBundle, ServeError> {
        let data = std::fs::read(path)?;
        ModelBundle::from_bytes(&data)
    }
}

/// One classified graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted class id (argmax of the scores).
    pub class: usize,
    /// Softmax class scores, indexed by class id.
    pub scores: Vec<f32>,
}

/// The numeric backend a [`Predictor`] pushes activations through: the
/// rebuilt f32 model, or the bundle's int8 model. Both expose the same
/// layer indexing (quantization lowers layers one-to-one), so the batched
/// split-at-the-pool path works unchanged across precisions.
enum PredictorEngine {
    F32(Sequential),
    Int8(QuantModel),
}

impl PredictorEngine {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        match self {
            PredictorEngine::F32(model) => model.forward(input, Mode::Eval),
            PredictorEngine::Int8(model) => model.infer(input),
        }
    }

    fn forward_range(&mut self, input: &Matrix, start: usize, end: usize) -> Matrix {
        match self {
            PredictorEngine::F32(model) => model.forward_range(input, start, end, Mode::Eval),
            PredictorEngine::Int8(model) => model.infer_range(input, start, end),
        }
    }

    fn n_layers(&self) -> usize {
        match self {
            PredictorEngine::F32(model) => model.n_layers(),
            PredictorEngine::Int8(model) => model.n_layers(),
        }
    }

    fn is_concat(&self) -> bool {
        let names = match self {
            PredictorEngine::F32(model) => model.layer_names(),
            PredictorEngine::Int8(model) => model.layer_names(),
        };
        names.contains(&"Flatten")
    }
}

/// A single-threaded predictor: a rebuilt model plus the frozen
/// preprocessor. Each inference worker owns one (the f32 model caches
/// intermediate activations, so it is deliberately not shared).
pub struct Predictor {
    engine: PredictorEngine,
    pre: FrozenPreprocessor,
    w: usize,
    precision: Precision,
}

impl Predictor {
    /// The numeric mode this predictor runs at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Classifies one graph.
    pub fn predict(&mut self, graph: &Graph) -> Prediction {
        let input = self.pre.embed_one(graph);
        let logits = self.engine.forward(&input);
        Self::to_prediction(&logits)
    }

    /// Classifies a batch of graphs in one pass through the convolution
    /// stack.
    ///
    /// With the summation readout the first convolution has kernel = stride
    /// = `r`, so receptive-field windows never straddle graph boundaries:
    /// the `B` input tensors are row-concatenated into one `(B·w·r × m)`
    /// matrix, pushed through the conv stack together, then split and
    /// summed per graph before the dense head. The per-row arithmetic is
    /// identical to the one-at-a-time path, so batched predictions are
    /// bit-identical to unbatched ones — at int8 too, because activation
    /// quantization is per-im2col-row and therefore row-local. The concat
    /// readout flattens position-wise and cannot be row-batched; it falls
    /// back to a loop.
    pub fn predict_batch(&mut self, graphs: &[&Graph]) -> Vec<Prediction> {
        if graphs.len() <= 1 || self.engine.is_concat() {
            return graphs.iter().map(|g| self.predict(g)).collect();
        }
        let inputs: Vec<Matrix> = graphs.iter().map(|g| self.pre.embed_one(g)).collect();
        let rows_per_graph = inputs[0].rows();
        let m = inputs[0].cols();
        let mut stacked = Matrix::zeros(rows_per_graph * inputs.len(), m);
        for (b, input) in inputs.iter().enumerate() {
            for row in 0..rows_per_graph {
                stacked
                    .row_mut(b * rows_per_graph + row)
                    .copy_from_slice(input.row(row));
            }
        }
        let conv = self.engine.forward_range(&stacked, 0, CONV_STACK_LAYERS);
        let n_layers = self.engine.n_layers();
        graphs
            .iter()
            .enumerate()
            .map(|(b, _)| {
                // Replicates SumPool (Matrix::sum_rows) over this graph's
                // row block, in the same ascending-row accumulation order.
                let mut pooled = Matrix::zeros(1, conv.cols());
                for row in 0..self.w {
                    let src = conv.row(b * self.w + row);
                    for (o, &v) in pooled.row_mut(0).iter_mut().zip(src) {
                        *o += v;
                    }
                }
                let logits = self
                    .engine
                    .forward_range(&pooled, CONV_STACK_LAYERS + 1, n_layers);
                Self::to_prediction(&logits)
            })
            .collect()
    }

    fn to_prediction(logits: &Matrix) -> Prediction {
        let probs = softmax(logits);
        let scores = probs.row(0).to_vec();
        let class = probs.argmax_row(0);
        Prediction { class, scores }
    }
}
