//! The `DMB1` model bundle: a trained DeepMap classifier frozen for serving.
//!
//! A bundle packs everything inference needs into one versioned binary
//! file, all hand-rolled little-endian framing in the style of the `DMW1`
//! weight checkpoints:
//!
//! ```text
//! magic "DMB1" | u32 version (= 1)
//! model config   (shapes, filters, readout, seed)
//! train config   (provenance: epochs, batch size, learning rate, seed)
//! max feature dim (the top-K truncation the pipeline applied, if any)
//! class names    (u64 count | per name: u64 len | utf-8 bytes)
//! preprocessor   (u64 len | FrozenPreprocessor blob: assembly params +
//!                 frozen feature vocabulary, see deepmap-core::frozen)
//! weights        (u64 len | DMW1 checkpoint)
//! ```
//!
//! Loading validates every section, rebuilds the architecture from the
//! recorded config, and checks the weights actually fit it — a bundle that
//! loads is a bundle that predicts.

use crate::codec::Reader;
use crate::error::ServeError;
use deepmap_core::embedding::CONV_STACK_LAYERS;
use deepmap_core::{
    build_deepmap_model, DeepMap, DeepMapConfig, FrozenPreprocessor, ModelConfig, PreparedDataset,
    Readout,
};
use deepmap_graph::Graph;
use deepmap_nn::layers::Mode;
use deepmap_nn::loss::softmax;
use deepmap_nn::persist::{load_weights, save_weights};
use deepmap_nn::train::TrainConfig;
use deepmap_nn::{Matrix, Sequential};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DMB1";
const VERSION: u32 = 1;

/// A frozen, servable DeepMap classifier: architecture, trained weights,
/// frozen feature vocabulary, assembly parameters, and label names.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    model_cfg: ModelConfig,
    train_cfg: TrainConfig,
    max_feature_dim: Option<usize>,
    class_names: Vec<String>,
    pre: FrozenPreprocessor,
    weights: Vec<u8>,
}

impl ModelBundle {
    /// Freezes a trained model into a bundle.
    ///
    /// `prepared` and `pre` must come from the same
    /// [`DeepMap::try_prepare_frozen`] call that produced the training
    /// tensors for `model`; `class_names[c]` names class `c`. The weights
    /// are validated by loading them into a freshly built copy of the
    /// architecture, so a successfully frozen bundle is guaranteed to
    /// reload.
    pub fn freeze(
        pipeline: &DeepMap,
        prepared: &PreparedDataset,
        pre: FrozenPreprocessor,
        model: &Sequential,
        class_names: Vec<String>,
    ) -> Result<ModelBundle, ServeError> {
        if class_names.len() != prepared.n_classes {
            return Err(ServeError::Corrupt(format!(
                "{} class names for {} classes",
                class_names.len(),
                prepared.n_classes
            )));
        }
        if pre.m() != prepared.m {
            return Err(ServeError::Corrupt(format!(
                "preprocessor dimension {} does not match prepared dimension {}",
                pre.m(),
                prepared.m
            )));
        }
        let model_cfg = pipeline.model_config(prepared);
        let weights = save_weights(model).to_vec();
        let mut probe = build_deepmap_model(&model_cfg);
        load_weights(&mut probe, &weights)?;
        Ok(ModelBundle {
            model_cfg,
            train_cfg: pipeline.config().train,
            max_feature_dim: pipeline.config().max_feature_dim,
            class_names,
            pre,
            weights,
        })
    }

    /// The recorded architecture.
    pub fn model_config(&self) -> &ModelConfig {
        &self.model_cfg
    }

    /// The frozen preprocessor.
    pub fn preprocessor(&self) -> &FrozenPreprocessor {
        &self.pre
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.model_cfg.n_classes
    }

    /// Class names, indexed by class id.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// The sorted vertex-label alphabet the feature vocabulary was fitted
    /// on, when the feature family records one (WL does; graphlet and
    /// shortest-path vocabularies do not retain a recoverable label set).
    /// Drives the optional [`crate::GraphLimits`] alphabet check.
    pub fn label_alphabet(&self) -> Option<Vec<u32>> {
        self.pre.label_alphabet()
    }

    /// The full pipeline configuration the bundle was trained with,
    /// reconstructed from the frozen pieces (provenance).
    pub fn config(&self) -> DeepMapConfig {
        DeepMapConfig {
            kind: self.pre.extractor().kind(),
            r: self.pre.r(),
            ordering: self.pre.ordering(),
            max_hops: self.pre.max_hops(),
            readout: self.model_cfg.readout,
            max_feature_dim: self.max_feature_dim,
            normalize: self.pre.normalize(),
            train: self.train_cfg,
            seed: self.model_cfg.seed,
        }
    }

    /// Rebuilds the architecture and loads the frozen weights into it.
    pub fn build_model(&self) -> Result<Sequential, ServeError> {
        let mut model = build_deepmap_model(&self.model_cfg);
        load_weights(&mut model, &self.weights)?;
        Ok(model)
    }

    /// A ready-to-use single-threaded predictor over this bundle.
    pub fn predictor(&self) -> Result<Predictor, ServeError> {
        Ok(Predictor {
            model: self.build_model()?,
            pre: self.pre.clone(),
            w: self.model_cfg.w,
        })
    }

    /// Serialises the bundle.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let c = &self.model_cfg;
        for v in [
            c.m,
            c.r,
            c.w,
            c.n_classes,
            c.filters[0],
            c.filters[1],
            c.filters[2],
            c.dense_units,
        ] {
            out.extend_from_slice(&(v as u64).to_le_bytes());
        }
        out.extend_from_slice(&c.dropout.to_le_bytes());
        out.push(match c.readout {
            Readout::Sum => 0,
            Readout::Concat => 1,
        });
        out.extend_from_slice(&c.seed.to_le_bytes());
        out.extend_from_slice(&(self.train_cfg.epochs as u64).to_le_bytes());
        out.extend_from_slice(&(self.train_cfg.batch_size as u64).to_le_bytes());
        out.extend_from_slice(&self.train_cfg.learning_rate.to_le_bytes());
        out.extend_from_slice(&self.train_cfg.seed.to_le_bytes());
        match self.max_feature_dim {
            None => out.push(0),
            Some(k) => {
                out.push(1);
                out.extend_from_slice(&(k as u64).to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.class_names.len() as u64).to_le_bytes());
        for name in &self.class_names {
            out.extend_from_slice(&(name.len() as u64).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        let pre_blob = self.pre.to_bytes();
        out.extend_from_slice(&(pre_blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&pre_blob);
        out.extend_from_slice(&(self.weights.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.weights);
        out
    }

    /// Deserialises and validates a bundle: checks magic, version, every
    /// section's framing, trailing bytes, and that the weights load into
    /// the declared architecture.
    pub fn from_bytes(data: &[u8]) -> Result<ModelBundle, ServeError> {
        let mut r = Reader::new(data);
        if r.take(4)? != MAGIC {
            return Err(ServeError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(ServeError::UnsupportedVersion(version));
        }
        let m = r.u64()? as usize;
        let field_r = r.u64()? as usize;
        let w = r.u64()? as usize;
        let n_classes = r.u64()? as usize;
        let filters = [r.u64()? as usize, r.u64()? as usize, r.u64()? as usize];
        let dense_units = r.u64()? as usize;
        let dropout = r.f64()?;
        let readout = match r.u8()? {
            0 => Readout::Sum,
            1 => Readout::Concat,
            other => return Err(ServeError::Corrupt(format!("unknown readout tag {other}"))),
        };
        let seed = r.u64()?;
        let model_cfg = ModelConfig {
            m,
            r: field_r,
            w,
            n_classes,
            filters,
            dense_units,
            dropout,
            readout,
            seed,
        };
        let train_cfg = TrainConfig {
            epochs: r.u64()? as usize,
            batch_size: r.u64()? as usize,
            learning_rate: r.f32()?,
            seed: r.u64()?,
        };
        let max_feature_dim = match r.u8()? {
            0 => None,
            1 => Some(r.u64()? as usize),
            other => {
                return Err(ServeError::Corrupt(format!(
                    "bad max-feature-dim flag {other}"
                )))
            }
        };
        let n_names = r.u64()? as usize;
        if n_names != n_classes {
            return Err(ServeError::Corrupt(format!(
                "{n_names} class names for {n_classes} classes"
            )));
        }
        let mut class_names = Vec::with_capacity(n_names.min(r.remaining()));
        for _ in 0..n_names {
            let len = r.u64()? as usize;
            let bytes = r.take(len)?;
            let name = std::str::from_utf8(bytes)
                .map_err(|_| ServeError::Corrupt("class name is not utf-8".to_string()))?;
            class_names.push(name.to_string());
        }
        let pre_len = r.u64()? as usize;
        let pre_blob = r.take(pre_len)?;
        let pre = FrozenPreprocessor::from_bytes(pre_blob).map_err(ServeError::Corrupt)?;
        if pre.m() != m || pre.r() != field_r || pre.w() != w {
            return Err(ServeError::Corrupt(format!(
                "preprocessor shape ({}, {}, {}) disagrees with model config ({m}, {field_r}, {w})",
                pre.m(),
                pre.r(),
                pre.w()
            )));
        }
        let weights_len = r.u64()? as usize;
        let weights = r.take(weights_len)?.to_vec();
        r.finish()?;
        let bundle = ModelBundle {
            model_cfg,
            train_cfg,
            max_feature_dim,
            class_names,
            pre,
            weights,
        };
        // A bundle that parses must also predict: prove the weights fit.
        bundle.build_model()?;
        Ok(bundle)
    }

    /// Writes the bundle to a file.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates a bundle file.
    pub fn load(path: &Path) -> Result<ModelBundle, ServeError> {
        let data = std::fs::read(path)?;
        ModelBundle::from_bytes(&data)
    }
}

/// One classified graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted class id (argmax of the scores).
    pub class: usize,
    /// Softmax class scores, indexed by class id.
    pub scores: Vec<f32>,
}

/// A single-threaded predictor: a rebuilt model plus the frozen
/// preprocessor. Each inference worker owns one (the model caches
/// intermediate activations, so it is deliberately not shared).
pub struct Predictor {
    model: Sequential,
    pre: FrozenPreprocessor,
    w: usize,
}

impl Predictor {
    /// Classifies one graph.
    pub fn predict(&mut self, graph: &Graph) -> Prediction {
        let input = self.pre.embed_one(graph);
        let logits = self.model.forward(&input, Mode::Eval);
        Self::to_prediction(&logits)
    }

    /// Classifies a batch of graphs in one pass through the convolution
    /// stack.
    ///
    /// With the summation readout the first convolution has kernel = stride
    /// = `r`, so receptive-field windows never straddle graph boundaries:
    /// the `B` input tensors are row-concatenated into one `(B·w·r × m)`
    /// matrix, pushed through the conv stack together, then split and
    /// summed per graph before the dense head. The per-row arithmetic is
    /// identical to the one-at-a-time path, so batched predictions are
    /// bit-identical to unbatched ones. The concat readout flattens
    /// position-wise and cannot be row-batched; it falls back to a loop.
    pub fn predict_batch(&mut self, graphs: &[&Graph]) -> Vec<Prediction> {
        if graphs.len() <= 1 || self.model_readout_is_concat() {
            return graphs.iter().map(|g| self.predict(g)).collect();
        }
        let inputs: Vec<Matrix> = graphs.iter().map(|g| self.pre.embed_one(g)).collect();
        let rows_per_graph = inputs[0].rows();
        let m = inputs[0].cols();
        let mut stacked = Matrix::zeros(rows_per_graph * inputs.len(), m);
        for (b, input) in inputs.iter().enumerate() {
            for row in 0..rows_per_graph {
                stacked
                    .row_mut(b * rows_per_graph + row)
                    .copy_from_slice(input.row(row));
            }
        }
        let conv = self
            .model
            .forward_range(&stacked, 0, CONV_STACK_LAYERS, Mode::Eval);
        let n_layers = self.model.n_layers();
        graphs
            .iter()
            .enumerate()
            .map(|(b, _)| {
                // Replicates SumPool (Matrix::sum_rows) over this graph's
                // row block, in the same ascending-row accumulation order.
                let mut pooled = Matrix::zeros(1, conv.cols());
                for row in 0..self.w {
                    let src = conv.row(b * self.w + row);
                    for (o, &v) in pooled.row_mut(0).iter_mut().zip(src) {
                        *o += v;
                    }
                }
                let logits =
                    self.model
                        .forward_range(&pooled, CONV_STACK_LAYERS + 1, n_layers, Mode::Eval);
                Self::to_prediction(&logits)
            })
            .collect()
    }

    fn model_readout_is_concat(&self) -> bool {
        self.model.layer_names().contains(&"Flatten")
    }

    fn to_prediction(logits: &Matrix) -> Prediction {
        let probs = softmax(logits);
        let scores = probs.row(0).to_vec();
        let class = probs.argmax_row(0);
        Prediction { class, scores }
    }
}
