//! Property-based tests for the graph substrate.

use deepmap_graph::bfs::{bfs_distances, bfs_layers, UNREACHABLE};
use deepmap_graph::centrality::{
    eigenvector_centrality, rank_by_score_desc, PowerIterationOptions,
};
use deepmap_graph::components::{connected_components, is_connected};
use deepmap_graph::generators::{erdos_renyi, preferential_attachment, GeneratorConfig};
use deepmap_graph::shortest_path::{apsp_bfs, apsp_floyd_warshall};
use deepmap_graph::{Graph, GraphBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an arbitrary simple graph with up to `max_n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n));
        let labels = proptest::collection::vec(0u32..5, n);
        (Just(n), edges, labels).prop_map(|(n, edges, labels)| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v).expect("endpoints in range");
                }
            }
            b.set_labels(&labels).expect("label count matches");
            b.build().expect("valid graph")
        })
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric(g in arb_graph(20)) {
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn neighbor_lists_sorted_unique(g in arb_graph(20)) {
        for u in g.vertices() {
            let ns = g.neighbors(u);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn handshake_lemma(g in arb_graph(20)) {
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.n_edges());
    }

    #[test]
    fn bfs_distance_triangle_inequality_over_edges(g in arb_graph(15)) {
        // For every edge (u, v) and source s: |d(s,u) - d(s,v)| <= 1.
        for s in g.vertices() {
            let d = bfs_distances(&g, s);
            for (u, v) in g.edges() {
                let (du, dv) = (d[u as usize], d[v as usize]);
                if du != UNREACHABLE && dv != UNREACHABLE {
                    prop_assert!(du.abs_diff(dv) <= 1);
                } else {
                    // An edge cannot bridge reachable and unreachable.
                    prop_assert_eq!(du, dv);
                }
            }
        }
    }

    #[test]
    fn bfs_layers_partition_component(g in arb_graph(15)) {
        let comps = connected_components(&g);
        for s in g.vertices() {
            let layers = bfs_layers(&g, s, None);
            let visited: usize = layers.iter().map(|l| l.len()).sum();
            let comp_size = comps
                .component
                .iter()
                .filter(|&&c| c == comps.component[s as usize])
                .count();
            prop_assert_eq!(visited, comp_size);
        }
    }

    #[test]
    fn apsp_implementations_agree(g in arb_graph(12)) {
        prop_assert_eq!(apsp_bfs(&g), apsp_floyd_warshall(&g));
    }

    #[test]
    fn apsp_symmetric(g in arb_graph(12)) {
        let d = apsp_bfs(&g);
        for u in 0..d.n() {
            for v in 0..d.n() {
                prop_assert_eq!(d.dist(u, v), d.dist(v, u));
            }
        }
    }

    #[test]
    fn centrality_nonnegative_and_normalised(g in arb_graph(20)) {
        let c = eigenvector_centrality(&g, PowerIterationOptions::default());
        prop_assert!(c.iter().all(|&x| x >= -1e-12));
        if g.n_edges() > 0 {
            let norm: f64 = c.iter().map(|x| x * x).sum();
            prop_assert!((norm - 1.0).abs() < 1e-3, "norm {}", norm);
        }
    }

    #[test]
    fn ranking_is_a_permutation(g in arb_graph(20)) {
        let c = eigenvector_centrality(&g, PowerIterationOptions::default());
        let order = rank_by_score_desc(&g, &c);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..g.n_vertices() as u32).collect();
        prop_assert_eq!(sorted, expected);
        // Scores are non-increasing along the order.
        for w in order.windows(2) {
            prop_assert!(c[w[0] as usize] >= c[w[1] as usize] - 1e-12);
        }
    }

    #[test]
    fn induced_subgraph_edge_subset(g in arb_graph(15), take in 0usize..10) {
        let verts: Vec<u32> = g.vertices().take(take.min(g.n_vertices())).collect();
        let sub = g.induced_subgraph(&verts);
        prop_assert_eq!(sub.n_vertices(), verts.len());
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(verts[a as usize], verts[b as usize]));
        }
        // Labels carried over.
        for (new_id, &old) in verts.iter().enumerate() {
            prop_assert_eq!(sub.label(new_id as u32), g.label(old));
        }
    }

    #[test]
    fn er_seeded_determinism(n in 2usize..30, seed in 0u64..1000) {
        let cfg = GeneratorConfig::new(n).edge_probability(0.3).labels(3);
        let a = erdos_renyi(&cfg, &mut StdRng::seed_from_u64(seed));
        let b = erdos_renyi(&cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn pa_graphs_connected(n in 3usize..40, seed in 0u64..500) {
        let g = preferential_attachment(n, 2, 0, &mut StdRng::seed_from_u64(seed));
        prop_assert!(is_connected(&g));
    }
}
