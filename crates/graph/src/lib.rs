//! Graph substrate for the DeepMap reproduction.
//!
//! This crate provides everything the rest of the workspace needs from a
//! graph library:
//!
//! - [`Graph`]: an immutable, undirected, vertex-labeled graph stored in
//!   compressed sparse row (CSR) form, built through [`GraphBuilder`].
//! - Traversals: breadth-first search and k-hop neighbourhood expansion
//!   ([`bfs`]).
//! - All-pairs shortest paths by per-source BFS and by Floyd–Warshall
//!   ([`shortest_path`]).
//! - Eigenvector centrality by power iteration, plus degree centrality
//!   ([`centrality`]).
//! - Connected components ([`components`]).
//! - Random graph generators used by the synthetic benchmark datasets
//!   ([`generators`]).
//! - A fast, non-cryptographic hasher ([`hash`]) used for substructure
//!   vocabularies throughout the workspace.
//!
//! Vertices are dense `u32` indices `0..n`. Edges are undirected and the CSR
//! neighbour lists are kept sorted, which makes membership tests and
//! canonical encodings deterministic.

#![deny(missing_docs)]

pub mod bfs;
pub mod builder;
pub mod centrality;
pub mod components;
pub mod generators;
pub mod graph;
pub mod hash;
pub mod shortest_path;

pub use builder::GraphBuilder;
pub use graph::{Graph, GraphError, VertexId};
pub use hash::{FxHashMap, FxHashSet};
