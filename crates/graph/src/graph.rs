//! The core undirected labeled graph type.
//!
//! [`Graph`] matches the paper's object of study: an undirected labeled graph
//! `G = (V, E, l)` where `l : V -> Σ` assigns positive-integer labels to
//! vertices (paper §3). Graphs are immutable once built; construct them with
//! [`crate::GraphBuilder`].

use std::fmt;

/// Dense vertex identifier. Vertices of an `n`-vertex graph are `0..n`.
pub type VertexId = u32;

/// Errors produced when constructing or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a vertex that does not exist.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the graph under construction.
        n_vertices: usize,
    },
    /// A self-loop `(v, v)` was supplied; the paper's graphs are simple.
    SelfLoop(
        /// The vertex with the self-loop.
        VertexId,
    ),
    /// The label vector length does not match the vertex count.
    LabelCountMismatch {
        /// Number of labels supplied.
        labels: usize,
        /// Number of vertices in the graph.
        n_vertices: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n_vertices } => write!(
                f,
                "edge endpoint {vertex} out of range for graph with {n_vertices} vertices"
            ),
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} (graphs are simple)"),
            GraphError::LabelCountMismatch { labels, n_vertices } => write!(
                f,
                "{labels} labels supplied for a graph with {n_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, undirected, vertex-labeled simple graph in CSR form.
///
/// Neighbour lists are sorted ascending and deduplicated, so
/// [`Graph::neighbors`] is deterministic and [`Graph::has_edge`] is a binary
/// search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR row offsets; `offsets.len() == n_vertices + 1`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbour lists; each undirected edge appears twice.
    neighbors: Vec<VertexId>,
    /// Vertex labels, `labels.len() == n_vertices`.
    labels: Vec<u32>,
}

impl Graph {
    /// Builds a graph from parts. Intended for use by [`crate::GraphBuilder`];
    /// `offsets`/`neighbors` must already be valid sorted CSR.
    pub(crate) fn from_csr(offsets: Vec<u32>, neighbors: Vec<VertexId>, labels: Vec<u32>) -> Self {
        debug_assert_eq!(offsets.len(), labels.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, neighbors.len());
        Graph {
            offsets,
            neighbors,
            labels,
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// `true` when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The sorted neighbour list of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Label of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn label(&self, v: VertexId) -> u32 {
        self.labels[v as usize]
    }

    /// All vertex labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Returns a copy of this graph with labels replaced.
    ///
    /// # Errors
    /// Returns [`GraphError::LabelCountMismatch`] when `labels.len()` differs
    /// from the vertex count.
    pub fn with_labels(&self, labels: Vec<u32>) -> Result<Graph, GraphError> {
        if labels.len() != self.n_vertices() {
            return Err(GraphError::LabelCountMismatch {
                labels: labels.len(),
                n_vertices: self.n_vertices(),
            });
        }
        Ok(Graph {
            offsets: self.offsets.clone(),
            neighbors: self.neighbors.clone(),
            labels,
        })
    }

    /// `true` when `{u, v}` is an edge. Binary search over the sorted
    /// neighbour list of the lower-degree endpoint.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.n_vertices() || v as usize >= self.n_vertices() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n_vertices() as VertexId
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The induced subgraph on `vertices` (order defines the new ids).
    ///
    /// Duplicated vertices are not rejected; callers must pass distinct ids.
    /// Labels are carried over. Vertices out of range are ignored.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> Graph {
        let mut builder = crate::GraphBuilder::new(vertices.len());
        let mut index_of: crate::FxHashMap<VertexId, u32> = crate::FxHashMap::default();
        for (new_id, &v) in vertices.iter().enumerate() {
            index_of.insert(v, new_id as u32);
        }
        for (new_u, &u) in vertices.iter().enumerate() {
            if (u as usize) < self.n_vertices() {
                builder
                    .set_label(new_u as VertexId, self.label(u))
                    .expect("new id in range");
                for &w in self.neighbors(u) {
                    if let Some(&new_w) = index_of.get(&w) {
                        if (new_u as u32) < new_w {
                            builder.add_edge_unchecked(new_u as VertexId, new_w);
                        }
                    }
                }
            }
        }
        builder.build().expect("induced subgraph is always valid")
    }

    /// Degree sequence sorted descending (a cheap isomorphism invariant).
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut seq: Vec<usize> = self.vertices().map(|v| self.degree(v)).collect();
        seq.sort_unstable_by(|a, b| b.cmp(a));
        seq
    }

    /// Number of distinct vertex labels present.
    pub fn n_distinct_labels(&self) -> usize {
        let set: crate::FxHashSet<u32> = self.labels.iter().copied().collect();
        set.len()
    }

    /// Row-normalised transition-matrix step: `out[u] = Σ_{v∈N(u)} x[v]/deg(v)`.
    ///
    /// This is `P^T x` for the random-walk transition matrix `P = D^{-1} A`,
    /// the primitive used by the RetGK return-probability features and the
    /// DCNN diffusion convolution. Isolated vertices contribute nothing.
    ///
    /// # Panics
    /// Panics if `x.len() != n_vertices`.
    pub fn transition_apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_vertices());
        let mut out = vec![0.0; x.len()];
        for u in self.vertices() {
            let du = self.degree(u);
            if du == 0 {
                continue;
            }
            let share = x[u as usize] / du as f64;
            for &v in self.neighbors(u) {
                out[v as usize] += share;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Path graph 0-1-2-3 with labels 1,2,3,4.
    fn path4() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 3).unwrap();
        b.set_labels(&[1, 2, 3, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = path4();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = path4();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn labels_round_trip() {
        let g = path4();
        assert_eq!(g.labels(), &[1, 2, 3, 4]);
        assert_eq!(g.label(2), 3);
        assert_eq!(g.n_distinct_labels(), 4);
        let g2 = g.with_labels(vec![7, 7, 7, 7]).unwrap();
        assert_eq!(g2.n_distinct_labels(), 1);
        assert!(g.with_labels(vec![1]).is_err());
    }

    #[test]
    fn edge_iterator_each_edge_once() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_preserves_structure() {
        let g = path4();
        let sub = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.n_vertices(), 3);
        assert_eq!(sub.n_edges(), 2);
        assert_eq!(sub.labels(), &[2, 3, 4]);
        assert!(sub.has_edge(0, 1)); // old (1,2)
        assert!(sub.has_edge(1, 2)); // old (2,3)
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_nonadjacent() {
        let g = path4();
        let sub = g.induced_subgraph(&[0, 3]);
        assert_eq!(sub.n_vertices(), 2);
        assert_eq!(sub.n_edges(), 0);
    }

    #[test]
    fn degree_sequence_sorted() {
        let g = path4();
        assert_eq!(g.degree_sequence(), vec![2, 2, 1, 1]);
    }

    #[test]
    fn transition_apply_distributes_mass() {
        let g = path4();
        let x = vec![1.0, 0.0, 0.0, 0.0];
        let out = g.transition_apply(&x);
        // Vertex 0 has degree 1; all of its mass flows to vertex 1.
        assert_eq!(out, vec![0.0, 1.0, 0.0, 0.0]);
        // Total probability mass is conserved when there are no isolated vertices.
        let uniform = vec![0.25; 4];
        let stepped = g.transition_apply(&uniform);
        let total: f64 = stepped.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(g.is_empty());
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.degree_sequence(), Vec::<usize>::new());
    }
}
