//! Breadth-first search primitives.
//!
//! The DeepMap receptive-field construction (paper §4.1) performs a BFS from
//! each vertex, expanding hop by hop and ranking the vertices discovered at
//! each hop by eigenvector centrality. [`bfs_distances`] and [`bfs_layers`]
//! provide the traversal; the centrality-aware selection itself lives in
//! `deepmap-core::receptive_field`.

use crate::graph::{Graph, VertexId};
use std::collections::VecDeque;

/// Distance value for vertices unreachable from the BFS source.
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distance from `source` to every vertex (`UNREACHABLE` when
/// disconnected).
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs_distances(graph: &Graph, source: VertexId) -> Vec<u32> {
    assert!(
        (source as usize) < graph.n_vertices(),
        "source out of range"
    );
    let mut dist = vec![UNREACHABLE; graph.n_vertices()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in graph.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Vertices reachable from `source`, grouped by hop distance.
///
/// `layers[0] == [source]`, `layers[1]` are the one-hop neighbours, and so
/// on. Within a layer vertices appear in ascending id order (BFS over sorted
/// CSR adjacency). Expansion stops after `max_hops` layers, or when the
/// component is exhausted if `max_hops` is `None`.
pub fn bfs_layers(graph: &Graph, source: VertexId, max_hops: Option<usize>) -> Vec<Vec<VertexId>> {
    assert!(
        (source as usize) < graph.n_vertices(),
        "source out of range"
    );
    let mut seen = vec![false; graph.n_vertices()];
    seen[source as usize] = true;
    let mut layers = vec![vec![source]];
    loop {
        if let Some(limit) = max_hops {
            if layers.len() > limit {
                break;
            }
        }
        let mut next = Vec::new();
        for &u in layers.last().expect("at least the source layer") {
            for &v in graph.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        next.sort_unstable();
        layers.push(next);
    }
    layers
}

/// All vertices within `hops` of `v`, excluding `v` itself, in BFS layer
/// order (closer vertices first; ties by ascending id).
pub fn k_hop_neighborhood(graph: &Graph, v: VertexId, hops: usize) -> Vec<VertexId> {
    bfs_layers(graph, v, Some(hops))
        .into_iter()
        .skip(1)
        .flatten()
        .collect()
}

/// Eccentricity of `v`: the greatest hop distance to any reachable vertex.
pub fn eccentricity(graph: &Graph, v: VertexId) -> u32 {
    bfs_distances(graph, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    /// 0-1-2-3 path plus isolated vertex 4.
    fn path_plus_isolated() -> Graph {
        graph_from_edges(5, &[(0, 1), (1, 2), (2, 3)], None).unwrap()
    }

    #[test]
    fn distances_on_path() {
        let g = path_plus_isolated();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[..4], [0, 1, 2, 3]);
        assert_eq!(d[4], UNREACHABLE);
    }

    #[test]
    fn layers_on_path() {
        let g = path_plus_isolated();
        let layers = bfs_layers(&g, 1, None);
        assert_eq!(layers, vec![vec![1], vec![0, 2], vec![3]]);
    }

    #[test]
    fn layers_respect_max_hops() {
        let g = path_plus_isolated();
        let layers = bfs_layers(&g, 0, Some(1));
        assert_eq!(layers, vec![vec![0], vec![1]]);
        let zero = bfs_layers(&g, 0, Some(0));
        assert_eq!(zero, vec![vec![0]]);
    }

    #[test]
    fn k_hop_excludes_source() {
        let g = path_plus_isolated();
        assert_eq!(k_hop_neighborhood(&g, 1, 1), vec![0, 2]);
        assert_eq!(k_hop_neighborhood(&g, 1, 2), vec![0, 2, 3]);
        assert_eq!(k_hop_neighborhood(&g, 4, 3), Vec::<VertexId>::new());
    }

    #[test]
    fn eccentricity_values() {
        let g = path_plus_isolated();
        assert_eq!(eccentricity(&g, 0), 3);
        assert_eq!(eccentricity(&g, 1), 2);
        assert_eq!(eccentricity(&g, 4), 0);
    }

    #[test]
    fn triangle_layers() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)], None).unwrap();
        let layers = bfs_layers(&g, 0, None);
        assert_eq!(layers, vec![vec![0], vec![1, 2]]);
    }
}
