//! Random graph generators.
//!
//! These are the building blocks of the synthetic benchmark datasets
//! (`deepmap-datasets`). SYNTHIE's construction in the paper uses
//! Erdős–Rényi seed graphs with edge probability 0.2; the other benchmarks
//! are simulated with class-conditional mixtures of the models here
//! (preferential attachment for social/collaboration ego-nets, planted
//! partition for community-structured data, dense near-complete graphs for
//! the `_MD` chemical datasets, sparse lattice-ish molecules for NCI1/PTC).

use crate::builder::GraphBuilder;
use crate::graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Shared knobs for the generators.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Number of vertices.
    pub n: usize,
    /// Edge probability (Erdős–Rényi, planted partition intra/inter base).
    pub p: f64,
    /// Number of distinct vertex labels to assign uniformly at random.
    /// `0` leaves every label as 0.
    pub n_labels: u32,
}

impl GeneratorConfig {
    /// Config with `n` vertices, `p = 0.1`, unlabeled.
    pub fn new(n: usize) -> Self {
        GeneratorConfig {
            n,
            p: 0.1,
            n_labels: 0,
        }
    }

    /// Sets the edge probability.
    pub fn edge_probability(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Sets the number of random vertex labels.
    pub fn labels(mut self, n_labels: u32) -> Self {
        self.n_labels = n_labels;
        self
    }
}

fn assign_random_labels(builder: &mut GraphBuilder, n_labels: u32, rng: &mut StdRng) {
    if n_labels == 0 {
        return;
    }
    for v in 0..builder.n_vertices() as VertexId {
        let label = rng.gen_range(0..n_labels) + 1;
        builder.set_label(v, label).expect("vertex in range");
    }
}

/// G(n, p) Erdős–Rényi random graph.
pub fn erdos_renyi(config: &GeneratorConfig, rng: &mut StdRng) -> Graph {
    let mut b = GraphBuilder::new(config.n);
    for u in 0..config.n as VertexId {
        for v in (u + 1)..config.n as VertexId {
            if rng.gen_bool(config.p.clamp(0.0, 1.0)) {
                b.add_edge_unchecked(u, v);
            }
        }
    }
    assign_random_labels(&mut b, config.n_labels, rng);
    b.build().expect("generated edges are valid")
}

/// Barabási–Albert-style preferential attachment: each new vertex attaches
/// to `m` existing vertices chosen proportionally to degree.
///
/// Degenerate sizes (`n <= m`) fall back to a complete graph on `n`.
pub fn preferential_attachment(n: usize, m: usize, n_labels: u32, rng: &mut StdRng) -> Graph {
    if n <= m + 1 {
        return complete_graph(n, n_labels, rng);
    }
    let m = m.max(1);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Seed: star on the first m+1 vertices so every vertex has degree >= 1.
    for v in 1..=m as VertexId {
        b.add_edge_unchecked(0, v);
        endpoints.extend_from_slice(&[0, v]);
    }
    for u in (m + 1)..n {
        let u = u as VertexId;
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            let &candidate = endpoints.choose(rng).expect("endpoints nonempty");
            if candidate != u && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
            guard += 1;
        }
        for &v in &chosen {
            b.add_edge_unchecked(u, v);
            endpoints.extend_from_slice(&[u, v]);
        }
    }
    assign_random_labels(&mut b, n_labels, rng);
    b.build().expect("generated edges are valid")
}

/// Planted-partition graph: `blocks` equal-sized communities, intra-community
/// edge probability `p_in`, inter-community probability `p_out`.
pub fn planted_partition(
    n: usize,
    blocks: usize,
    p_in: f64,
    p_out: f64,
    n_labels: u32,
    rng: &mut StdRng,
) -> Graph {
    let blocks = blocks.max(1);
    let mut b = GraphBuilder::new(n);
    let block_of = |v: usize| v * blocks / n.max(1);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block_of(u) == block_of(v) {
                p_in
            } else {
                p_out
            };
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_edge_unchecked(u as VertexId, v as VertexId);
            }
        }
    }
    assign_random_labels(&mut b, n_labels, rng);
    b.build().expect("generated edges are valid")
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize, n_labels: u32, rng: &mut StdRng) -> Graph {
    let mut b = GraphBuilder::new(n).with_edge_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge_unchecked(u, v);
        }
    }
    assign_random_labels(&mut b, n_labels, rng);
    b.build().expect("generated edges are valid")
}

/// Cycle graph `C_n` (empty for `n < 3`).
pub fn cycle_graph(n: usize, n_labels: u32, rng: &mut StdRng) -> Graph {
    let mut b = GraphBuilder::new(n);
    if n >= 3 {
        for v in 0..n as VertexId {
            b.add_edge_unchecked(v, ((v as usize + 1) % n) as VertexId);
        }
    }
    assign_random_labels(&mut b, n_labels, rng);
    b.build().expect("generated edges are valid")
}

/// Connected caveman-style graph: `cliques` cliques of `clique_size`
/// vertices, with one edge rewired between consecutive cliques to connect
/// them.
pub fn caveman_graph(cliques: usize, clique_size: usize, n_labels: u32, rng: &mut StdRng) -> Graph {
    let n = cliques * clique_size;
    let mut b = GraphBuilder::new(n);
    for c in 0..cliques {
        let base = (c * clique_size) as VertexId;
        for i in 0..clique_size as VertexId {
            for j in (i + 1)..clique_size as VertexId {
                b.add_edge_unchecked(base + i, base + j);
            }
        }
        if cliques > 1 && clique_size >= 1 {
            let next_base = (((c + 1) % cliques) * clique_size) as VertexId;
            if next_base != base {
                b.add_edge_unchecked(base, next_base);
            }
        }
    }
    assign_random_labels(&mut b, n_labels, rng);
    b.build().expect("generated edges are valid")
}

/// Ego network: one ego vertex adjacent to all `n - 1` alters; alters are
/// connected among themselves with probability `p_alter`. This is the shape
/// of the IMDB/COLLAB collaboration ego-nets.
pub fn ego_network(n: usize, p_alter: f64, n_labels: u32, rng: &mut StdRng) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.add_edge_unchecked(0, v);
    }
    for u in 1..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p_alter.clamp(0.0, 1.0)) {
                b.add_edge_unchecked(u, v);
            }
        }
    }
    assign_random_labels(&mut b, n_labels, rng);
    b.build().expect("generated edges are valid")
}

/// Random tree on `n` vertices via a uniform random attachment process
/// (each vertex `v >= 1` attaches to a uniform earlier vertex). Molecule-like
/// sparse skeletons; add a few extra edges for rings via `extra_edges`.
pub fn random_tree_with_extra_edges(
    n: usize,
    extra_edges: usize,
    n_labels: u32,
    rng: &mut StdRng,
) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v) as VertexId;
        b.add_edge_unchecked(v as VertexId, parent);
    }
    let mut added = 0;
    let mut guard = 0;
    while n >= 2 && added < extra_edges && guard < 20 * (extra_edges + 1) {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v {
            b.add_edge_unchecked(u, v);
            added += 1;
        }
        guard += 1;
    }
    assign_random_labels(&mut b, n_labels, rng);
    b.build().expect("generated edges are valid")
}

/// Perturbs `graph` by rewiring each edge with probability `p_rewire`
/// (delete the edge, insert a uniform random non-edge). Used to derive the
/// SYNTHIE class variants from the two seed graphs.
pub fn rewire(graph: &Graph, p_rewire: f64, rng: &mut StdRng) -> Graph {
    let n = graph.n_vertices();
    let mut edges: Vec<(VertexId, VertexId)> = graph.edges().collect();
    let mut b = GraphBuilder::new(n).with_edge_capacity(edges.len());
    let original_len = edges.len();
    let mut kept: Vec<(VertexId, VertexId)> = Vec::with_capacity(edges.len());
    edges.retain(|_| !rng.gen_bool(p_rewire.clamp(0.0, 1.0)));
    kept.extend_from_slice(&edges);
    let removed = original_len - kept.len();
    for _ in 0..removed {
        if n < 2 {
            break;
        }
        // A handful of attempts to find a fresh non-edge is plenty at the
        // densities we generate.
        for _ in 0..32 {
            let u = rng.gen_range(0..n) as VertexId;
            let v = rng.gen_range(0..n) as VertexId;
            if u != v && !graph.has_edge(u, v) && !kept.contains(&(u.min(v), u.max(v))) {
                kept.push((u.min(v), u.max(v)));
                break;
            }
        }
    }
    for &(u, v) in &kept {
        b.add_edge_unchecked(u, v);
    }
    b.set_labels(graph.labels()).expect("same vertex count");
    b.build().expect("generated edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn erdos_renyi_extremes() {
        let g0 = erdos_renyi(&GeneratorConfig::new(10).edge_probability(0.0), &mut rng(1));
        assert_eq!(g0.n_edges(), 0);
        let g1 = erdos_renyi(&GeneratorConfig::new(10).edge_probability(1.0), &mut rng(1));
        assert_eq!(g1.n_edges(), 45);
    }

    #[test]
    fn erdos_renyi_density_near_p() {
        let g = erdos_renyi(
            &GeneratorConfig::new(100).edge_probability(0.2),
            &mut rng(2),
        );
        let max_edges = 100 * 99 / 2;
        let density = g.n_edges() as f64 / max_edges as f64;
        assert!((density - 0.2).abs() < 0.05, "density {density}");
    }

    #[test]
    fn labels_in_requested_range() {
        let g = erdos_renyi(
            &GeneratorConfig::new(50).edge_probability(0.1).labels(4),
            &mut rng(3),
        );
        assert!(g.labels().iter().all(|&l| (1..=4).contains(&l)));
        assert!(g.n_distinct_labels() >= 2);
    }

    #[test]
    fn preferential_attachment_connected_and_sized() {
        let g = preferential_attachment(40, 2, 0, &mut rng(4));
        assert_eq!(g.n_vertices(), 40);
        assert!(is_connected(&g));
        // Every non-seed vertex attaches with m=2 edges, so |E| >= 2*(n-m-1).
        assert!(g.n_edges() >= 2 * (40 - 3));
    }

    #[test]
    fn preferential_attachment_degenerate_is_complete() {
        let g = preferential_attachment(3, 5, 0, &mut rng(5));
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn planted_partition_denser_inside() {
        let g = planted_partition(60, 3, 0.5, 0.02, 0, &mut rng(6));
        let block_of = |v: usize| v * 3 / 60;
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if block_of(u as usize) == block_of(v as usize) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter * 3, "intra {intra} inter {inter}");
    }

    #[test]
    fn complete_cycle_shapes() {
        let k = complete_graph(6, 0, &mut rng(7));
        assert_eq!(k.n_edges(), 15);
        let c = cycle_graph(6, 0, &mut rng(7));
        assert_eq!(c.n_edges(), 6);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
        let tiny = cycle_graph(2, 0, &mut rng(7));
        assert_eq!(tiny.n_edges(), 0);
    }

    #[test]
    fn caveman_connected() {
        let g = caveman_graph(4, 5, 0, &mut rng(8));
        assert_eq!(g.n_vertices(), 20);
        assert!(is_connected(&g));
        // 4 cliques of 5 => 4 * 10 internal edges + 4 bridges.
        assert_eq!(g.n_edges(), 44);
    }

    #[test]
    fn ego_network_shape() {
        let g = ego_network(10, 0.0, 0, &mut rng(9));
        assert_eq!(g.degree(0), 9);
        assert!(is_connected(&g));
        let dense = ego_network(10, 1.0, 0, &mut rng(9));
        assert_eq!(dense.n_edges(), 45);
    }

    #[test]
    fn random_tree_is_tree() {
        let g = random_tree_with_extra_edges(20, 0, 0, &mut rng(10));
        assert_eq!(g.n_edges(), 19);
        assert!(is_connected(&g));
        let with_rings = random_tree_with_extra_edges(20, 3, 0, &mut rng(10));
        assert!(with_rings.n_edges() >= 20);
    }

    #[test]
    fn rewire_preserves_counts_approximately() {
        let g = erdos_renyi(
            &GeneratorConfig::new(30).edge_probability(0.2),
            &mut rng(11),
        );
        let r = rewire(&g, 0.3, &mut rng(12));
        assert_eq!(r.n_vertices(), g.n_vertices());
        let diff = (r.n_edges() as i64 - g.n_edges() as i64).abs();
        assert!(diff <= 3, "edge count drifted by {diff}");
        // Zero rewiring is the identity on edges.
        let same = rewire(&g, 0.0, &mut rng(13));
        assert_eq!(same.n_edges(), g.n_edges());
    }

    #[test]
    fn generators_deterministic_under_seed() {
        let a = erdos_renyi(
            &GeneratorConfig::new(25).edge_probability(0.3).labels(3),
            &mut rng(42),
        );
        let b = erdos_renyi(
            &GeneratorConfig::new(25).edge_probability(0.3).labels(3),
            &mut rng(42),
        );
        assert_eq!(a, b);
    }
}
